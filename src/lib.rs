//! `superflow-suite` — umbrella crate hosting the repository-level integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! All functionality lives in the workspace crates; this crate merely re-exports
//! them so examples and integration tests have a single import surface.
//!
//! ```
//! use superflow_suite::prelude::*;
//! let netlist = benchmark_circuit(Benchmark::Adder8);
//! assert!(netlist.gate_count() > 0);
//! ```

/// Convenience re-exports of the most frequently used items across the
/// SuperFlow workspace.
pub mod prelude {
    pub use aqfp_cells::{
        AqfpCell, CellKind, CellLibrary, LayerMap, ProcessRules, Technology, TechnologyRegistry,
    };
    pub use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
    pub use aqfp_netlist::{GateId, Netlist};
    pub use aqfp_place::PlacementEngine;
    pub use aqfp_route::Router;
    pub use aqfp_synth::Synthesizer;
    pub use aqfp_timing::TimingAnalyzer;
    pub use superflow::{
        error_chain, BatchConfig, BatchJob, BatchReport, BatchRunner, Checked, DesignReport,
        DesignStatus, Fault, FaultKind, FaultPlan, Flow, FlowConfig, FlowError, FlowObserver,
        FlowReport, FlowSession, FlowStage, LintConfig, LintReport, Placed, RepairScope, Routed,
        StageTimings, Synthesized, TechSpec, VerifyConfig, VerifyReport, LINT_STAGE, VERIFY_STAGE,
    };
}
