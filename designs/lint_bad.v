// Deliberately defective design for the lint smoke test. It packs three
// distinct defects so one `superflow lint` run must report all of them:
//
//   AQFP-E001  combinational loop through g1 and g2
//   AQFP-E002  `ghost` is referenced by g3 but never driven
//   AQFP-W009  input `a` fans out to 17 sinks (over the default threshold
//              of 16 = max_splitter_arity²)
//
// `superflow lint designs/lint_bad.v` must exit 1; `superflow batch` must
// classify it Failed at the pre-flight lint stage without entering
// synthesis.
module lint_bad(a, z0, z1);
  input a;
  output z0, z1;
  wire ghost;
  wire l1, l2;
  wire f0, f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11, f12, f13;

  // Combinational loop: g1 -> g2 -> g1.
  and g1(l1, l2, a);
  and g2(l2, l1, a);

  // Undriven net feeding a gate.
  and g3(z0, a, ghost);

  // 17 total sinks on `a`: g1, g2, g3 above plus b0..b13 = 17.
  buf b0(f0, a);
  buf b1(f1, a);
  buf b2(f2, a);
  buf b3(f3, a);
  buf b4(f4, a);
  buf b5(f5, a);
  buf b6(f6, a);
  buf b7(f7, a);
  buf b8(f8, a);
  buf b9(f9, a);
  buf b10(f10, a);
  buf b11(f11, a);
  buf b12(f12, a);
  buf b13(f13, a);
  or g4(z1, f0, f1);
endmodule
