// A clean half adder — the lint smoke test's known-good fixture:
// `superflow lint designs/half_adder.v` must exit 0 with no findings.
module half_adder(a, b, sum, carry);
  input a, b;
  output sum, carry;
  xor s(sum, a, b);
  and c(carry, a, b);
endmodule
