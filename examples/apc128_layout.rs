//! Fig. 5 reproduction: run the full flow on the `apc128` approximate
//! parallel counter and write its GDSII layout, mirroring the layout figure
//! in the paper.
//!
//! ```text
//! cargo run --release --example apc128_layout [--quick]
//! ```
//!
//! `--quick` substitutes the smaller apc32 counter so the example finishes in
//! a few seconds; the full apc128 run takes a few minutes.

use superflow_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let benchmark = if quick { Benchmark::Apc32 } else { Benchmark::Apc128 };

    let flow = Flow::with_config(FlowConfig::paper_default());
    println!("running the full RTL-to-GDS flow on {benchmark}...");
    let report = flow.run_benchmark(benchmark)?;

    println!("{}", report.summary());
    println!("layout statistics:");
    println!("  cell instances : {}", report.layout.cell_instances);
    println!("  wire paths     : {}", report.layout.wire_paths);
    println!(
        "  chip size      : {:.0} x {:.0} um",
        report.layout.width_um, report.layout.height_um
    );
    println!("  DRC iterations : {}", report.drc_iterations);

    let path = format!("{}.gds", report.design_name);
    std::fs::write(&path, report.layout.to_gds_bytes())?;
    println!("wrote {path} — open it in any GDSII viewer (e.g. KLayout) to see the Fig. 5 layout");
    Ok(())
}
