//! Custom cell library: the paper stresses that the AQFP cell library is
//! under active development, so the flow must make it easy to retarget. This
//! example runs the same RTL through the MIT-LL rules, the AIST STP2 rules
//! and a user-tweaked rule set with a tighter maximum wirelength, and shows
//! how the placement cost (buffer lines) reacts.
//!
//! ```text
//! cargo run --release --example custom_cell_library
//! ```

use aqfp_cells::{CellLibrary, Process, ProcessRules};
use superflow_suite::prelude::*;

fn run_with_library(label: &str, library: CellLibrary) -> Result<(), Box<dyn std::error::Error>> {
    let synthesized =
        Synthesizer::new(library.clone()).run(&benchmark_circuit(Benchmark::Adder8))?;
    let result =
        PlacementEngine::new(library).place(&synthesized, aqfp_place::PlacerKind::SuperFlow);
    println!(
        "{label:<28} HPWL {:>9.0} um, buffer lines {:>3}, WNS {:>6}",
        result.hpwl_um,
        result.buffer_lines,
        result.wns_display(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("adder8 placed under three different process rule sets:\n");

    run_with_library("MIT-LL SQF5ee (default)", CellLibrary::mit_ll())?;
    run_with_library("AIST STP2", CellLibrary::stp2())?;

    // A hypothetical next-generation process with a much tighter maximum
    // wirelength: expect more buffer lines.
    let mut rules = ProcessRules::mit_ll();
    rules.name = "MIT-LL (tight W_max)".to_owned();
    rules.max_wirelength = 250.0;
    rules.validate().map_err(|e| format!("invalid custom rules: {e}"))?;
    run_with_library("custom (W_max = 250 um)", CellLibrary::with_rules(Process::MitLl, rules))?;

    println!("\nTighter maximum wirelength forces more buffer rows, trading area and JJs");
    println!("for shorter hops — the trade-off §II of the paper describes.");
    Ok(())
}
