//! Quickstart: run the complete SuperFlow RTL-to-GDS pipeline on a small
//! hand-written structural-Verilog module and write the resulting layout.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use superflow_suite::prelude::*;

const FULL_ADDER: &str = r#"
    // A one-bit full adder: the classic AQFP showcase, because the carry
    // function maps onto a single majority gate.
    module full_adder(a, b, cin, sum, cout);
      input a, b, cin;
      output sum, cout;
      wire ab, s1, t1, t2, t3, u1;
      xor g1(ab, a, b);
      xor g2(sum, ab, cin);
      and g3(t1, a, b);
      and g4(t2, b, cin);
      and g5(t3, cin, a);
      or  g6(u1, t1, t2);
      or  g7(cout, u1, t3);
    endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure the flow: MIT-LL process, SuperFlow placer, default knobs.
    let flow = Flow::with_config(FlowConfig::paper_default());

    // 2. Run RTL -> GDS in one call.
    let report = flow.run_verilog(FULL_ADDER)?;

    // 3. Inspect the per-stage results.
    println!("design          : {}", report.design_name);
    println!("-- synthesis (Table II columns) --");
    println!("  JJs           : {}", report.synthesis_stats.jj_count);
    println!("  nets          : {}", report.synthesis_stats.net_count);
    println!("  delay (phases): {}", report.synthesis_stats.delay);
    println!("  buffers       : {}", report.synthesis_stats.buffer_count);
    println!("  splitters     : {}", report.synthesis_stats.splitter_count);
    println!("-- placement (Table III columns) --");
    println!("  HPWL          : {:.0} um", report.placement.hpwl_um);
    println!("  buffer lines  : {}", report.placement.buffer_lines);
    println!("  WNS           : {} ps", report.placement.wns_display());
    println!("-- routing (Table IV columns) --");
    println!("  routed nets   : {}", report.routing.stats.nets_routed);
    println!("  routed length : {:.0} um", report.routing.stats.total_wirelength_um);
    println!("  vias          : {}", report.routing.stats.total_vias);
    println!("-- signoff --");
    println!(
        "  DRC           : {}",
        if report.drc.is_clean() { "clean" } else { "violations remain" }
    );

    // 4. Write the GDSII layout.
    let gds = report.layout.to_gds_bytes();
    std::fs::write("full_adder.gds", &gds)?;
    println!("  GDS           : full_adder.gds ({} bytes)", gds.len());
    Ok(())
}
