//! Quickstart: drive the SuperFlow RTL-to-GDS pipeline stage by stage on a
//! small hand-written structural-Verilog module and write the resulting
//! layout.
//!
//! The staged [`FlowSession`] API runs the same pipeline as the push-button
//! `Flow::run_verilog`, but hands back a typed artifact after every stage —
//! synthesis, placement, routing, DRC — so each one can be inspected (or
//! serialized as a resumable JSON checkpoint) before the next stage runs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use superflow_suite::prelude::*;

const FULL_ADDER: &str = r#"
    // A one-bit full adder: the classic AQFP showcase, because the carry
    // function maps onto a single majority gate.
    module full_adder(a, b, cin, sum, cout);
      input a, b, cin;
      output sum, cout;
      wire ab, s1, t1, t2, t3, u1;
      xor g1(ab, a, b);
      xor g2(sum, ab, cin);
      and g3(t1, a, b);
      and g4(t2, b, cin);
      and g5(t3, cin, a);
      or  g6(u1, t1, t2);
      or  g7(cout, u1, t3);
    endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure the flow with the builder API: the built-in MIT-LL
    //    technology (any `TechSpec` works here — a registry name, a dumped
    //    tech file, or an inline `Technology` value), SuperFlow placer,
    //    default knobs — then open a staged session.
    let config = FlowConfig::paper_default()
        .with_tech(TechSpec::builtin(aqfp_cells::MIT_LL_SQF5EE))
        .with_placer(aqfp_place::PlacerKind::SuperFlow);
    let mut session = FlowSession::new(config)?;

    // 2. Synthesis: majority conversion, splitters, path balancing
    //    (Table II columns).
    let netlist = aqfp_netlist::parsers::parse_verilog(FULL_ADDER)?;
    let synthesized = session.synthesize(&netlist)?;
    println!("design          : {}", synthesized.design_name);
    println!("-- synthesis (Table II columns) --");
    println!("  JJs           : {}", synthesized.stats().jj_count);
    println!("  nets          : {}", synthesized.stats().net_count);
    println!("  delay (phases): {}", synthesized.stats().delay);
    println!("  buffers       : {}", synthesized.stats().buffer_count);
    println!("  splitters     : {}", synthesized.stats().splitter_count);

    // 3. Placement: global + legalization + detailed, then buffer rows
    //    (Table III columns). The artifact could be checkpointed here with
    //    `placed.to_json()` and resumed in a later session.
    let placed = session.place(synthesized)?;
    println!("-- placement (Table III columns) --");
    println!("  HPWL          : {:.0} um", placed.placement.hpwl_um);
    println!("  buffer lines  : {}", placed.placement.buffer_lines);
    println!("  WNS           : {} ps", placed.placement.wns_display());

    // 4. Routing: layer-wise channel routing with space expansion
    //    (Table IV columns).
    let routed = session.route(placed)?;
    println!("-- routing (Table IV columns) --");
    println!("  routed nets   : {}", routed.routing.stats.nets_routed);
    println!("  routed length : {:.0} um", routed.routing.stats.total_wirelength_um);
    println!("  vias          : {}", routed.routing.stats.total_vias);

    // 5. Signoff: layout generation + DRC with incremental violation repair
    //    (only channels whose cells moved are rerouted).
    let checked = session.check(routed)?;
    println!("-- signoff --");
    println!(
        "  DRC           : {} ({} repair iterations)",
        if checked.drc.is_clean() { "clean" } else { "violations remain" },
        checked.drc_iterations,
    );

    // 6. Finish: fold everything, plus the per-stage timings the session
    //    collected, into the final report and write the GDSII layout.
    let report = session.finish(checked);
    let gds = report.layout.to_gds_bytes();
    std::fs::write("full_adder.gds", &gds)?;
    println!("  GDS           : full_adder.gds ({} bytes)", gds.len());
    println!(
        "  stage times   : synth {:.2}s / place {:.2}s / route {:.2}s / check {:.2}s",
        report.stage_timings.synthesis_s,
        report.stage_timings.placement_s,
        report.stage_timings.routing_s,
        report.stage_timings.check_s,
    );
    Ok(())
}
