//! Custom technology: the paper stresses that the AQFP cell library is
//! under active development, so the flow must make it easy to retarget.
//! With the data-driven PDK API, a new process is *data*, not code: dump a
//! built-in technology to a TOML file, edit any number, and drive the whole
//! RTL-to-GDS flow from the edited file.
//!
//! This example does exactly that workflow in-process:
//!
//! 1. run the same RTL under both built-in technologies,
//! 2. dump `mit-ll-sqf5ee` to a file (what `superflow tech dump` writes),
//! 3. edit the dump — a tighter maximum wirelength and a slower clock —
//!    the way a process engineer would edit the text file,
//! 4. load it back (with full validation) and run the flow on it.
//!
//! ```text
//! cargo run --release --example custom_technology
//! ```

use superflow_suite::prelude::*;

fn run_with(label: &str, tech: TechSpec) -> Result<(), Box<dyn std::error::Error>> {
    let config = FlowConfig::fast().with_tech(tech);
    let report = Flow::with_config(config).run_benchmark(Benchmark::Adder8)?;
    println!(
        "{label:<28} HPWL {:>9.0} um, buffer lines {:>3}, WNS {:>6}",
        report.placement.hpwl_um,
        report.placement.buffer_lines,
        report.placement.wns_display(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("adder8 through the flow under four technologies:\n");

    // 1. The built-ins, by registry name.
    run_with("mit-ll-sqf5ee (built-in)", TechSpec::builtin("mit-ll-sqf5ee"))?;
    run_with("aist-stp2 (built-in)", TechSpec::builtin("aist-stp2"))?;

    // 2. Dump the MIT-LL technology to an editable TOML file — the same
    //    bytes `superflow tech dump mit-ll-sqf5ee` prints.
    let dir = std::env::temp_dir().join("superflow_custom_technology");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("mit-ll-tight.toml");
    let dumped = Technology::mit_ll_sqf5ee().to_toml()?;

    // 3. Edit the text, exactly as one would in an editor: a hypothetical
    //    next-generation process with a much tighter maximum wirelength
    //    (expect more buffer lines) and a 4 GHz clock (more slack per
    //    phase).
    let edited = dumped
        .replace("name = \"mit-ll-sqf5ee\"", "name = \"mit-ll-tight\"")
        .replace("max_wirelength = 400.0", "max_wirelength = 250.0")
        .replace("frequency_ghz = 5.0", "frequency_ghz = 4.0");
    std::fs::write(&path, &edited)?;

    // 4. Run the flow from the file. Loading re-validates every field —
    //    a typo'd key or an inconsistent rule is rejected before any stage
    //    runs.
    run_with(
        "custom file (W_max 250, 4 GHz)",
        TechSpec::file(path.to_str().expect("temp path is UTF-8")),
    )?;

    // An inline `Technology` value works too — here with an edit that
    // validation must reject, to show the failure mode.
    let mut broken = Technology::mit_ll_sqf5ee();
    broken.rules.max_wirelength = 5.0; // smaller than min_spacing
    let err = FlowConfig::fast()
        .with_technology(broken)
        .resolve_technology()
        .expect_err("inconsistent rules must be rejected");
    println!("\ninvalid technologies fail loudly before any stage runs:\n  {err}");

    println!("\nTighter maximum wirelength forces more buffer rows, trading area and JJs");
    println!("for shorter hops — the trade-off §II of the paper describes. The custom");
    println!("process lives entirely in {} — no code changed.", path.display());
    Ok(())
}
