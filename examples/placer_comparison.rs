//! Placer comparison: reproduce one row of the paper's Table III by placing
//! the same synthesized benchmark with the GORDIAN-based baseline, TAAS and
//! SuperFlow and comparing wirelength, buffer lines and worst negative slack.
//!
//! ```text
//! cargo run --release --example placer_comparison [circuit]
//! ```
//!
//! `circuit` is one of `adder8`, `apc32`, `apc128`, `decoder`, `sorter32`,
//! `c432`, `c499`, `c1355`, `c1908` (default `apc32`).

use superflow_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requested = std::env::args().nth(1).unwrap_or_else(|| "apc32".to_owned());
    let benchmark = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == requested)
        .ok_or_else(|| format!("unknown circuit `{requested}`"))?;

    let library = Technology::mit_ll_sqf5ee();
    println!("synthesizing {benchmark} for the {} process...", library.rules().name);
    let synthesized = Synthesizer::new(library.clone()).run(&benchmark_circuit(benchmark))?;
    println!(
        "  {} JJs, {} nets, {} clock phases\n",
        synthesized.stats.jj_count, synthesized.stats.net_count, synthesized.stats.delay
    );

    let engine = PlacementEngine::new(library);
    println!(
        "{:<15} {:>12} {:>10} {:>10} {:>12}",
        "placer", "HPWL (um)", "buffers", "WNS (ps)", "runtime (s)"
    );
    for result in engine.place_all(&synthesized) {
        println!(
            "{:<15} {:>12.0} {:>10} {:>10} {:>12.2}",
            result.placer.name(),
            result.hpwl_um,
            result.buffer_lines,
            result.wns_display(),
            result.runtime_s,
        );
    }
    println!("\nExpected shape (paper, Table III): SuperFlow achieves the best or near-best");
    println!("wirelength and timing; the GORDIAN-based placer can win HPWL on small circuits");
    println!("but loses timing; TAAS sits in between.");
    Ok(())
}
