//! Offline stand-in for the `bytes` crate: just enough of `BytesMut` and
//! `BufMut` (big-endian writers, matching the real crate's defaults) for the
//! GDSII serializer.

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Consumes the buffer, returning the underlying bytes.
    pub fn freeze(self) -> Vec<u8> {
        self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian byte writers (the real crate's non-`_le` methods).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writers_are_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        buf.put_i32(0x03040506);
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4, 5, 6]);
    }
}
