//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, `BenchmarkId`) on a simple wall-clock harness:
//! every benchmark runs one warm-up iteration plus `sample_size` timed
//! iterations and reports min / mean / max. Statistical analysis, plots and
//! HTML reports are out of scope.
//!
//! Supported CLI flags (so `cargo bench -- --test` smoke runs work in CI):
//! `--test` runs every benchmark exactly once without timing output;
//! `--bench`/`--nocapture` are accepted and ignored; any other non-flag
//! argument is a substring filter on benchmark names.

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Timed samples.
    pub samples: Vec<Duration>,
}

impl Summary {
    /// Mean of the timed samples.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: format!("{}/{}", function.into(), parameter) }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    sink: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Runs the routine `sample_size` times (once in `--test` mode),
    /// recording wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // One warm-up iteration, then the timed samples.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.sink.push(start.elapsed());
        }
    }

    /// Runs `setup` *outside* the timed section before every `routine`
    /// invocation — for routines that consume or mutate their input (the
    /// real criterion's `iter_batched`). `size` is accepted for API
    /// compatibility and ignored by this wall-clock harness.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = size;
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        // One warm-up iteration, then the timed samples (setup untimed).
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.sink.push(start.elapsed());
        }
    }
}

/// Batching hint of the real criterion API; this shim times every routine
/// invocation individually, so the variants are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation in the real criterion.
    SmallInput,
    /// Large inputs: one per allocation in the real criterion.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// The benchmark harness driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    results: Vec<Summary>,
}

impl Criterion {
    /// Builds a driver from `cargo bench` command-line arguments.
    pub fn from_args() -> Self {
        let mut criterion = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => criterion.test_mode = true,
                _ if arg.starts_with('-') => {}
                _ => criterion.filter = Some(arg),
            }
        }
        criterion
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id: BenchmarkId = id.into();
        let name = id.name.clone();
        self.run(&name, 10, |bencher| f(bencher));
    }

    /// Measured results so far (used by benches that export baselines).
    pub fn summaries(&self) -> &[Summary] {
        &self.results
    }

    /// The active name filter, if any (baseline exporters should skip
    /// writing when a filter hid part of the suite).
    pub fn filter(&self) -> Option<&str> {
        self.filter.as_deref()
    }

    /// Prints the closing line of a bench run.
    pub fn final_summary(&self) {
        if !self.test_mode {
            println!("\n{} benchmarks measured", self.results.len());
        }
    }

    fn run(&mut self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(sample_size);
        let mut bencher =
            Bencher { samples: sample_size, test_mode: self.test_mode, sink: &mut samples };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        let summary = Summary { id: id.to_owned(), samples };
        let min = summary.samples.iter().min().copied().unwrap_or_default();
        let max = summary.samples.iter().max().copied().unwrap_or_default();
        println!("{:<60} time: [{:?} {:?} {:?}]", summary.id, min, summary.mean(), max);
        self.results.push(summary);
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let samples = self.sample_size;
        self.criterion.run(&full, samples, |bencher| f(bencher));
    }

    /// Benchmarks a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        let samples = self.sample_size;
        self.criterion.run(&full, samples, |bencher| f(bencher, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench `main` that drives one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_record_samples() {
        let mut criterion = Criterion::default();
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
            group.finish();
        }
        assert_eq!(criterion.summaries().len(), 1);
        assert_eq!(criterion.summaries()[0].samples.len(), 3);
        assert_eq!(criterion.summaries()[0].id, "g/f");
    }
}
