//! Offline stand-in for `crossbeam`: scoped threads implemented on top of
//! `std::thread::scope` (which did not exist when crossbeam introduced the
//! pattern). Only the `thread::scope` / `Scope::spawn` surface is provided.
//!
//! One semantic difference: if a spawned thread panics, `std::thread::scope`
//! resumes the panic on the scoping thread instead of returning `Err`, so
//! the `Result` returned here is always `Ok`. Callers that `.expect(...)`
//! the result behave identically either way.

/// Scoped thread spawning.
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure (crossbeam passes it so threads can spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing local data can be
    /// spawned; all spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = vec![1, 2, 3];
        let sum = std::sync::atomic::AtomicI32::new(0);
        super::thread::scope(|scope| {
            for &v in &data {
                let sum = &sum;
                scope.spawn(move |_| {
                    sum.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.into_inner(), 6);
    }
}
