//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports the shapes this workspace actually uses: named-field structs,
//! tuple structs, unit structs, and enums whose variants are unit, tuple or
//! struct-like. Generics and `#[serde(...)]` attributes are unsupported and
//! rejected with a compile error. Parsing is done directly on the
//! `proc_macro` token stream because `syn`/`quote` are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().expect("valid error tokens")
        }
    };
    let code = match direction {
        Direction::Serialize => generate_serialize(&name, &shape),
        Direction::Deserialize => generate_deserialize(&name, &shape),
    };
    code.parse().expect("generated impl must be valid Rust")
}

/// Parses `struct`/`enum` definitions into a [`Shape`].
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde derive (vendored) does not support generics on `{name}`"));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Named(parse_named_fields(group.stream())?)))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::Tuple(count_tuple_fields(group.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::Unit)),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(group.stream())?)))
            }
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive serde impls for `{other}`")),
    }
}

/// Extracts field names from a named-field body, skipping attributes,
/// visibility and types (types are never needed: generated code relies on
/// inference against the struct definition).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(ident) if ident.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(ident) => {
                fields.push(ident.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    _ => {
                        return Err(format!(
                            "expected `:` after field `{}`",
                            fields.last().unwrap()
                        ))
                    }
                }
                // Skip the type: scan to the next comma outside angle brackets.
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => return Err(format!("unexpected token `{other}` in struct body")),
        }
    }
    Ok(fields)
}

/// Counts fields of a tuple body by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(ident) => {
                let name = ident.to_string();
                i += 1;
                let shape = match tokens.get(i) {
                    Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantShape::Named(parse_named_fields(group.stream())?)
                    }
                    Some(TokenTree::Group(group))
                        if group.delimiter() == Delimiter::Parenthesis =>
                    {
                        i += 1;
                        VariantShape::Tuple(count_tuple_fields(group.stream()))
                    }
                    _ => VariantShape::Unit,
                };
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    return Err(format!(
                        "explicit discriminant on variant `{name}` is unsupported"
                    ));
                }
                variants.push((name, shape));
            }
            other => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

fn named_to_value(fields: &[String], access_prefix: &str) -> String {
    let mut out = String::from("::serde::Value::Map(<[_]>::into_vec(::std::boxed::Box::new([");
    for field in fields {
        out.push_str(&format!(
            "(::std::string::String::from({field:?}), ::serde::Serialize::to_value(&{access_prefix}{field})),"
        ));
    }
    out.push_str("])))");
    out
}

fn generate_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Map(::std::vec::Vec::new())".to_string(),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let mut out =
                String::from("::serde::Value::Seq(<[_]>::into_vec(::std::boxed::Box::new([");
            for i in 0..*n {
                out.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
            }
            out.push_str("])))");
            out
        }
        Shape::Named(fields) => named_to_value(fields, "self."),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (variant, vshape) in variants {
                match vshape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{variant} => ::serde::Value::Str(::std::string::String::from({variant:?})),"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let mut seq = String::from(
                                "::serde::Value::Seq(<[_]>::into_vec(::std::boxed::Box::new([",
                            );
                            for b in &binders {
                                seq.push_str(&format!("::serde::Serialize::to_value({b}),"));
                            }
                            seq.push_str("])))");
                            seq
                        };
                        arms.push_str(&format!(
                            "{name}::{variant}({binds}) => ::serde::Value::Map(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from({variant:?}), {payload})]))),",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let payload = named_to_value(fields, "");
                        arms.push_str(&format!(
                            "{name}::{variant} {{ {binds} }} => ::serde::Value::Map(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from({variant:?}), {payload})]))),",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn generate_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Tuple(n) => {
            let mut fields = String::new();
            for i in 0..*n {
                fields.push_str(&format!(
                    "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::Error::new(\"tuple too short\"))?)?,"
                ));
            }
            format!(
                "match __value {{ ::serde::Value::Seq(__items) => ::std::result::Result::Ok({name}({fields})), _ => ::std::result::Result::Err(::serde::Error::new(\"expected sequence\")) }}"
            )
        }
        Shape::Named(fields) => {
            let mut inits = String::new();
            for field in fields {
                inits.push_str(&format!(
                    "{field}: ::serde::Deserialize::from_value(__value.field({field:?})?)?,"
                ));
            }
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (variant, vshape) in variants {
                match vshape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{variant:?} => ::std::result::Result::Ok({name}::{variant}),"
                    )),
                    VariantShape::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!(
                                "{name}::{variant}(::serde::Deserialize::from_value(__payload)?)"
                            )
                        } else {
                            let mut fields = String::new();
                            for i in 0..*n {
                                fields.push_str(&format!(
                                    "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::Error::new(\"tuple too short\"))?)?,"
                                ));
                            }
                            format!(
                                "match __payload {{ ::serde::Value::Seq(__items) => {name}::{variant}({fields}), _ => return ::std::result::Result::Err(::serde::Error::new(\"expected sequence payload\")) }}"
                            )
                        };
                        data_arms.push_str(&format!(
                            "{variant:?} => ::std::result::Result::Ok({ctor}),"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for field in fields {
                            inits.push_str(&format!(
                                "{field}: ::serde::Deserialize::from_value(__payload.field({field:?})?)?,"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{variant:?} => ::std::result::Result::Ok({name}::{variant} {{ {inits} }}),"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\
                 ::serde::Value::Str(__tag) => match __tag.as_str() {{ {unit_arms} __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{__other}}`\"))) }},\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\
                     let (__tag, __payload) = &__entries[0];\
                     match __tag.as_str() {{ {data_arms} __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{__other}}`\"))) }}\
                 }},\
                 _ => ::std::result::Result::Err(::serde::Error::new(\"expected enum representation\")),\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
    )
}
