//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under the same crate name.
//! Instead of serde's visitor-based zero-copy architecture, types convert to
//! and from a [`Value`] tree; `serde_json` renders that tree as JSON. The
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! `serde_derive`) generate the conversions for plain structs and enums,
//! which is all this workspace uses — `#[serde(...)]` field attributes are
//! intentionally unsupported.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the data model JSON maps onto).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (order preserved for determinism).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => {
                Err(Error::new(format!("expected map with field `{name}`, got {}", other.kind())))
            }
        }
    }

    /// The string payload of a [`Value::Str`].
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "integer",
            Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::new("unsigned value out of signed range"))?,
                    Value::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => return Err(Error::new(format!("expected integer, got {}", other.kind()))),
                };
                <$t>::try_from(wide).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) => u64::try_from(*v)
                        .map_err(|_| Error::new("negative value for unsigned field"))?,
                    Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => return Err(Error::new(format!("expected integer, got {}", other.kind()))),
                };
                <$t>::try_from(wide).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(v) => Ok(*v as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    other => Err(Error::new(format!("expected number, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_str()?.to_owned())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected sequence, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| Error::new("wrong array length"))
    }
}

/// Map keys must serialize to strings (unit enum variants and strings do).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::I64(v) => v.to_string(),
        Value::U64(v) => v.to_string(),
        other => panic!("map keys must serialize to strings, got {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Try the string representation first (unit variants, String keys), then
    // fall back to integer keys.
    let as_str = Value::Str(key.to_owned());
    if let Ok(parsed) = K::from_value(&as_str) {
        return Ok(parsed);
    }
    if let Ok(v) = key.parse::<i64>() {
        if let Ok(parsed) = K::from_value(&Value::I64(v)) {
            return Ok(parsed);
        }
    }
    Err(Error::new(format!("cannot deserialize map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        let mut iter = items.iter();
                        Ok(($(
                            $name::from_value(
                                iter.next().ok_or_else(|| Error::new("tuple too short"))?,
                            )?,
                        )+))
                    }
                    other => Err(Error::new(format!("expected sequence, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1.0f64);
        assert_eq!(BTreeMap::<String, f64>::from_value(&map.to_value()).unwrap(), map);
    }
}
