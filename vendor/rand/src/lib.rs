//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic xoshiro256** generator behind the familiar
//! `StdRng` / `SeedableRng` / `Rng` names. The value stream differs from the
//! real `rand` crate, but every consumer in this workspace only relies on
//! determinism for a fixed seed, not on a specific stream.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws a value in `[range.start, range.end)`.
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }
}
