//! Offline stand-in for the `serde_json` crate: renders the vendored
//! [`serde::Value`] tree as JSON text and parses it back.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v)?,
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(out: &mut String, value: &Value, indent: usize) -> Result<(), Error> {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other)?,
    }
    Ok(())
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes an `f64` using Rust's shortest round-trippable representation.
fn write_f64(out: &mut String, v: f64) -> Result<(), Error> {
    if !v.is_finite() {
        return Err(Error::new("JSON cannot represent non-finite numbers"));
    }
    out.push_str(&format!("{v}"));
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The parser is recursive,
/// so without a cap a few kilobytes of `[[[[…` (say, a truncated or
/// garbage checkpoint file) would overflow the stack and abort the whole
/// process instead of returning an error. Real flow artifacts nest a
/// handful of levels deep; 128 is far above anything legitimate.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", byte as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    /// Records entry into a container, rejecting pathological nesting
    /// before the recursive descent can overflow the stack.
    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!("JSON nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.enter()?;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.enter()?;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("unknown escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| Error::new("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| Error::new("invalid number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| Error::new("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let v = vec![1.5f64, -2.0, 40.0];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,-2,40]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    fn parse(text: &str) -> Result<Value, Error> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        parser.parse_value()
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).expect_err("rejected");
        assert!(err.to_string().contains("nesting"), "{err}");
        // Deep-but-sane nesting still parses, and sibling containers do not
        // accumulate depth.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(matches!(parse(&ok), Ok(Value::Seq(_))));
        assert!(parse("[[],[],[]]").is_ok());
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
