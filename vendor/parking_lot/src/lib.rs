//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's API (no lock poisoning, `lock()` returns the guard
//! directly).

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }
}
