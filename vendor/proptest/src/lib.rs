//! Offline stand-in for the `proptest` crate.
//!
//! Provides the `proptest!` macro, range/tuple/`prop_map` strategies and the
//! `prop_assert*` family on a deterministic random-case runner. Shrinking is
//! not implemented: a failing case panics with the generated value's debug
//! representation instead of a minimized one. Case generation is seeded from
//! the test's name, so failures are reproducible run to run.

use std::ops::Range;

/// Runner configuration (field-compatible subset of the real crate).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Upper bound on rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_global_rejects: 65536 }
    }
}

/// Deterministic case generator (xoshiro-style), seeded per test.
#[derive(Debug, Clone)]
pub struct GenRng {
    state: u64,
}

impl GenRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf29ce484222325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        Self { state: hash | 1 }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut GenRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut GenRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut GenRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut GenRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut GenRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut GenRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut GenRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut GenRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut GenRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, GenRng, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(pattern in strategy) { ... }`
/// becomes a `#[test]` that runs `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($arg:ident in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategy = $strategy;
                let mut __rng = $crate::GenRng::from_name(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __config.cases {
                    if __rejected >= __config.max_global_rejects {
                        panic!(
                            "proptest `{}`: too many rejected cases ({})",
                            stringify!($name),
                            __rejected
                        );
                    }
                    // `prop_assume!` in the body bumps the reject counter and
                    // `continue`s, skipping the accept below.
                    __rejected += 1;
                    let $arg = $crate::Strategy::generate(&__strategy, &mut __rng);
                    $body
                    __rejected -= 1;
                    __accepted += 1;
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($arg:ident in $strategy:expr) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($arg in $strategy) $body)*
        }
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*); };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*); };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*); };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(pair in (1usize..10, 0u64..5).prop_map(|(a, b)| (a, b))) {
            prop_assume!(pair.0 != 5);
            prop_assert!(pair.0 >= 1 && pair.0 < 10);
            prop_assert!(pair.1 < 5);
            prop_assert_ne!(pair.0, 5);
        }
    }
}
