//! Structure-of-arrays batch layout for high-throughput timing analysis.
//!
//! [`TimingBatch`] stores the per-net timing inputs (`phase`, `source_x`,
//! `sink_x`, `length_um`) in four contiguous arrays instead of an array of
//! [`PlacedNet`] structs. The batched analyzer walks those arrays in index
//! order with every configuration coefficient hoisted out of the loop, so
//! the whole analysis runs allocation-free over dense, cache-friendly data —
//! the shape the DRC-repair loop needs when it re-evaluates timing after
//! every incremental placement fix.
//!
//! # Determinism contract
//!
//! [`TimingAnalyzer::analyze_batch`] evaluates exactly the same arithmetic
//! expression per net, in the same index order, as the scalar
//! [`TimingAnalyzer::analyze`]. The two paths therefore produce **bit-for-bit
//! identical** [`TimingReport`]s for the same nets — asserted by this
//! module's tests and by the repository-level property tests over every
//! benchmark circuit.
//!
//! # Incremental refresh
//!
//! A batch is cheap to keep in sync with a changing placement: entries are
//! overwritten in place with [`TimingBatch::set`], so a caller that knows
//! which nets an edit touched (e.g. via a cell→net incidence structure)
//! updates only those slots instead of rebuilding the whole array. See
//! `PlacedDesign::refresh_timing_batch` in the placement crate.

use serde::{Deserialize, Serialize};

use crate::sta::{PlacedNet, TimingAnalyzer, TimingReport};

/// Structure-of-arrays storage for a set of placed nets.
///
/// All four arrays always have the same length; index `i` across them
/// describes one net, equivalent to one [`PlacedNet`].
///
/// ```
/// use aqfp_timing::{PlacedNet, TimingAnalyzer, TimingBatch};
/// let nets = [PlacedNet { phase: 0, source_x: 0.0, sink_x: 50.0, length_um: 150.0 }];
/// let batch = TimingBatch::from_nets(&nets);
/// let analyzer = TimingAnalyzer::default();
/// assert_eq!(analyzer.analyze_batch(&batch, 1_000.0), analyzer.analyze(&nets, 1_000.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingBatch {
    /// Clock phase (row) of each driver.
    phase: Vec<u32>,
    /// X coordinate of each driver pin, in µm.
    source_x: Vec<f64>,
    /// X coordinate of each sink pin, in µm.
    sink_x: Vec<f64>,
    /// Interconnect length of each net, in µm.
    length_um: Vec<f64>,
}

impl TimingBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `capacity` nets.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            phase: Vec::with_capacity(capacity),
            source_x: Vec::with_capacity(capacity),
            sink_x: Vec::with_capacity(capacity),
            length_um: Vec::with_capacity(capacity),
        }
    }

    /// Builds a batch from an array-of-structs net list.
    pub fn from_nets(nets: &[PlacedNet]) -> Self {
        let mut batch = Self::with_capacity(nets.len());
        for net in nets {
            batch.push(*net);
        }
        batch
    }

    /// Number of nets in the batch.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// Whether the batch holds no nets.
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Removes every net, keeping the allocations.
    pub fn clear(&mut self) {
        self.phase.clear();
        self.source_x.clear();
        self.sink_x.clear();
        self.length_um.clear();
    }

    /// Resizes the batch to `len` nets; new slots are zeroed and existing
    /// slots keep their values. No allocation occurs while `len` stays
    /// within the current capacity.
    pub fn resize(&mut self, len: usize) {
        self.phase.resize(len, 0);
        self.source_x.resize(len, 0.0);
        self.sink_x.resize(len, 0.0);
        self.length_um.resize(len, 0.0);
    }

    /// Appends a net.
    pub fn push(&mut self, net: PlacedNet) {
        self.phase.push(net.phase as u32);
        self.source_x.push(net.source_x);
        self.sink_x.push(net.sink_x);
        self.length_um.push(net.length_um);
    }

    /// Appends the nets a design edit added at the end of the net list —
    /// the batch-growth primitive of the incremental repair loop.
    ///
    /// A design edit that only *appends* nets (buffer-row insertion) leaves
    /// every existing slot's index valid, so the batch extends in place and
    /// the caller then refreshes just the slots the edit rewrote (via
    /// [`TimingBatch::set`]) instead of refilling the whole batch. See
    /// `PlacedDesign::extend_timing_batch_for_edit` in the placement crate.
    pub fn extend_for_edit<I: IntoIterator<Item = PlacedNet>>(&mut self, appended: I) {
        for net in appended {
            self.push(net);
        }
    }

    /// Overwrites the net at `index` in place — the incremental-refresh
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&mut self, index: usize, net: PlacedNet) {
        self.phase[index] = net.phase as u32;
        self.source_x[index] = net.source_x;
        self.sink_x[index] = net.sink_x;
        self.length_um[index] = net.length_um;
    }

    /// The net at `index`, reassembled as a [`PlacedNet`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> PlacedNet {
        PlacedNet {
            phase: self.phase[index] as usize,
            source_x: self.source_x[index],
            sink_x: self.sink_x[index],
            length_um: self.length_um[index],
        }
    }

    /// The contiguous per-net arrays `(phase, source_x, sink_x, length_um)`.
    pub fn as_slices(&self) -> (&[u32], &[f64], &[f64], &[f64]) {
        (&self.phase, &self.source_x, &self.sink_x, &self.length_um)
    }
}

impl FromIterator<PlacedNet> for TimingBatch {
    fn from_iter<I: IntoIterator<Item = PlacedNet>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut batch = Self::with_capacity(iter.size_hint().0);
        for net in iter {
            batch.push(net);
        }
        batch
    }
}

impl TimingAnalyzer {
    /// Analyzes a batch of nets, producing the same [`TimingReport`]
    /// **bit-for-bit** as [`TimingAnalyzer::analyze`] over the equivalent
    /// [`PlacedNet`] slice.
    ///
    /// The loop walks the four SoA arrays in index order with the model
    /// coefficients hoisted out, performing no allocation; per-net the
    /// arithmetic is exactly the scalar `net_slack` expression, so the WNS
    /// min-chain and the TNS accumulation visit identical values in
    /// identical order.
    pub fn analyze_batch(&self, batch: &TimingBatch, layer_width: f64) -> TimingReport {
        let config = self.config();
        let budget_ps = config.phase_budget_ps();
        let gate_delay_ps = config.gate_delay_ps;
        let wire_delay_ps_per_um = config.wire_delay_ps_per_um;
        let clock_skew_ps_per_um = config.clock_skew_ps_per_um;

        let n = batch.len();
        let (phases, sources, sinks, lengths) = batch.as_slices();
        // Reslicing to a common length lets the optimizer drop the
        // per-element bounds checks on all four arrays.
        let (phases, sources, sinks, lengths) =
            (&phases[..n], &sources[..n], &sinks[..n], &lengths[..n]);

        let two_w = 2.0 * layer_width;
        // One net's slack: the scalar `net_slack` arithmetic, expression
        // for expression. The zigzag dispatch intentionally hand-mirrors
        // `model::signed_phase_distance` (each arm is the helper's
        // expression verbatim; `two_w - sink_x - source_x` groups like
        // `2.0 * layer_width - x_end - x_start`) instead of calling it:
        // this if-chain codegen measures ~2x faster across the batch loop,
        // and any drift from the model is caught by the bit-identity tests
        // against the scalar analyzer on every benchmark circuit.
        let slack_of = |i: usize| -> f64 {
            let (source_x, sink_x) = (sources[i], sinks[i]);
            let phase = phases[i] % 4;
            let skew_distance = if phase == 0 {
                sink_x - source_x
            } else if phase == 1 {
                sink_x + source_x
            } else if phase == 2 {
                source_x - sink_x
            } else {
                two_w - sink_x - source_x
            };
            let skew_ps = clock_skew_ps_per_um * skew_distance.max(0.0);
            let delay_ps = gate_delay_ps + wire_delay_ps_per_um * lengths[i];
            budget_ps - delay_ps - skew_ps
        };

        // Four independent WNS accumulators break the loop-carried `min`
        // latency chain (the scalar path's throughput limit). `f64::min`
        // over non-NaN values returns one of its arguments unchanged, so
        // the lane split is exact: the folded result is bit-identical to
        // the scalar in-order min chain. TNS accumulates in strict index
        // order — float addition is *not* reorderable — but adding the
        // branchless `min(slack, 0.0)` term is exact: a non-violating net
        // contributes `+0.0`, which never changes the (non-negative-zero)
        // accumulator.
        let (mut wns_0, mut wns_1, mut wns_2, mut wns_3) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut tns = 0.0;
        let mut violations = 0;
        let mut i = 0;
        while i + 4 <= n {
            let s0 = slack_of(i);
            let s1 = slack_of(i + 1);
            let s2 = slack_of(i + 2);
            let s3 = slack_of(i + 3);
            wns_0 = wns_0.min(s0);
            wns_1 = wns_1.min(s1);
            wns_2 = wns_2.min(s2);
            wns_3 = wns_3.min(s3);
            tns += s0.min(0.0);
            tns += s1.min(0.0);
            tns += s2.min(0.0);
            tns += s3.min(0.0);
            violations += usize::from(s0 < 0.0)
                + usize::from(s1 < 0.0)
                + usize::from(s2 < 0.0)
                + usize::from(s3 < 0.0);
            i += 4;
        }
        while i < n {
            let slack = slack_of(i);
            wns_0 = wns_0.min(slack);
            tns += slack.min(0.0);
            violations += usize::from(slack < 0.0);
            i += 1;
        }
        let mut wns = wns_0.min(wns_1).min(wns_2).min(wns_3);
        if batch.is_empty() {
            wns = 0.0;
        }
        TimingReport {
            wns_ps: wns,
            tns_ps: tns,
            violation_count: violations,
            net_count: batch.len(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TimingConfig;

    fn analyzer() -> TimingAnalyzer {
        TimingAnalyzer::new(TimingConfig::paper_default())
    }

    fn sample_nets() -> Vec<PlacedNet> {
        vec![
            PlacedNet { phase: 0, source_x: 0.0, sink_x: 10.0, length_um: 100.0 },
            PlacedNet { phase: 1, source_x: 600.0, sink_x: 0.0, length_um: 1_600.0 },
            PlacedNet { phase: 2, source_x: 500.0, sink_x: 450.0, length_um: 2_000.0 },
            PlacedNet { phase: 3, source_x: 120.0, sink_x: 470.0, length_um: 640.0 },
            PlacedNet { phase: 7, source_x: 470.0, sink_x: 120.0, length_um: 333.25 },
        ]
    }

    #[test]
    fn batch_round_trips_nets() {
        let nets = sample_nets();
        let batch = TimingBatch::from_nets(&nets);
        assert_eq!(batch.len(), nets.len());
        assert!(!batch.is_empty());
        for (i, net) in nets.iter().enumerate() {
            assert_eq!(batch.get(i), *net);
        }
    }

    #[test]
    fn batch_analysis_is_bit_identical_to_scalar() {
        let a = analyzer();
        let nets = sample_nets();
        let batch = TimingBatch::from_nets(&nets);
        let scalar = a.analyze(&nets, 800.0);
        let batched = a.analyze_batch(&batch, 800.0);
        assert_eq!(scalar.wns_ps.to_bits(), batched.wns_ps.to_bits());
        assert_eq!(scalar.tns_ps.to_bits(), batched.tns_ps.to_bits());
        assert_eq!(scalar, batched);
    }

    #[test]
    fn empty_batch_matches_empty_scalar_analysis() {
        let a = analyzer();
        assert_eq!(a.analyze_batch(&TimingBatch::new(), 100.0), a.analyze(&[], 100.0));
    }

    #[test]
    fn set_overwrites_one_slot_in_place() {
        let nets = sample_nets();
        let mut batch = TimingBatch::from_nets(&nets);
        let replacement = PlacedNet { phase: 2, source_x: 1.0, sink_x: 2.0, length_um: 3.0 };
        batch.set(3, replacement);
        assert_eq!(batch.get(3), replacement);
        assert_eq!(batch.get(2), nets[2], "neighbouring slots are untouched");
        assert_eq!(batch.len(), nets.len());
    }

    #[test]
    fn resize_and_clear_keep_arrays_in_lockstep() {
        let mut batch = TimingBatch::from_nets(&sample_nets());
        batch.resize(2);
        assert_eq!(batch.len(), 2);
        batch.resize(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.get(3).length_um, 0.0, "new slots are zeroed");
        batch.clear();
        assert!(batch.is_empty());
        let (phases, sources, sinks, lengths) = batch.as_slices();
        assert!(phases.is_empty() && sources.is_empty() && sinks.is_empty() && lengths.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let batch: TimingBatch = sample_nets().into_iter().collect();
        assert_eq!(batch.len(), 5);
    }

    #[test]
    fn extend_for_edit_appends_without_touching_existing_slots() {
        let nets = sample_nets();
        let mut batch = TimingBatch::from_nets(&nets[..3]);
        batch.extend_for_edit(nets[3..].iter().copied());
        assert_eq!(batch.len(), nets.len());
        for (i, net) in nets.iter().enumerate() {
            assert_eq!(batch.get(i), *net);
        }
        assert_eq!(batch, TimingBatch::from_nets(&nets));
    }
}
