//! Four-phase clocking timing model and static timing analysis for AQFP.
//!
//! AQFP circuits are powered by zigzagging AC clock lines: within each clock
//! phase the excitation current sweeps horizontally across the row, so the
//! timing margin of a connection depends not only on its length but also on
//! *where* its endpoints sit relative to the clock propagation direction —
//! this is the phase-dependent cost `T(e_i)` of Eq. (2) in the paper.
//!
//! The crate provides:
//!
//! * [`model`] — the phase-dependent placement timing cost (Eq. 2);
//! * [`sta`] — a simple static timing analysis engine computing per-net
//!   slack, worst negative slack (WNS) and total negative slack (TNS) at a
//!   target clock frequency (5 GHz in the paper's evaluation);
//! * [`batch`] — a structure-of-arrays [`TimingBatch`] and the batched
//!   [`TimingAnalyzer::analyze_batch`] path, bit-for-bit identical to the
//!   scalar analysis but allocation-free and refreshable in place (the hot
//!   path of the DRC-repair loop);
//! * [`TimingConfig`] — the delay coefficients of the model.
//!
//! # Examples
//!
//! ```
//! use aqfp_timing::{PlacedNet, TimingAnalyzer, TimingConfig};
//!
//! let analyzer = TimingAnalyzer::new(TimingConfig::default());
//! let nets = vec![PlacedNet { phase: 0, source_x: 0.0, sink_x: 120.0, length_um: 220.0 }];
//! let report = analyzer.analyze(&nets, 1_000.0);
//! assert_eq!(report.net_count, 1);
//! ```

#![warn(clippy::unwrap_used)]

pub mod batch;
pub mod config;
pub mod model;
pub mod sta;

pub use batch::TimingBatch;
pub use config::TimingConfig;
pub use model::{phase_timing_cost, signed_phase_distance};
pub use sta::{PlacedNet, TimingAnalyzer, TimingReport};
