//! The phase-dependent timing cost of Eq. (2) in the paper.
//!
//! The four-phase AC excitation zigzags across the rows: in some phases the
//! clock sweeps left-to-right, in others right-to-left, and in the remaining
//! phases the relevant distance is measured from the layer boundary. A
//! connection whose sink lies "downstream" of the clock sweep enjoys extra
//! margin; one whose sink lies upstream loses margin. Eq. (2) captures this
//! with a per-phase signed horizontal distance raised to the power α.

/// Signed horizontal distance of a connection under the zigzag clocking
/// scheme (the inner term of Eq. 2, before the exponent).
///
/// * `phase % 4 == 0` — clock sweeps with increasing x: distance is
///   `x_end − x_start`;
/// * `phase % 4 == 1` — the return path charges from the row edge:
///   `x_end + x_start`;
/// * `phase % 4 == 2` — clock sweeps with decreasing x: `x_start − x_end`;
/// * `phase % 4 == 3` — return path from the far edge: `2·Ŵ − x_end − x_start`,
///   where `Ŵ` is the layer (row) width.
#[inline]
pub fn signed_phase_distance(phase: usize, x_start: f64, x_end: f64, layer_width: f64) -> f64 {
    match phase % 4 {
        0 => x_end - x_start,
        1 => x_end + x_start,
        2 => x_start - x_end,
        _ => 2.0 * layer_width - x_end - x_start,
    }
}

/// The timing cost `T(e_i)` of Eq. (2): the signed phase distance raised to
/// the exponent `alpha` (the paper uses α = 2), preserving the sign so that
/// favourable placements (negative distance) reduce the cost.
///
/// With α = 2 the cost is `d·|d|`, i.e. a signed quadratic: smooth,
/// monotonic in the distance, and strongly penalizing long upstream hops —
/// which is what the analytical placer needs for its gradient.
pub fn phase_timing_cost(
    phase: usize,
    x_start: f64,
    x_end: f64,
    layer_width: f64,
    alpha: f64,
) -> f64 {
    let d = signed_phase_distance(phase, x_start, x_end, layer_width);
    d.signum() * d.abs().powf(alpha)
}

/// Derivative of [`phase_timing_cost`] with respect to `x_start`, used by the
/// analytical global placer.
pub fn phase_timing_cost_grad_start(
    phase: usize,
    x_start: f64,
    x_end: f64,
    layer_width: f64,
    alpha: f64,
) -> f64 {
    let d = signed_phase_distance(phase, x_start, x_end, layer_width);
    let dd_dstart = match phase % 4 {
        0 => -1.0,
        1 => 1.0,
        2 => 1.0,
        _ => -1.0,
    };
    alpha * d.abs().powf(alpha - 1.0) * dd_dstart
}

/// Derivative of [`phase_timing_cost`] with respect to `x_end`.
pub fn phase_timing_cost_grad_end(
    phase: usize,
    x_start: f64,
    x_end: f64,
    layer_width: f64,
    alpha: f64,
) -> f64 {
    let d = signed_phase_distance(phase, x_start, x_end, layer_width);
    let dd_dend = match phase % 4 {
        0 => 1.0,
        1 => 1.0,
        2 => -1.0,
        _ => -1.0,
    };
    alpha * d.abs().powf(alpha - 1.0) * dd_dend
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn phase_distances_follow_the_zigzag() {
        let w = 1000.0;
        assert_eq!(signed_phase_distance(0, 100.0, 300.0, w), 200.0);
        assert_eq!(signed_phase_distance(1, 100.0, 300.0, w), 400.0);
        assert_eq!(signed_phase_distance(2, 100.0, 300.0, w), -200.0);
        assert_eq!(signed_phase_distance(3, 100.0, 300.0, w), 2.0 * w - 400.0);
        // The pattern repeats every four phases.
        assert_eq!(
            signed_phase_distance(4, 10.0, 20.0, w),
            signed_phase_distance(0, 10.0, 20.0, w)
        );
    }

    #[test]
    fn cost_is_signed_quadratic_for_alpha_two() {
        let cost = phase_timing_cost(0, 0.0, 30.0, 1000.0, 2.0);
        assert!((cost - 900.0).abs() < 1e-9);
        let cost = phase_timing_cost(2, 0.0, 30.0, 1000.0, 2.0);
        assert!((cost + 900.0).abs() < 1e-9, "upstream hop in phase 2 is favourable");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (w, alpha) = (800.0, 2.0);
        let eps = 1e-4;
        for phase in 0..4 {
            for (xs, xe) in [(100.0, 400.0), (350.0, 20.0), (0.0, 0.0)] {
                let g_start = phase_timing_cost_grad_start(phase, xs, xe, w, alpha);
                let num_start = (phase_timing_cost(phase, xs + eps, xe, w, alpha)
                    - phase_timing_cost(phase, xs - eps, xe, w, alpha))
                    / (2.0 * eps);
                assert!(
                    (g_start - num_start).abs() < 1e-2,
                    "phase {phase} start grad {g_start} vs {num_start}"
                );
                let g_end = phase_timing_cost_grad_end(phase, xs, xe, w, alpha);
                let num_end = (phase_timing_cost(phase, xs, xe + eps, w, alpha)
                    - phase_timing_cost(phase, xs, xe - eps, w, alpha))
                    / (2.0 * eps);
                assert!(
                    (g_end - num_end).abs() < 1e-2,
                    "phase {phase} end grad {g_end} vs {num_end}"
                );
            }
        }
    }

    #[test]
    fn moving_sink_downstream_reduces_phase0_cost() {
        let w = 1000.0;
        let near = phase_timing_cost(0, 500.0, 520.0, w, 2.0);
        let far = phase_timing_cost(0, 500.0, 900.0, w, 2.0);
        assert!(near < far);
    }
}
