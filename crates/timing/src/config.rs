//! Delay coefficients of the AQFP timing model.
//!
//! [`TimingConfig`] moved into `aqfp_cells` so a loadable
//! [`Technology`](aqfp_cells::Technology) can bundle the delay coefficients
//! with the rest of the process data; this module re-exports it so existing
//! `aqfp_timing::config::TimingConfig` paths keep working.

pub use aqfp_cells::timing::TimingConfig;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_cells::Technology;

    /// The coefficients the analyzer consumes are the ones the technology
    /// carries — no separate copy of the defaults survives in this crate.
    #[test]
    fn config_is_the_technology_field() {
        let config = TimingConfig::paper_default();
        assert_eq!(Technology::mit_ll_sqf5ee().timing, config);
        assert!((config.phase_budget_ps() - 50.0).abs() < 1e-9);
    }
}
