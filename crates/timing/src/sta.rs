//! Static timing analysis for placed AQFP designs.

use serde::{Deserialize, Serialize};

use crate::config::TimingConfig;
use crate::model::signed_phase_distance;

/// A placed point-to-point connection, the unit of AQFP timing analysis.
///
/// After splitter insertion every AQFP net connects exactly one driver pin to
/// one sink pin on the next clock phase, so a net is fully described by its
/// phase, its endpoint x coordinates and its routed (or estimated) length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedNet {
    /// Clock phase (row) of the driver.
    pub phase: usize,
    /// X coordinate of the driver pin, in µm.
    pub source_x: f64,
    /// X coordinate of the sink pin, in µm.
    pub sink_x: f64,
    /// Interconnect length, in µm (Manhattan estimate before routing, routed
    /// length after).
    pub length_um: f64,
}

/// The outcome of a static timing analysis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Worst negative slack in picoseconds. Positive when all constraints
    /// are met; the paper prints `-` in that case.
    pub wns_ps: f64,
    /// Total negative slack in picoseconds (sum of all violations, ≤ 0).
    pub tns_ps: f64,
    /// Number of nets violating their phase budget.
    pub violation_count: usize,
    /// Number of nets analyzed.
    pub net_count: usize,
}

impl TimingReport {
    /// Whether every net meets its timing constraint.
    pub fn meets_timing(&self) -> bool {
        self.violation_count == 0
    }

    /// The WNS formatted the way the paper's Table III prints it: `-` when
    /// there is no violation, the negative slack in ps otherwise.
    pub fn wns_display(&self) -> String {
        if self.meets_timing() {
            "-".to_owned()
        } else {
            format!("{:.1}", self.wns_ps)
        }
    }
}

/// Static timing analyzer for AQFP designs under four-phase clocking.
///
/// ```
/// use aqfp_timing::{PlacedNet, TimingAnalyzer, TimingConfig};
/// let analyzer = TimingAnalyzer::new(TimingConfig::default());
/// let slack = analyzer.net_slack(
///     &PlacedNet { phase: 0, source_x: 0.0, sink_x: 50.0, length_um: 150.0 },
///     1_000.0,
/// );
/// assert!(slack > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalyzer {
    config: TimingConfig,
}

impl TimingAnalyzer {
    /// Creates an analyzer from a timing configuration.
    pub fn new(config: TimingConfig) -> Self {
        Self { config }
    }

    /// Creates an analyzer using the delay coefficients of a technology —
    /// the flow's way of constructing one, so the timing model can never
    /// drift from the process the other stages target.
    pub fn for_technology(technology: &aqfp_cells::Technology) -> Self {
        Self::new(technology.timing)
    }

    /// The analyzer's configuration.
    pub fn config(&self) -> &TimingConfig {
        &self.config
    }

    /// Propagation delay of a net: gate switching plus interconnect.
    pub fn net_delay_ps(&self, net: &PlacedNet) -> f64 {
        self.config.gate_delay_ps + self.config.wire_delay_ps_per_um * net.length_um
    }

    /// Slack of a single net against its phase budget, in picoseconds.
    ///
    /// The available budget is one clock phase, reduced (or extended) by the
    /// clock-skew term of the zigzag excitation: a sink placed upstream of
    /// the clock sweep must wait for the excitation to reach it, eating into
    /// the budget.
    pub fn net_slack(&self, net: &PlacedNet, layer_width: f64) -> f64 {
        let skew_distance = signed_phase_distance(net.phase, net.source_x, net.sink_x, layer_width);
        let skew_ps = self.config.clock_skew_ps_per_um * skew_distance.max(0.0);
        self.config.phase_budget_ps() - self.net_delay_ps(net) - skew_ps
    }

    /// Analyzes a set of nets and aggregates WNS/TNS.
    ///
    /// `layer_width` is the width `Ŵ` of the placement rows (the widest row
    /// of the design), used by the zigzag skew term.
    pub fn analyze(&self, nets: &[PlacedNet], layer_width: f64) -> TimingReport {
        let mut wns = f64::INFINITY;
        let mut tns = 0.0;
        let mut violations = 0;
        for net in nets {
            let slack = self.net_slack(net, layer_width);
            wns = wns.min(slack);
            if slack < 0.0 {
                tns += slack;
                violations += 1;
            }
        }
        if nets.is_empty() {
            wns = 0.0;
        }
        TimingReport {
            wns_ps: wns,
            tns_ps: tns,
            violation_count: violations,
            net_count: nets.len(),
        }
    }
}

impl Default for TimingAnalyzer {
    fn default() -> Self {
        Self::new(TimingConfig::default())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn analyzer() -> TimingAnalyzer {
        TimingAnalyzer::new(TimingConfig::paper_default())
    }

    #[test]
    fn short_nets_have_positive_slack() {
        let net = PlacedNet { phase: 0, source_x: 100.0, sink_x: 130.0, length_um: 130.0 };
        assert!(analyzer().net_slack(&net, 2_000.0) > 0.0);
    }

    #[test]
    fn very_long_nets_violate_timing() {
        let net = PlacedNet { phase: 1, source_x: 900.0, sink_x: 950.0, length_um: 1_200.0 };
        assert!(analyzer().net_slack(&net, 2_000.0) < 0.0);
    }

    #[test]
    fn upstream_sinks_lose_margin() {
        let a = analyzer();
        let downstream = PlacedNet { phase: 0, source_x: 100.0, sink_x: 50.0, length_um: 150.0 };
        let upstream = PlacedNet { phase: 0, source_x: 100.0, sink_x: 400.0, length_um: 150.0 };
        assert!(
            a.net_slack(&downstream, 1_000.0) > a.net_slack(&upstream, 1_000.0),
            "a sink downstream of the clock sweep must have more slack"
        );
    }

    #[test]
    fn report_aggregates_wns_and_tns() {
        let a = analyzer();
        let nets = vec![
            PlacedNet { phase: 0, source_x: 0.0, sink_x: 10.0, length_um: 100.0 },
            PlacedNet { phase: 2, source_x: 600.0, sink_x: 0.0, length_um: 1_600.0 },
            PlacedNet { phase: 3, source_x: 500.0, sink_x: 450.0, length_um: 2_000.0 },
        ];
        let report = a.analyze(&nets, 800.0);
        assert_eq!(report.net_count, 3);
        assert!(report.violation_count >= 1);
        assert!(report.wns_ps < 0.0);
        assert!(report.tns_ps <= report.wns_ps, "TNS accumulates every violation");
        assert!(!report.meets_timing());
        assert!(report.wns_display().starts_with('-'));
    }

    #[test]
    fn empty_analysis_meets_timing() {
        let report = analyzer().analyze(&[], 100.0);
        assert!(report.meets_timing());
        assert_eq!(report.wns_display(), "-");
        assert_eq!(report.net_count, 0);
    }

    #[test]
    fn delay_scales_with_length() {
        let a = analyzer();
        let short = PlacedNet { phase: 0, source_x: 0.0, sink_x: 0.0, length_um: 100.0 };
        let long = PlacedNet { phase: 0, source_x: 0.0, sink_x: 0.0, length_um: 400.0 };
        assert!(a.net_delay_ps(&long) > a.net_delay_ps(&short));
    }
}
