//! Graph traversal utilities: topological order, logic levels, cones.

use std::collections::VecDeque;

use crate::csr::FanoutCsr;
use crate::gate::GateId;
use crate::netlist::{Netlist, NetlistError};

/// Computes a topological order of the netlist (drivers before sinks) using
/// Kahn's algorithm.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if the netlist contains a combinational
/// cycle, naming one gate on the cycle.
pub fn topological_order(netlist: &Netlist) -> Result<Vec<GateId>, NetlistError> {
    let n = netlist.gate_count();
    // Dangling fan-ins are reported by validation; they are ignored here so
    // topological sorting stays usable on partially built netlists.
    let mut indegree = vec![0usize; n];
    for (id, gate) in netlist.iter() {
        indegree[id.0] = gate.fanin.iter().filter(|d| d.0 < n).count();
    }

    let fanouts = FanoutCsr::build(netlist);
    let mut queue: VecDeque<GateId> = (0..n).filter(|&i| indegree[i] == 0).map(GateId).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for sink in fanouts.of(id) {
            indegree[sink.0] -= 1;
            if indegree[sink.0] == 0 {
                queue.push_back(sink);
            }
        }
    }

    if order.len() != n {
        let stuck = (0..n).find(|&i| indegree[i] > 0).map(GateId).unwrap_or(GateId(0));
        return Err(NetlistError::Cycle { gate: stuck });
    }
    Ok(order)
}

/// Computes the logic level of every gate: primary inputs (and constant
/// sources) are level 0, every other gate sits one level above its deepest
/// fan-in. In AQFP this is the clock-phase index of the gate before path
/// balancing.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] for cyclic netlists.
pub fn logic_levels(netlist: &Netlist) -> Result<Vec<usize>, NetlistError> {
    let order = topological_order(netlist)?;
    let mut level = vec![0usize; netlist.gate_count()];
    for id in order {
        let gate = netlist.gate(id);
        if gate.fanin.is_empty() {
            level[id.0] = 0;
        } else {
            level[id.0] = gate.fanin.iter().map(|d| level[d.0] + 1).max().unwrap_or(0);
        }
    }
    Ok(level)
}

/// The depth of the netlist: the maximum logic level of any gate, i.e. the
/// number of clock phases a signal needs to traverse the circuit.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] for cyclic netlists.
pub fn depth(netlist: &Netlist) -> Result<usize, NetlistError> {
    Ok(logic_levels(netlist)?.into_iter().max().unwrap_or(0))
}

/// Returns the transitive fan-in cone of `root` (all gates whose output can
/// reach `root`), including `root` itself.
pub fn fanin_cone(netlist: &Netlist, root: GateId) -> Vec<GateId> {
    let mut visited = vec![false; netlist.gate_count()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if visited[id.0] {
            continue;
        }
        visited[id.0] = true;
        cone.push(id);
        for &driver in &netlist.gate(id).fanin {
            if !visited[driver.0] {
                stack.push(driver);
            }
        }
    }
    cone.sort();
    cone
}

/// Returns the transitive fan-out cone of `root` (all gates reachable from
/// `root`), including `root` itself.
pub fn fanout_cone(netlist: &Netlist, root: GateId) -> Vec<GateId> {
    let fanouts = FanoutCsr::build(netlist);
    let mut visited = vec![false; netlist.gate_count()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if visited[id.0] {
            continue;
        }
        visited[id.0] = true;
        cone.push(id);
        for sink in fanouts.of(id) {
            if !visited[sink.0] {
                stack.push(sink);
            }
        }
    }
    cone.sort();
    cone
}

/// Whether `ancestor` lies in the transitive fan-in cone of `descendant`.
/// Used by the majority-conversion search to ensure candidate parents are
/// independent (no parent may be a descendant of another).
pub fn is_ancestor(netlist: &Netlist, ancestor: GateId, descendant: GateId) -> bool {
    if ancestor == descendant {
        return true;
    }
    fanin_cone(netlist, descendant).binary_search(&ancestor).is_ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_cells::CellKind;

    fn chain(len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("in");
        for i in 0..len {
            prev = n.add_gate(CellKind::Buffer, format!("b{i}"), vec![prev]);
        }
        n.add_output("out", prev);
        n
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let n = chain(5);
        let order = topological_order(&n).expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; n.gate_count()];
            for (i, id) in order.iter().enumerate() {
                p[id.0] = i;
            }
            p
        };
        for (id, gate) in n.iter() {
            for &driver in &gate.fanin {
                assert!(pos[driver.0] < pos[id.0], "driver must precede sink");
            }
        }
    }

    #[test]
    fn levels_of_chain_increase_by_one() {
        let n = chain(4);
        let levels = logic_levels(&n).expect("acyclic");
        assert_eq!(depth(&n).unwrap(), 5); // 4 buffers + output terminal
        let out = n.primary_outputs()[0];
        assert_eq!(levels[out.0], 5);
        let pi = n.primary_inputs()[0];
        assert_eq!(levels[pi.0], 0);
    }

    #[test]
    fn level_is_longest_path_not_shortest() {
        let mut n = Netlist::new("reconverge");
        let a = n.add_input("a");
        let short = n.add_gate(CellKind::Buffer, "s", vec![a]);
        let l1 = n.add_gate(CellKind::Buffer, "l1", vec![a]);
        let l2 = n.add_gate(CellKind::Buffer, "l2", vec![l1]);
        let join = n.add_gate(CellKind::And, "j", vec![short, l2]);
        n.add_output("y", join);
        let levels = logic_levels(&n).unwrap();
        assert_eq!(levels[join.0], 3, "level follows the longer branch");
    }

    #[test]
    fn cones_and_ancestry() {
        let mut n = Netlist::new("cone");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(CellKind::And, "g1", vec![a, b]);
        let g2 = n.add_gate(CellKind::Buffer, "g2", vec![g1]);
        let g3 = n.add_gate(CellKind::Buffer, "g3", vec![b]);
        n.add_output("y", g2);
        n.add_output("z", g3);

        let cone = fanin_cone(&n, g2);
        assert!(cone.contains(&a) && cone.contains(&b) && cone.contains(&g1) && cone.contains(&g2));
        assert!(!cone.contains(&g3));

        let fo = fanout_cone(&n, b);
        assert!(fo.contains(&g1) && fo.contains(&g3));
        assert!(!fo.contains(&a));

        assert!(is_ancestor(&n, a, g2));
        assert!(is_ancestor(&n, g2, g2));
        assert!(!is_ancestor(&n, g3, g2));
    }

    #[test]
    fn empty_netlist_has_depth_zero() {
        let n = Netlist::new("empty");
        assert_eq!(depth(&n).unwrap(), 0);
        assert!(topological_order(&n).unwrap().is_empty());
    }
}
