//! Gate instances and their identifiers.

use aqfp_cells::CellKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a gate within a [`crate::Netlist`].
///
/// Gate ids are dense indices assigned in insertion order, which lets the
/// rest of the flow use plain vectors for per-gate annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(pub usize);

impl GateId {
    /// The underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A gate instance: a cell kind plus its ordered fan-in drivers.
///
/// The output of a gate is implicit — in the hypergraph view each gate drives
/// exactly one net whose sinks are the gates that list it in their `fanin`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Instance name. Unique within a netlist for parser round-tripping.
    pub name: String,
    /// The cell kind implementing the gate.
    pub kind: CellKind,
    /// Ordered driver gates: `fanin[0]` feeds pin `a`, `fanin[1]` pin `b`, ...
    pub fanin: Vec<GateId>,
}

impl Gate {
    /// Creates a gate from its name, kind and fan-in list.
    pub fn new(name: impl Into<String>, kind: CellKind, fanin: Vec<GateId>) -> Self {
        Self { name: name.into(), kind, fanin }
    }

    /// Whether this gate is a primary input terminal.
    pub fn is_primary_input(&self) -> bool {
        self.kind == CellKind::Input
    }

    /// Whether this gate is a primary output terminal.
    pub fn is_primary_output(&self) -> bool {
        self.kind == CellKind::Output
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn gate_id_display_and_index() {
        let id = GateId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "g42");
    }

    #[test]
    fn terminal_predicates() {
        let pi = Gate::new("x", CellKind::Input, vec![]);
        assert!(pi.is_primary_input());
        assert!(!pi.is_primary_output());
        let po = Gate::new("y", CellKind::Output, vec![GateId(0)]);
        assert!(po.is_primary_output());
    }
}
