//! Flat (CSR) adjacency storage for netlist traversals.
//!
//! [`Netlist::fanouts`] materializes a `Vec<Vec<GateId>>` — one heap
//! allocation per gate. That is fine at benchmark scale, but at 10⁵–10⁶
//! cells the per-gate `Vec` headers and allocator slack dominate peak RSS,
//! and building it inside a loop (the majority-conversion passes) turns
//! linear algorithms quadratic in allocator traffic. [`FanoutCsr`] stores
//! the same adjacency as two flat arrays — `offsets` (one entry per gate,
//! prefix sums) and `sinks` (one entry per connection) — in the style of
//! `aqfp_place::NetIncidence`, and [`out_degrees`] answers the common
//! "how many consumers" question without materializing the lists at all.
//!
//! Entry order is identical to [`Netlist::fanouts`]: for every driver, its
//! sinks appear in ascending consumer id order, so algorithms switched
//! from the nested-`Vec` form to CSR visit gates in the same order and
//! produce identical results.

use crate::gate::GateId;
use crate::netlist::Netlist;

/// Fan-out adjacency in compressed-sparse-row form: two flat arrays
/// instead of one `Vec` per gate. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutCsr {
    /// `offsets[i]..offsets[i + 1]` indexes the sinks of gate `i`;
    /// `gate_count + 1` entries.
    offsets: Vec<u32>,
    /// Consumer gate ids, grouped by driver, ascending within each group.
    sinks: Vec<u32>,
}

impl FanoutCsr {
    /// Builds the fan-out adjacency of `netlist`. Dangling fan-ins (ids
    /// beyond the gate count) are skipped, matching [`Netlist::fanouts`].
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.gate_count();
        let mut offsets = vec![0u32; n + 1];
        for (_, gate) in netlist.iter() {
            for &driver in &gate.fanin {
                if driver.0 < n {
                    offsets[driver.0 + 1] += 1;
                }
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut sinks = vec![0u32; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (id, gate) in netlist.iter() {
            for &driver in &gate.fanin {
                if driver.0 < n {
                    sinks[cursor[driver.0] as usize] = id.0 as u32;
                    cursor[driver.0] += 1;
                }
            }
        }
        Self { offsets, sinks }
    }

    /// The consumers of gate `id`, in ascending id order.
    pub fn of(&self, id: GateId) -> impl Iterator<Item = GateId> + '_ {
        self.sinks[self.offsets[id.0] as usize..self.offsets[id.0 + 1] as usize]
            .iter()
            .map(|&sink| GateId(sink as usize))
    }

    /// Number of consumers of gate `id`.
    pub fn degree(&self, id: GateId) -> usize {
        (self.offsets[id.0 + 1] - self.offsets[id.0]) as usize
    }

    /// Total number of connections stored.
    pub fn connection_count(&self) -> usize {
        self.sinks.len()
    }
}

/// The fan-out degree of every gate, without materializing the adjacency:
/// one flat counting pass over the fan-in lists.
pub fn out_degrees(netlist: &Netlist) -> Vec<usize> {
    let n = netlist.gate_count();
    let mut degrees = vec![0usize; n];
    for (_, gate) in netlist.iter() {
        for &driver in &gate.fanin {
            if driver.0 < n {
                degrees[driver.0] += 1;
            }
        }
    }
    degrees
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::generators::{benchmark_circuit, Benchmark};

    #[test]
    fn csr_matches_the_nested_vec_adjacency() {
        let netlist = benchmark_circuit(Benchmark::Adder8);
        let nested = netlist.fanouts();
        let csr = FanoutCsr::build(&netlist);
        let degrees = out_degrees(&netlist);
        assert_eq!(csr.connection_count(), netlist.connection_count());
        for id in netlist.ids() {
            let flat: Vec<GateId> = csr.of(id).collect();
            assert_eq!(flat, nested[id.0], "sink order must match for gate {id:?}");
            assert_eq!(csr.degree(id), nested[id.0].len());
            assert_eq!(degrees[id.0], nested[id.0].len());
        }
    }

    #[test]
    fn empty_netlist_has_an_empty_csr() {
        let netlist = Netlist::new("empty");
        let csr = FanoutCsr::build(&netlist);
        assert_eq!(csr.connection_count(), 0);
        assert!(out_degrees(&netlist).is_empty());
    }
}
