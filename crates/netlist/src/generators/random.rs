//! Random AOI DAG generator.
//!
//! Used both by the synthetic ISCAS'85 substitutes and by property-based
//! tests that need arbitrary — but structurally valid — netlists.

use aqfp_cells::CellKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::gate::GateId;
use crate::netlist::Netlist;

/// Configuration of the random DAG generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomDagConfig {
    /// Design name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates to create (excluding I/O terminals).
    pub gates: usize,
    /// Target logic depth; the generator spreads gates over this many layers.
    pub depth: usize,
    /// RNG seed, making generation fully deterministic.
    pub seed: u64,
}

impl RandomDagConfig {
    /// A small default configuration useful in tests.
    pub fn small(seed: u64) -> Self {
        Self { name: format!("random_{seed}"), inputs: 8, outputs: 4, gates: 40, depth: 8, seed }
    }
}

/// Generates a random combinational AOI netlist.
///
/// Gates are distributed across `depth` layers; each gate draws its fan-ins
/// from earlier layers with a strong bias toward the immediately preceding
/// layer so the requested depth is actually realised. The gate-kind mix
/// (AND/OR/NAND/NOR/XOR/INV) roughly matches mapped random-logic circuits.
///
/// # Panics
///
/// Panics if any of `inputs`, `outputs`, `gates` or `depth` is zero.
pub fn random_dag(config: &RandomDagConfig) -> Netlist {
    assert!(config.inputs > 0, "need at least one primary input");
    assert!(config.outputs > 0, "need at least one primary output");
    assert!(config.gates > 0, "need at least one gate");
    assert!(config.depth > 0, "depth must be positive");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut net = Netlist::new(config.name.clone());
    let inputs: Vec<GateId> = (0..config.inputs).map(|i| net.add_input(format!("pi{i}"))).collect();

    // layers[0] is the primary inputs; gates go into layers 1..=depth.
    let mut layers: Vec<Vec<GateId>> = vec![inputs];
    let per_layer = config.gates.div_ceil(config.depth);
    let mut remaining = config.gates;
    let mut uid = 0usize;

    for layer_idx in 1..=config.depth {
        if remaining == 0 {
            break;
        }
        let count = per_layer.min(remaining);
        remaining -= count;
        let mut layer = Vec::with_capacity(count);
        for _ in 0..count {
            uid += 1;
            let kind = match rng.gen_range(0..100) {
                0..=29 => CellKind::And,
                30..=59 => CellKind::Or,
                60..=69 => CellKind::Nand,
                70..=79 => CellKind::Nor,
                80..=89 => CellKind::Xor,
                _ => CellKind::Inverter,
            };
            let fanin = (0..kind.input_count())
                .map(|pin| pick_driver(&mut rng, &layers, layer_idx, pin))
                .collect();
            layer.push(net.add_gate(kind, format!("n{uid}"), fanin));
        }
        layers.push(layer);
    }

    // Primary outputs tap the deepest layers first so the depth is observable.
    let all_gates: Vec<GateId> =
        layers.iter().skip(1).rev().flat_map(|layer| layer.iter().copied()).collect();
    for i in 0..config.outputs {
        let source = all_gates[i % all_gates.len()];
        net.add_output(format!("po{i}"), source);
    }
    net
}

/// Picks a driver for a new gate in `layer_idx`: the first pin comes from the
/// previous layer (guaranteeing the layer's depth), the rest from any earlier
/// layer.
fn pick_driver(rng: &mut StdRng, layers: &[Vec<GateId>], layer_idx: usize, pin: usize) -> GateId {
    let source_layer = if pin == 0 { layer_idx - 1 } else { rng.gen_range(0..layer_idx) };
    // Fall back to the closest non-empty layer at or below `source_layer`.
    let layer = (0..=source_layer)
        .rev()
        .map(|l| &layers[l])
        .find(|l| !l.is_empty())
        .expect("layer 0 (primary inputs) is never empty");
    layer[rng.gen_range(0..layer.len())]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::traverse;

    #[test]
    fn generated_dag_is_valid_and_deterministic() {
        let config = RandomDagConfig::small(7);
        let a = random_dag(&config);
        let b = random_dag(&config);
        a.validate().expect("valid");
        assert_eq!(a, b, "same seed must give the same netlist");
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_dag(&RandomDagConfig::small(1));
        let b = random_dag(&RandomDagConfig::small(2));
        assert_ne!(a, b);
    }

    #[test]
    fn respects_requested_sizes() {
        let config = RandomDagConfig {
            name: "sized".into(),
            inputs: 12,
            outputs: 6,
            gates: 100,
            depth: 10,
            seed: 99,
        };
        let n = random_dag(&config);
        assert_eq!(n.primary_inputs().len(), 12);
        assert_eq!(n.primary_outputs().len(), 6);
        assert_eq!(n.cell_count(), 100);
        let depth = traverse::depth(&n).unwrap();
        // Depth includes the PO terminal level; the logic itself spans ~10 layers.
        assert!((10..=12).contains(&depth), "depth {depth} should be close to requested 10");
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        random_dag(&RandomDagConfig { depth: 0, ..RandomDagConfig::small(0) });
    }
}
