//! Approximate parallel counter (APC) generator.
//!
//! The APC benchmarks (apc32, apc128) used by the AQFP community count the
//! number of asserted bits among `n` inputs with a tree of 3:2 compressors
//! (full adders) followed by a small carry-propagate adder. AQFP implements
//! the full-adder carry as a native 3-input majority gate, which is exactly
//! why these counters are attractive for the technology.

use aqfp_cells::CellKind;

use crate::gate::GateId;
use crate::netlist::Netlist;

/// Builds an `n`-input parallel (population-count) counter.
///
/// Primary inputs: `x0..x{n-1}`. Primary outputs: the binary count
/// `cnt0..cnt{k-1}` with `k = ceil(log2(n+1))`.
///
/// The reduction tree uses full adders (`sum = a⊕b⊕c`, `carry = MAJ(a,b,c)`)
/// and half adders on each bit-weight column until at most two bits remain
/// per column, then a ripple carry-propagate adder produces the final count.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn approximate_parallel_counter(n: usize) -> Netlist {
    assert!(n >= 2, "parallel counter needs at least two inputs");
    let mut net = Netlist::new(format!("apc{n}"));
    let inputs: Vec<GateId> = (0..n).map(|i| net.add_input(format!("x{i}"))).collect();

    // columns[w] holds the signals of binary weight 2^w awaiting reduction.
    let mut columns: Vec<Vec<GateId>> = vec![inputs];
    let mut uid = 0usize;

    // Wallace-style column reduction with full/half adders.
    loop {
        let needs_reduction = columns.iter().any(|c| c.len() > 2);
        if !needs_reduction {
            break;
        }
        let mut next: Vec<Vec<GateId>> = vec![Vec::new(); columns.len() + 1];
        for (w, column) in columns.iter().enumerate() {
            let mut idx = 0;
            while column.len() - idx >= 3 {
                let (a, b, c) = (column[idx], column[idx + 1], column[idx + 2]);
                idx += 3;
                let (sum, carry) = full_adder(&mut net, a, b, c, &mut uid);
                next[w].push(sum);
                next[w + 1].push(carry);
            }
            if column.len() - idx == 2 {
                let (a, b) = (column[idx], column[idx + 1]);
                idx += 2;
                let (sum, carry) = half_adder(&mut net, a, b, &mut uid);
                next[w].push(sum);
                next[w + 1].push(carry);
            }
            if column.len() - idx == 1 {
                next[w].push(column[idx]);
            }
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
    }

    // Final carry-propagate (ripple) addition of the at-most-two rows.
    let mut carry: Option<GateId> = None;
    let mut outputs = Vec::new();
    for (w, column) in columns.iter().enumerate() {
        let mut operands: Vec<GateId> = column.clone();
        if let Some(c) = carry.take() {
            operands.push(c);
        }
        let (sum, cout) = match operands.len() {
            0 => break,
            1 => (operands[0], None),
            2 => {
                let (s, c) = half_adder(&mut net, operands[0], operands[1], &mut uid);
                (s, Some(c))
            }
            3 => {
                let (s, c) = full_adder(&mut net, operands[0], operands[1], operands[2], &mut uid);
                (s, Some(c))
            }
            _ => unreachable!("columns are reduced to at most two rows plus a carry"),
        };
        outputs.push((w, sum));
        carry = cout;
    }
    if let Some(c) = carry {
        outputs.push((outputs.len(), c));
    }

    for (w, signal) in outputs {
        net.add_output(format!("cnt{w}"), signal);
    }
    net
}

/// Full adder: returns `(sum, carry)` where `carry` is a native majority gate.
fn full_adder(
    net: &mut Netlist,
    a: GateId,
    b: GateId,
    c: GateId,
    uid: &mut usize,
) -> (GateId, GateId) {
    *uid += 1;
    let id = *uid;
    let ab = net.add_gate(CellKind::Xor, format!("fa{id}_ab"), vec![a, b]);
    let sum = net.add_gate(CellKind::Xor, format!("fa{id}_s"), vec![ab, c]);
    let carry = net.add_gate(CellKind::Majority3, format!("fa{id}_c"), vec![a, b, c]);
    (sum, carry)
}

/// Half adder: returns `(sum, carry)`.
fn half_adder(net: &mut Netlist, a: GateId, b: GateId, uid: &mut usize) -> (GateId, GateId) {
    *uid += 1;
    let id = *uid;
    let sum = net.add_gate(CellKind::Xor, format!("ha{id}_s"), vec![a, b]);
    let carry = net.add_gate(CellKind::And, format!("ha{id}_c"), vec![a, b]);
    (sum, carry)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::simulate::simulate;

    fn count_via_netlist(netlist: &Netlist, bits: &[bool]) -> u64 {
        let outputs = simulate(netlist, bits).expect("acyclic");
        outputs.iter().enumerate().fold(0u64, |acc, (i, b)| acc | ((*b as u64) << i))
    }

    #[test]
    fn counts_population_of_small_vectors() {
        let n = approximate_parallel_counter(8);
        n.validate().expect("valid");
        for pattern in 0u16..256 {
            let bits: Vec<bool> = (0..8).map(|i| pattern & (1 << i) != 0).collect();
            let expected = bits.iter().filter(|b| **b).count() as u64;
            assert_eq!(count_via_netlist(&n, &bits), expected, "pattern {pattern:08b}");
        }
    }

    #[test]
    fn output_width_is_logarithmic() {
        let n = approximate_parallel_counter(32);
        assert_eq!(n.primary_inputs().len(), 32);
        assert_eq!(n.primary_outputs().len(), 6); // ceil(log2(33)) = 6
        n.validate().expect("valid");
    }

    #[test]
    fn apc32_spot_checks() {
        let n = approximate_parallel_counter(32);
        let all_ones = vec![true; 32];
        assert_eq!(count_via_netlist(&n, &all_ones), 32);
        let none = vec![false; 32];
        assert_eq!(count_via_netlist(&n, &none), 0);
        let mut half = vec![false; 32];
        for (i, bit) in half.iter_mut().enumerate() {
            *bit = i % 2 == 0;
        }
        assert_eq!(count_via_netlist(&n, &half), 16);
    }

    #[test]
    fn uses_native_majority_carries() {
        let n = approximate_parallel_counter(16);
        assert!(
            n.count_kind(CellKind::Majority3) > 0,
            "full-adder carries should be majority gates"
        );
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn tiny_counter_rejected() {
        approximate_parallel_counter(1);
    }
}
