//! Synthetic stand-ins for the ISCAS'85 benchmark circuits.
//!
//! The paper evaluates on c432, c499, c1355 and c1908 from the EPFL
//! SCE-benchmarks. Those `.bench` files are not redistributed here, so this
//! module generates synthetic circuits with the same primary-input count,
//! primary-output count, gate count and logic depth as the originals.
//! Because every downstream stage (majority conversion, buffering,
//! placement, routing) only observes the gate-level hypergraph, the workload
//! characteristics that matter — size, depth, fan-out distribution — are
//! preserved; the logic function is not. See `DESIGN.md` for the
//! substitution rationale. Real ISCAS netlists can be used instead through
//! [`crate::parsers::parse_blif`].

use crate::generators::random::{random_dag, RandomDagConfig};
use crate::netlist::Netlist;

/// Generates a synthetic ISCAS'85-like circuit.
///
/// `inputs`, `outputs`, `gates` and `depth` should be the published
/// statistics of the original circuit; `seed` keeps generation
/// deterministic per benchmark.
pub fn synthetic_iscas(
    name: &str,
    inputs: usize,
    outputs: usize,
    gates: usize,
    depth: usize,
    seed: u64,
) -> Netlist {
    let config = RandomDagConfig { name: name.to_owned(), inputs, outputs, gates, depth, seed };
    random_dag(&config)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::traverse;

    #[test]
    fn c432_like_statistics() {
        let n = synthetic_iscas("c432", 36, 7, 160, 17, 0x432);
        assert_eq!(n.name(), "c432");
        assert_eq!(n.primary_inputs().len(), 36);
        assert_eq!(n.primary_outputs().len(), 7);
        assert_eq!(n.cell_count(), 160);
        n.validate().expect("valid");
    }

    #[test]
    fn deeper_circuits_have_larger_depth() {
        let c499 = synthetic_iscas("c499", 41, 32, 202, 11, 0x499);
        let c1908 = synthetic_iscas("c1908", 33, 25, 880, 40, 0x1908);
        let d499 = traverse::depth(&c499).unwrap();
        let d1908 = traverse::depth(&c1908).unwrap();
        assert!(d1908 > d499, "c1908 ({d1908}) should be deeper than c499 ({d499})");
    }

    #[test]
    fn generation_is_reproducible() {
        let a = synthetic_iscas("c1355", 41, 32, 546, 24, 0x1355);
        let b = synthetic_iscas("c1355", 41, 32, 546, 24, 0x1355);
        assert_eq!(a, b);
    }
}
