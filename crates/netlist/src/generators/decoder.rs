//! Binary decoder generator.

use aqfp_cells::CellKind;

use crate::gate::GateId;
use crate::netlist::Netlist;

/// Builds an `n`-to-2ⁿ binary decoder.
///
/// Primary inputs: `a0..a{n-1}` (the binary select). Primary outputs:
/// `d0..d{2^n - 1}`, where `d_k` is asserted exactly when the select equals
/// `k`. Each output is a balanced tree of 2-input AND gates over the select
/// literals, with inverters providing the complemented literals — the same
/// AOI structure a synthesis tool would emit.
///
/// # Panics
///
/// Panics if `n` is zero or greater than 16.
pub fn binary_decoder(n: usize) -> Netlist {
    assert!(n > 0 && n <= 16, "decoder select width must be in 1..=16");
    let mut net = Netlist::new("decoder");
    let inputs: Vec<GateId> = (0..n).map(|i| net.add_input(format!("a{i}"))).collect();
    let inverted: Vec<GateId> = (0..n)
        .map(|i| net.add_gate(CellKind::Inverter, format!("an{i}"), vec![inputs[i]]))
        .collect();

    for k in 0..(1usize << n) {
        // Literals for this minterm.
        let literals: Vec<GateId> =
            (0..n).map(|i| if k & (1 << i) != 0 { inputs[i] } else { inverted[i] }).collect();
        let root = and_tree(&mut net, &literals, &format!("d{k}"));
        net.add_output(format!("d{k}"), root);
    }
    net
}

/// Reduces `signals` with a balanced tree of 2-input AND gates.
fn and_tree(net: &mut Netlist, signals: &[GateId], prefix: &str) -> GateId {
    assert!(!signals.is_empty());
    let mut layer: Vec<GateId> = signals.to_vec();
    let mut level = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (i, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(net.add_gate(
                    CellKind::And,
                    format!("{prefix}_and{level}_{i}"),
                    vec![pair[0], pair[1]],
                ));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        level += 1;
    }
    layer[0]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::simulate::simulate;

    #[test]
    fn three_bit_decoder_is_one_hot() {
        let n = binary_decoder(3);
        n.validate().expect("valid");
        for select in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| select & (1 << i) != 0).collect();
            let outputs = simulate(&n, &inputs).unwrap();
            for (k, bit) in outputs.iter().enumerate() {
                assert_eq!(*bit, k == select, "select={select}, output d{k}");
            }
        }
    }

    #[test]
    fn decoder_output_count() {
        let n = binary_decoder(6);
        assert_eq!(n.primary_inputs().len(), 6);
        assert_eq!(n.primary_outputs().len(), 64);
        n.validate().expect("valid");
    }

    #[test]
    fn decoder_depth_is_logarithmic() {
        let n = binary_decoder(6);
        let depth = crate::traverse::depth(&n).unwrap();
        assert!(depth <= 6, "6-input AND tree plus inverter should be shallow, got {depth}");
    }

    #[test]
    #[should_panic(expected = "select width")]
    fn zero_width_rejected() {
        binary_decoder(0);
    }
}
