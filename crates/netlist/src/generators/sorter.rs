//! Bitonic (Batcher) sorting-network generator.
//!
//! The `sorter32` benchmark is a 32-input single-bit sorting network: every
//! comparator on bits reduces to a pair of AND/OR gates (`min = a & b`,
//! `max = a | b`), so the whole network is a regular AOI structure with heavy
//! reconvergent fan-out — a good stress test for splitter insertion and
//! placement.

use aqfp_cells::CellKind;

use crate::gate::GateId;
use crate::netlist::Netlist;

/// Builds an `n`-input bitonic sorting network over single-bit values.
///
/// Primary inputs: `x0..x{n-1}`. Primary outputs: `y0..y{n-1}` holding the
/// input bits sorted in descending order (`y0` is the OR of everything,
/// `y{n-1}` the AND of everything).
///
/// # Panics
///
/// Panics if `n` is not a power of two or is smaller than 2.
pub fn bitonic_sorter(n: usize) -> Netlist {
    assert!(n >= 2 && n.is_power_of_two(), "sorter size must be a power of two >= 2");
    let mut net = Netlist::new(format!("sorter{n}"));
    let mut wires: Vec<GateId> = (0..n).map(|i| net.add_input(format!("x{i}"))).collect();
    let mut uid = 0usize;

    // Iterative bitonic sort (ascending = descending order of bit values is
    // symmetric; we sort so that larger values come first).
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    let (a, b) = (wires[i], wires[partner]);
                    uid += 1;
                    let max = net.add_gate(CellKind::Or, format!("cmp{uid}_max"), vec![a, b]);
                    let min = net.add_gate(CellKind::And, format!("cmp{uid}_min"), vec![a, b]);
                    if ascending {
                        // Big values bubble toward index i.
                        wires[i] = max;
                        wires[partner] = min;
                    } else {
                        wires[i] = min;
                        wires[partner] = max;
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }

    for (i, w) in wires.iter().enumerate() {
        net.add_output(format!("y{i}"), *w);
    }
    net
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::simulate::simulate;

    fn sorted_by_netlist(netlist: &Netlist, bits: &[bool]) -> Vec<bool> {
        simulate(netlist, bits).expect("acyclic")
    }

    #[test]
    fn eight_input_sorter_exhaustive() {
        let n = bitonic_sorter(8);
        n.validate().expect("valid");
        for pattern in 0u16..256 {
            let bits: Vec<bool> = (0..8).map(|i| pattern & (1 << i) != 0).collect();
            let out = sorted_by_netlist(&n, &bits);
            let ones = bits.iter().filter(|b| **b).count();
            // Descending order: the first `ones` outputs are true.
            let expected: Vec<bool> = (0..8).map(|i| i < ones).collect();
            assert_eq!(out, expected, "pattern {pattern:08b}");
        }
    }

    #[test]
    fn sorter32_shape() {
        let n = bitonic_sorter(32);
        assert_eq!(n.primary_inputs().len(), 32);
        assert_eq!(n.primary_outputs().len(), 32);
        n.validate().expect("valid");
        // Batcher network for 32 inputs has 15 stages of comparators.
        let depth = crate::traverse::depth(&n).unwrap();
        assert!(depth >= 15, "expected at least 15 comparator stages, got {depth}");
    }

    #[test]
    fn sorter_output_is_monotone() {
        let n = bitonic_sorter(16);
        let mut bits = vec![false; 16];
        bits[3] = true;
        bits[9] = true;
        bits[15] = true;
        let out = sorted_by_netlist(&n, &bits);
        for w in out.windows(2) {
            assert!(w[0] as u8 >= w[1] as u8, "output must be sorted descending");
        }
        assert_eq!(out.iter().filter(|b| **b).count(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        bitonic_sorter(12);
    }
}
