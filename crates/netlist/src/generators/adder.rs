//! Kogge-Stone parallel-prefix adder generator.

use aqfp_cells::CellKind;

use crate::gate::GateId;
use crate::netlist::Netlist;

/// Builds an `width`-bit Kogge-Stone adder with carry-in and carry-out.
///
/// Primary inputs (in order): `a0..a{w-1}`, `b0..b{w-1}`, `cin`.
/// Primary outputs (in order): `sum0..sum{w-1}`, `cout`.
///
/// The prefix network uses the classic generate/propagate formulation:
/// `g_i = a_i & b_i`, `p_i = a_i ^ b_i`, combined over log₂(width) prefix
/// levels, exactly the structure of the `adder8` benchmark in the paper.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn kogge_stone_adder(width: usize) -> Netlist {
    assert!(width > 0, "adder width must be positive");
    let mut n = Netlist::new(format!("adder{width}"));

    let a: Vec<GateId> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    let cin = n.add_input("cin");

    // Bit-level generate and propagate.
    let g0: Vec<GateId> = (0..width)
        .map(|i| n.add_gate(CellKind::And, format!("g0_{i}"), vec![a[i], b[i]]))
        .collect();
    let p0: Vec<GateId> = (0..width)
        .map(|i| n.add_gate(CellKind::Xor, format!("p0_{i}"), vec![a[i], b[i]]))
        .collect();

    // Parallel-prefix combination: after the last level, g[i] is the carry
    // generated out of bits 0..=i (ignoring cin) and p[i] is the group
    // propagate over bits 0..=i.
    let mut g = g0.clone();
    let mut p = p0.clone();
    let mut stride = 1;
    let mut level = 1;
    while stride < width {
        let mut next_g = g.clone();
        let mut next_p = p.clone();
        for i in stride..width {
            let j = i - stride;
            // G' = G_i | (P_i & G_j)
            let t = n.add_gate(CellKind::And, format!("ks{level}_t{i}"), vec![p[i], g[j]]);
            next_g[i] = n.add_gate(CellKind::Or, format!("ks{level}_g{i}"), vec![g[i], t]);
            // P' = P_i & P_j
            next_p[i] = n.add_gate(CellKind::And, format!("ks{level}_p{i}"), vec![p[i], p[j]]);
        }
        g = next_g;
        p = next_p;
        stride *= 2;
        level += 1;
    }

    // Carries: c_0 = cin, c_{i+1} = G_{0..i} | (P_{0..i} & cin).
    let mut carries = Vec::with_capacity(width + 1);
    carries.push(cin);
    for i in 0..width {
        let t = n.add_gate(CellKind::And, format!("c_t{i}"), vec![p[i], cin]);
        let c = n.add_gate(CellKind::Or, format!("c{}", i + 1), vec![g[i], t]);
        carries.push(c);
    }

    // Sums: s_i = p0_i ^ c_i.
    for i in 0..width {
        let s = n.add_gate(CellKind::Xor, format!("s{i}"), vec![p0[i], carries[i]]);
        n.add_output(format!("sum{i}"), s);
    }
    n.add_output("cout", carries[width]);
    n
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::simulate::simulate;

    /// Evaluates the generated adder on integer operands.
    fn add_via_netlist(netlist: &Netlist, width: usize, a: u64, b: u64, cin: bool) -> u64 {
        let mut inputs = Vec::new();
        for i in 0..width {
            inputs.push(a & (1 << i) != 0);
        }
        for i in 0..width {
            inputs.push(b & (1 << i) != 0);
        }
        inputs.push(cin);
        let outputs = simulate(netlist, &inputs).expect("acyclic");
        let mut value = 0u64;
        for (i, bit) in outputs.iter().enumerate() {
            if *bit {
                value |= 1 << i;
            }
        }
        value
    }

    #[test]
    fn adder8_matches_integer_addition() {
        let n = kogge_stone_adder(8);
        n.validate().expect("valid");
        let cases = [
            (0u64, 0u64, false),
            (1, 1, false),
            (255, 1, false),
            (200, 100, true),
            (173, 91, false),
        ];
        for (a, b, cin) in cases {
            let expected = a + b + cin as u64;
            assert_eq!(add_via_netlist(&n, 8, a, b, cin), expected, "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn adder_width_four_exhaustive() {
        let n = kogge_stone_adder(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    assert_eq!(add_via_netlist(&n, 4, a, b, cin), a + b + cin as u64);
                }
            }
        }
    }

    #[test]
    fn adder_has_logarithmic_depth() {
        let n = kogge_stone_adder(8);
        let depth = crate::traverse::depth(&n).unwrap();
        // g/p (1) + 3 prefix levels (2 gates each) + carry (2) + sum (1) + PO (1)
        assert!(depth <= 12, "depth {depth} too large for a prefix adder");
    }

    #[test]
    #[should_panic(expected = "adder width must be positive")]
    fn zero_width_rejected() {
        kogge_stone_adder(0);
    }
}
