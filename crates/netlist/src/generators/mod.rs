//! Programmatic constructions of the paper's benchmark circuits.
//!
//! The paper evaluates SuperFlow on classic AQFP benchmark circuits
//! (8-bit Kogge-Stone adder, 32/128-bit approximate parallel counters, a
//! decoder, a 32-bit sorter) and on four ISCAS'85 circuits. The first group
//! is generated here from their well-known structures; the ISCAS'85 circuits
//! are substituted by synthetic circuits of matching size and depth (see
//! `DESIGN.md`), because the original `.bench` files are not bundled.
//!
//! All generators return plain AOI (and/or/inverter/xor) netlists — the
//! majority conversion and buffer/splitter insertion are performed later by
//! the `aqfp-synth` crate, exactly as in the paper's flow.

pub mod adder;
pub mod apc;
pub mod decoder;
pub mod iscas;
pub mod large;
pub mod random;
pub mod sorter;

pub use adder::kogge_stone_adder;
pub use apc::approximate_parallel_counter;
pub use decoder::binary_decoder;
pub use iscas::synthetic_iscas;
pub use large::LargeFamily;
pub use random::{random_dag, RandomDagConfig};
pub use sorter::bitonic_sorter;

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::netlist::Netlist;

/// The benchmark circuits used in the paper's evaluation (Tables II–IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// 8-bit Kogge-Stone adder.
    Adder8,
    /// 32-bit approximate parallel counter.
    Apc32,
    /// 128-bit approximate parallel counter.
    Apc128,
    /// 6-to-64 binary decoder.
    Decoder,
    /// 32-input sorting network.
    Sorter32,
    /// ISCAS'85 c432-like circuit (27-channel interrupt controller).
    C432,
    /// ISCAS'85 c499-like circuit (32-bit SEC circuit).
    C499,
    /// ISCAS'85 c1355-like circuit (32-bit SEC circuit, expanded).
    C1355,
    /// ISCAS'85 c1908-like circuit (16-bit SEC/DED circuit).
    C1908,
}

impl Benchmark {
    /// All benchmarks in the order the paper's tables list them.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Adder8,
        Benchmark::Apc32,
        Benchmark::Apc128,
        Benchmark::Decoder,
        Benchmark::Sorter32,
        Benchmark::C432,
        Benchmark::C499,
        Benchmark::C1355,
        Benchmark::C1908,
    ];

    /// The subset of benchmarks small enough for quick tests and CI.
    pub const SMALL: [Benchmark; 4] =
        [Benchmark::Adder8, Benchmark::Apc32, Benchmark::Decoder, Benchmark::C432];

    /// The benchmark's name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Adder8 => "adder8",
            Benchmark::Apc32 => "apc32",
            Benchmark::Apc128 => "apc128",
            Benchmark::Decoder => "decoder",
            Benchmark::Sorter32 => "sorter32",
            Benchmark::C432 => "c432",
            Benchmark::C499 => "c499",
            Benchmark::C1355 => "c1355",
            Benchmark::C1908 => "c1908",
        }
    }

    /// Whether this benchmark is one of the synthetic ISCAS'85 substitutes.
    pub fn is_iscas(self) -> bool {
        matches!(self, Benchmark::C432 | Benchmark::C499 | Benchmark::C1355 | Benchmark::C1908)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the AOI netlist for a benchmark circuit.
///
/// ```
/// use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
/// let apc = benchmark_circuit(Benchmark::Apc32);
/// assert_eq!(apc.primary_inputs().len(), 32);
/// ```
pub fn benchmark_circuit(benchmark: Benchmark) -> Netlist {
    match benchmark {
        Benchmark::Adder8 => kogge_stone_adder(8),
        Benchmark::Apc32 => approximate_parallel_counter(32),
        Benchmark::Apc128 => approximate_parallel_counter(128),
        Benchmark::Decoder => binary_decoder(6),
        Benchmark::Sorter32 => bitonic_sorter(32),
        Benchmark::C432 => synthetic_iscas("c432", 36, 7, 160, 17, 0x432),
        Benchmark::C499 => synthetic_iscas("c499", 41, 32, 202, 11, 0x499),
        Benchmark::C1355 => synthetic_iscas("c1355", 41, 32, 546, 24, 0x1355),
        Benchmark::C1908 => synthetic_iscas("c1908", 33, 25, 880, 40, 0x1908),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_is_valid() {
        for b in Benchmark::ALL {
            let n = benchmark_circuit(b);
            n.validate().unwrap_or_else(|e| panic!("{b} invalid: {e}"));
            assert!(n.cell_count() > 0, "{b} has no logic");
            assert_eq!(n.name(), b.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Benchmark::ALL.len());
    }

    #[test]
    fn iscas_classification() {
        assert!(Benchmark::C432.is_iscas());
        assert!(!Benchmark::Adder8.is_iscas());
    }
}
