//! Parameterized large-design generators (10⁴–10⁶ cells).
//!
//! The paper's benchmark suite tops out at `apc128`; these families exist
//! to exercise the flow at production scale (the `scale_perf` bench and
//! the CI scale smoke). All three are built around one structural rule
//! that matters for AQFP: **bounded skip distance**. Path balancing
//! inserts `k − 1` buffers for a connection that skips `k` logic levels,
//! so a generator that lets wires span arbitrary depth produces a
//! quadratic buffer blow-up during synthesis. Every connection these
//! generators emit spans at most a small constant number of levels
//! (≤ 4), which keeps the synthesized cell count — and therefore the
//! whole flow — linear in the requested size.
//!
//! Families:
//!
//! * [`tiled_multiplier`] — an n×n grid of multiply-accumulate tiles
//!   (XOR/AND/OR full-adder cores) chained along one axis and coupled to
//!   the neighbouring chain, ~5·n² gates;
//! * [`apc_array`] — a rectangular array of 3:2-counter slices in the
//!   style of the paper's approximate parallel counters, width × depth,
//!   ~5/3·w·d gates, every wire regenerated in every layer;
//! * [`random_dag`] — a layered random AOI DAG like
//!   [`super::random::random_dag`], but with a two-layer locality window
//!   instead of unbounded backward edges.
//!
//! [`LargeFamily::by_cells`] maps a requested cell count to concrete
//! parameters, which is what the `superflow generate` subcommand and the
//! `gen:<family>:<cells>[:<seed>]` input spec use. Requested counts are
//! pre-synthesis gate counts; majority conversion, path-balancing buffers
//! and splitter trees typically grow the placed design by a small constant
//! factor.

use aqfp_cells::CellKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gate::GateId;
use crate::netlist::Netlist;

/// The large-design generator families, in CLI order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LargeFamily {
    /// n×n grid of multiply-accumulate tiles.
    TiledMultiplier,
    /// Rectangular array of 3:2-counter slices.
    ApcArray,
    /// Layered random AOI DAG with a two-layer locality window.
    RandomDag,
}

impl LargeFamily {
    /// Every family, in the order `superflow generate` documents them.
    pub const ALL: [LargeFamily; 3] =
        [LargeFamily::TiledMultiplier, LargeFamily::ApcArray, LargeFamily::RandomDag];

    /// The family's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            LargeFamily::TiledMultiplier => "tiled_mul",
            LargeFamily::ApcArray => "apc_array",
            LargeFamily::RandomDag => "random_dag",
        }
    }

    /// Parses a CLI family name (hyphens and underscores are equivalent).
    pub fn parse(name: &str) -> Option<Self> {
        let normalized = name.replace('-', "_");
        Self::ALL.into_iter().find(|f| f.name() == normalized)
    }

    /// Builds a netlist of roughly `cells` gates (pre-synthesis; see the
    /// [module docs](self)). The seed only affects [`LargeFamily::RandomDag`] —
    /// the other two families are deterministic structures.
    pub fn by_cells(self, cells: usize, seed: u64) -> Netlist {
        let cells = cells.max(16);
        match self {
            LargeFamily::TiledMultiplier => {
                // gates ≈ 5·n²
                let n = ((cells as f64 / 5.0).sqrt().round() as usize).max(2);
                tiled_multiplier(n)
            }
            LargeFamily::ApcArray => {
                // gates ≈ 5/3·w·d with a roughly square placed aspect.
                let width = (((cells as f64 * 3.0 / 5.0).sqrt().round() as usize) / 3 * 3).max(3);
                let depth = (cells * 3 / (5 * width)).max(1);
                apc_array(width, depth)
            }
            LargeFamily::RandomDag => random_dag(cells, seed),
        }
    }
}

impl std::fmt::Display for LargeFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An n×n grid of multiply-accumulate tiles (~5·n² gates).
///
/// Each of the `n` parallel chains carries a (sum, carry) wire pair
/// through `n` tile stages. A tile is a full-adder core — two XORs, two
/// ANDs and an OR — that folds in a coupling wire from the neighbouring
/// chain's previous stage, so the grid is connected both along and across
/// chains while every wire spans at most three logic levels.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn tiled_multiplier(n: usize) -> Netlist {
    assert!(n >= 2, "need at least a 2x2 tile grid");
    let mut net = Netlist::new(format!("tiled_mul_{n}"));

    // Per-chain (sum, carry) state, seeded from the operand inputs.
    let mut sum: Vec<GateId> = (0..n).map(|c| net.add_input(format!("a{c}"))).collect();
    let mut carry: Vec<GateId> = (0..n).map(|c| net.add_input(format!("b{c}"))).collect();

    for stage in 0..n {
        let prev_sum = sum.clone();
        for chain in 0..n {
            // Coupling wire: the neighbouring chain's previous sum (own
            // sum for chain 0) — one stage back, never further.
            let x = prev_sum[chain.saturating_sub(1)];
            let (s, c) = (sum[chain], carry[chain]);
            let t1 = net.add_gate(CellKind::Xor, format!("t1_{stage}_{chain}"), vec![s, c]);
            let t2 = net.add_gate(CellKind::And, format!("t2_{stage}_{chain}"), vec![s, c]);
            let t3 = net.add_gate(CellKind::Xor, format!("t3_{stage}_{chain}"), vec![t1, x]);
            let t4 = net.add_gate(CellKind::And, format!("t4_{stage}_{chain}"), vec![t1, x]);
            let co = net.add_gate(CellKind::Or, format!("co_{stage}_{chain}"), vec![t2, t4]);
            sum[chain] = t3;
            carry[chain] = co;
        }
    }

    for chain in 0..n {
        net.add_output(format!("p{chain}"), sum[chain]);
        net.add_output(format!("q{chain}"), carry[chain]);
    }
    net
}

/// A `width` × `depth` array of 3:2-counter slices (~5/3·w·d gates).
///
/// Every layer consumes all `width` wires in chunks of three through a
/// full-adder compressor that re-emits three wires (sum, carry-out and
/// the partial term), so no wire ever passes a layer untouched — the
/// bounded-skip rule of the [module docs](self). Leftover wires (when
/// `width` is not a multiple of 3) are regenerated through XOR/AND or
/// inverter slices.
///
/// # Panics
///
/// Panics if `width` or `depth` is zero.
pub fn apc_array(width: usize, depth: usize) -> Netlist {
    assert!(width > 0, "need at least one column");
    assert!(depth > 0, "need at least one layer");
    let mut net = Netlist::new(format!("apc_array_{width}x{depth}"));
    let mut wires: Vec<GateId> = (0..width).map(|i| net.add_input(format!("pi{i}"))).collect();

    for layer in 0..depth {
        let mut next = Vec::with_capacity(width);
        let mut chunks = wires.chunks_exact(3);
        for (i, chunk) in chunks.by_ref().enumerate() {
            let (a, b, cin) = (chunk[0], chunk[1], chunk[2]);
            let x1 = net.add_gate(CellKind::Xor, format!("x1_{layer}_{i}"), vec![a, b]);
            let s = net.add_gate(CellKind::Xor, format!("s_{layer}_{i}"), vec![x1, cin]);
            let m1 = net.add_gate(CellKind::And, format!("m1_{layer}_{i}"), vec![a, b]);
            let m2 = net.add_gate(CellKind::And, format!("m2_{layer}_{i}"), vec![x1, cin]);
            let co = net.add_gate(CellKind::Or, format!("co_{layer}_{i}"), vec![m1, m2]);
            next.push(s);
            next.push(co);
            next.push(m2);
        }
        match chunks.remainder() {
            [a, b] => {
                next.push(net.add_gate(CellKind::Xor, format!("rx_{layer}"), vec![*a, *b]));
                next.push(net.add_gate(CellKind::And, format!("ra_{layer}"), vec![*a, *b]));
            }
            [a] => {
                next.push(net.add_gate(CellKind::Inverter, format!("ri_{layer}"), vec![*a]));
            }
            _ => {}
        }
        wires = next;
    }

    for (i, wire) in wires.iter().enumerate() {
        net.add_output(format!("po{i}"), *wire);
    }
    net
}

/// A layered random AOI DAG of roughly `cells` gates with a two-layer
/// locality window.
///
/// The layer grid is square-ish (`width ≈ depth ≈ √cells`), giving placed
/// designs a realistic aspect ratio. Unlike
/// [`super::random::random_dag`], which lets non-critical fan-ins reach
/// back to *any* earlier layer, every fan-in here comes from the previous
/// layer or the one before it, so path balancing stays linear.
///
/// # Panics
///
/// Panics if `cells` is zero.
pub fn random_dag(cells: usize, seed: u64) -> Netlist {
    assert!(cells > 0, "need at least one gate");
    let width = (cells as f64).sqrt().round().max(4.0) as usize;
    let depth = cells.div_ceil(width);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Netlist::new(format!("random_dag_{cells}_s{seed}"));
    let inputs: Vec<GateId> = (0..width).map(|i| net.add_input(format!("pi{i}"))).collect();

    let mut previous = inputs.clone();
    let mut before_previous: Vec<GateId> = Vec::new();
    let mut remaining = cells;
    let mut uid = 0usize;
    for _ in 0..depth {
        if remaining == 0 {
            break;
        }
        let count = width.min(remaining);
        remaining -= count;
        let mut layer = Vec::with_capacity(count);
        for _ in 0..count {
            uid += 1;
            let kind = match rng.gen_range(0..100) {
                0..=29 => CellKind::And,
                30..=59 => CellKind::Or,
                60..=69 => CellKind::Nand,
                70..=79 => CellKind::Nor,
                80..=89 => CellKind::Xor,
                _ => CellKind::Inverter,
            };
            let fanin = (0..kind.input_count())
                .map(|pin| {
                    // Pin 0 keeps the layer's depth honest; the rest stay
                    // inside the two-layer locality window.
                    let pool = if pin == 0 || before_previous.is_empty() || rng.gen_range(0..4) < 3
                    {
                        &previous
                    } else {
                        &before_previous
                    };
                    pool[rng.gen_range(0..pool.len())]
                })
                .collect();
            layer.push(net.add_gate(kind, format!("n{uid}"), fanin));
        }
        before_previous = std::mem::replace(&mut previous, layer);
    }

    let outputs = previous.len().clamp(1, 64);
    for i in 0..outputs {
        net.add_output(format!("po{i}"), previous[i % previous.len()]);
    }
    net
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::traverse;

    #[test]
    fn tiled_multiplier_is_valid_and_sized() {
        let n = tiled_multiplier(8);
        n.validate().expect("valid");
        assert_eq!(n.cell_count(), 5 * 8 * 8);
        assert_eq!(n.primary_inputs().len(), 16);
        assert_eq!(n.primary_outputs().len(), 16);
    }

    #[test]
    fn apc_array_is_valid_and_regenerates_every_wire() {
        let n = apc_array(10, 6);
        n.validate().expect("valid");
        // 3 chunks of 5 gates plus a leftover inverter slice per layer.
        assert_eq!(n.cell_count(), (3 * 5 + 1) * 6);
        let depth = traverse::depth(&n).unwrap();
        assert!(depth >= 6, "each layer must add at least one level, got {depth}");
    }

    #[test]
    fn random_dag_is_deterministic_and_respects_cells() {
        let a = random_dag(500, 42);
        let b = random_dag(500, 42);
        a.validate().expect("valid");
        assert_eq!(a, b);
        assert_eq!(a.cell_count(), 500);
        assert_ne!(a, random_dag(500, 43));
    }

    #[test]
    fn connections_stay_inside_the_locality_window() {
        for netlist in
            [tiled_multiplier(6), apc_array(9, 5), random_dag(400, 7), random_dag(1000, 1)]
        {
            let levels = traverse::logic_levels(&netlist).unwrap();
            let mut max_skip = 0usize;
            for (id, gate) in netlist.iter() {
                for driver in &gate.fanin {
                    max_skip = max_skip.max(levels[id.0].saturating_sub(levels[driver.0]));
                }
            }
            assert!(
                max_skip <= 4,
                "{}: a wire spans {max_skip} levels; path balancing would blow up",
                netlist.name()
            );
        }
    }

    #[test]
    fn by_cells_lands_near_the_requested_count() {
        for family in LargeFamily::ALL {
            for target in [1_000usize, 10_000] {
                let netlist = family.by_cells(target, 1);
                netlist.validate().expect("valid");
                let cells = netlist.cell_count();
                let lo = target * 7 / 10;
                let hi = target * 13 / 10;
                assert!(
                    (lo..=hi).contains(&cells),
                    "{family}: requested {target}, generated {cells}"
                );
            }
        }
    }

    #[test]
    fn family_names_round_trip() {
        for family in LargeFamily::ALL {
            assert_eq!(LargeFamily::parse(family.name()), Some(family));
        }
        assert_eq!(LargeFamily::parse("tiled-mul"), Some(LargeFamily::TiledMultiplier));
        assert_eq!(LargeFamily::parse("nope"), None);
    }
}
