//! Source-location spans attached to parsed netlist objects.
//!
//! The Verilog/BLIF front-ends record where every signal and instance was
//! declared so downstream diagnostics (parse errors, lint findings) can point
//! at the offending source location instead of just naming the design.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in a netlist source file: 1-based line and column.
///
/// The all-zero value means "no source location" — the natural span of gates
/// built through the in-memory [`crate::Netlist`] API rather than a parser.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceSpan {
    /// 1-based line number (0 = unknown).
    pub line: usize,
    /// 1-based column number, counted in characters (0 = unknown).
    pub column: usize,
}

impl SourceSpan {
    /// The "no source location" span.
    pub const UNKNOWN: SourceSpan = SourceSpan { line: 0, column: 0 };

    /// Creates a span at 1-based `line`:`column`.
    pub const fn new(line: usize, column: usize) -> Self {
        Self { line, column }
    }

    /// Whether the span carries a real location.
    pub fn is_known(self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column == 0 {
            write!(f, "line {}", self.line)
        } else {
            write!(f, "line {}, column {}", self.line, self.column)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_default_and_not_known() {
        assert_eq!(SourceSpan::default(), SourceSpan::UNKNOWN);
        assert!(!SourceSpan::UNKNOWN.is_known());
        assert!(SourceSpan::new(3, 1).is_known());
    }

    #[test]
    fn display_omits_a_zero_column() {
        assert_eq!(SourceSpan::new(7, 0).to_string(), "line 7");
        assert_eq!(SourceSpan::new(7, 12).to_string(), "line 7, column 12");
    }
}
