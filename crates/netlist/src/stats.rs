//! Netlist summary statistics (the quantities Table II of the paper reports).

use aqfp_cells::{CellKind, Technology};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::netlist::Netlist;
use crate::traverse;

/// Summary statistics of a netlist under a given technology.
///
/// `jj_count`, `net_count` and `delay` correspond to the `#JJs`, `#Nets` and
/// `#Delay` columns of Table II in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Total number of gates including virtual terminals.
    pub gate_count: usize,
    /// Logic gates (majority-based cells and inverters).
    pub logic_count: usize,
    /// Path-balancing buffers.
    pub buffer_count: usize,
    /// Splitter cells of any arity.
    pub splitter_count: usize,
    /// Primary inputs.
    pub input_count: usize,
    /// Primary outputs.
    pub output_count: usize,
    /// Total Josephson junctions.
    pub jj_count: usize,
    /// Number of logical nets.
    pub net_count: usize,
    /// Circuit depth in clock phases (levels).
    pub delay: usize,
}

impl NetlistStats {
    /// Computes the statistics of `netlist` under `technology`.
    pub fn of(netlist: &Netlist, technology: &Technology) -> Self {
        let delay = traverse::depth(netlist).unwrap_or(0);
        let splitter_count = netlist.count_kind(CellKind::Splitter2)
            + netlist.count_kind(CellKind::Splitter3)
            + netlist.count_kind(CellKind::Splitter4);
        let logic_count = netlist.iter().filter(|(_, g)| g.kind.is_logic()).count();
        Self {
            name: netlist.name().to_owned(),
            gate_count: netlist.gate_count(),
            logic_count,
            buffer_count: netlist.count_kind(CellKind::Buffer),
            splitter_count,
            input_count: netlist.primary_inputs().len(),
            output_count: netlist.primary_outputs().len(),
            jj_count: netlist.jj_count(technology),
            net_count: netlist.net_count(),
            delay,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} logic, {} buffers, {} splitters), {} JJs, {} nets, delay {}",
            self.name,
            self.gate_count,
            self.logic_count,
            self.buffer_count,
            self.splitter_count,
            self.jj_count,
            self.net_count,
            self.delay
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_cells::CellKind;

    #[test]
    fn stats_count_cell_classes() {
        let lib = Technology::mit_ll_sqf5ee();
        let mut n = Netlist::new("stats");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_gate(CellKind::Splitter2, "s", vec![a]);
        let g = n.add_gate(CellKind::And, "g", vec![s, b]);
        let buf = n.add_gate(CellKind::Buffer, "buf", vec![s]);
        let m = n.add_gate(CellKind::Majority3, "m", vec![g, buf, b]);
        n.add_output("y", m);

        let stats = n.stats(&lib);
        assert_eq!(stats.logic_count, 2);
        assert_eq!(stats.buffer_count, 1);
        assert_eq!(stats.splitter_count, 1);
        assert_eq!(stats.input_count, 2);
        assert_eq!(stats.output_count, 1);
        assert_eq!(stats.jj_count, 4 + 6 + 2 + 6);
        assert_eq!(stats.delay, 4);
        assert!(stats.to_string().contains("stats"));
    }
}
