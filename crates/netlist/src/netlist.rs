//! The [`Netlist`] container and its validation rules.

use aqfp_cells::{CellKind, Technology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::gate::{Gate, GateId};
use crate::span::SourceSpan;
use crate::stats::NetlistStats;
use crate::traverse;

/// Errors produced when building or validating a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate references a fan-in id that does not exist.
    DanglingFanin {
        /// The offending gate.
        gate: GateId,
        /// The referenced, non-existent driver.
        missing: GateId,
    },
    /// A gate has the wrong number of fan-ins for its cell kind.
    ArityMismatch {
        /// The offending gate.
        gate: GateId,
        /// The cell kind of the gate.
        kind: CellKind,
        /// Number of fan-ins expected by the kind.
        expected: usize,
        /// Number of fan-ins actually present.
        found: usize,
    },
    /// The netlist contains a combinational cycle.
    Cycle {
        /// A gate that participates in the cycle.
        gate: GateId,
    },
    /// Two gates share the same instance name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A name lookup failed.
    UnknownName {
        /// The name that was not found.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingFanin { gate, missing } => {
                write!(f, "gate {gate} references missing driver {missing}")
            }
            NetlistError::ArityMismatch { gate, kind, expected, found } => {
                write!(f, "gate {gate} of kind {kind} expects {expected} fan-ins but has {found}")
            }
            NetlistError::Cycle { gate } => {
                write!(f, "combinational cycle detected through gate {gate}")
            }
            NetlistError::DuplicateName { name } => write!(f, "duplicate gate name `{name}`"),
            NetlistError::UnknownName { name } => write!(f, "unknown gate name `{name}`"),
        }
    }
}

impl Error for NetlistError {}

/// A gate-level netlist: a DAG of [`Gate`]s with explicit primary inputs and
/// outputs.
///
/// Primary inputs are gates of kind [`CellKind::Input`] (no fan-in); primary
/// outputs are gates of kind [`CellKind::Output`] (exactly one fan-in). Every
/// other gate drives exactly one logical signal consumed by the gates that
/// name it in their fan-in lists.
///
/// ```
/// use aqfp_cells::CellKind;
/// use aqfp_netlist::Netlist;
///
/// let mut n = Netlist::new("toy");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.add_gate(CellKind::And, "g", vec![a, b]);
/// n.add_output("y", g);
/// assert!(n.validate().is_ok());
/// assert_eq!(n.gate_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    // Source span per gate, parallel to `gates`; `SourceSpan::UNKNOWN` for
    // gates built through the API rather than a parser.
    spans: Vec<SourceSpan>,
    primary_inputs: Vec<GateId>,
    primary_outputs: Vec<GateId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            gates: Vec::new(),
            spans: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input terminal and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push(Gate::new(name, CellKind::Input, vec![]));
        self.primary_inputs.push(id);
        id
    }

    /// Adds a primary output terminal driven by `driver` and returns its id.
    pub fn add_output(&mut self, name: impl Into<String>, driver: GateId) -> GateId {
        let id = self.push(Gate::new(name, CellKind::Output, vec![driver]));
        self.primary_outputs.push(id);
        id
    }

    /// Adds a logic gate and returns its id. Fan-in order is pin order.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        fanin: Vec<GateId>,
    ) -> GateId {
        self.push(Gate::new(name, kind, fanin))
    }

    fn push(&mut self, gate: Gate) -> GateId {
        let id = GateId(self.gates.len());
        self.gates.push(gate);
        self.spans.push(SourceSpan::UNKNOWN);
        id
    }

    /// The source location a gate was declared at, when it came from a
    /// parser; [`SourceSpan::UNKNOWN`] for API-built gates and out-of-range
    /// ids.
    pub fn span(&self, id: GateId) -> SourceSpan {
        self.spans.get(id.0).copied().unwrap_or(SourceSpan::UNKNOWN)
    }

    /// Records the source location of a gate. Out-of-range ids are ignored.
    pub fn set_span(&mut self, id: GateId, span: SourceSpan) {
        if let Some(slot) = self.spans.get_mut(id.0) {
            *slot = span;
        }
    }

    /// Number of gates, including virtual I/O terminals.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of logic cells excluding virtual I/O terminals.
    pub fn cell_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.kind.is_terminal()).count()
    }

    /// Read access to a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// Mutable access to a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.0]
    }

    /// Iterates over `(id, gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates.iter().enumerate().map(|(i, g)| (GateId(i), g))
    }

    /// All gate ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len()).map(GateId)
    }

    /// The primary input terminals in declaration order.
    pub fn primary_inputs(&self) -> &[GateId] {
        &self.primary_inputs
    }

    /// The primary output terminals in declaration order.
    pub fn primary_outputs(&self) -> &[GateId] {
        &self.primary_outputs
    }

    /// Finds a gate by instance name (linear scan; intended for parsers and
    /// tests, not hot paths).
    pub fn find_by_name(&self, name: &str) -> Option<GateId> {
        self.gates.iter().position(|g| g.name == name).map(GateId)
    }

    /// Builds the fan-out adjacency: for every gate, the list of gates that
    /// consume its output, in consumer id order.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut fanouts = vec![Vec::new(); self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            for &driver in &gate.fanin {
                if driver.0 < self.gates.len() {
                    fanouts[driver.0].push(GateId(i));
                }
            }
        }
        fanouts
    }

    /// Number of logical nets: every non-output gate whose output is consumed
    /// by at least one sink (or that feeds a primary output) drives one net.
    pub fn net_count(&self) -> usize {
        let degrees = crate::csr::out_degrees(self);
        self.iter().filter(|(id, gate)| !gate.is_primary_output() && degrees[id.0] > 0).count()
    }

    /// Total number of point-to-point pin connections (sum of fan-in sizes).
    pub fn connection_count(&self) -> usize {
        self.gates.iter().map(|g| g.fanin.len()).sum()
    }

    /// Counts gates of a given kind.
    pub fn count_kind(&self, kind: CellKind) -> usize {
        self.gates.iter().filter(|g| g.kind == kind).count()
    }

    /// Total Josephson-junction cost of the netlist under `technology`.
    pub fn jj_count(&self, technology: &Technology) -> usize {
        self.gates.iter().map(|g| technology.cell(g.kind).jj_count).sum()
    }

    /// Summary statistics of the netlist (gate counts by class, JJs, depth).
    pub fn stats(&self, technology: &Technology) -> NetlistStats {
        NetlistStats::of(self, technology)
    }

    /// Returns a copy of the netlist with every gate that cannot reach a
    /// primary output removed (primary inputs are always kept). Gate ids are
    /// re-compacted; use the returned netlist's name lookup to re-identify
    /// gates.
    ///
    /// This is the "sweep" pass synthesis runs after rewriting cones, which
    /// leaves the replaced gates dangling.
    pub fn pruned(&self) -> Netlist {
        // Mark gates reachable backwards from the primary outputs.
        let mut keep = vec![false; self.gates.len()];
        let mut stack: Vec<GateId> = self.primary_outputs.clone();
        while let Some(id) = stack.pop() {
            if keep[id.0] {
                continue;
            }
            keep[id.0] = true;
            for &driver in &self.gate(id).fanin {
                if driver.0 < self.gates.len() && !keep[driver.0] {
                    stack.push(driver);
                }
            }
        }
        for id in &self.primary_inputs {
            keep[id.0] = true;
        }

        let mut remap: Vec<Option<GateId>> = vec![None; self.gates.len()];
        let mut pruned = Netlist::new(self.name.clone());
        for (i, gate) in self.gates.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let new_id = GateId(pruned.gates.len());
            remap[i] = Some(new_id);
            pruned.gates.push(Gate::new(gate.name.clone(), gate.kind, Vec::new()));
            pruned.spans.push(self.spans[i]);
            if gate.is_primary_input() {
                pruned.primary_inputs.push(new_id);
            }
            if gate.is_primary_output() {
                pruned.primary_outputs.push(new_id);
            }
        }
        // Second pass: remap fan-ins (drivers of kept gates are always kept).
        for (i, gate) in self.gates.iter().enumerate() {
            let Some(new_id) = remap[i] else { continue };
            let fanin = gate
                .fanin
                .iter()
                .map(|d| remap[d.0].expect("driver of a kept gate is kept"))
                .collect();
            pruned.gates[new_id.0].fanin = fanin;
        }
        pruned
    }

    /// Checks structural invariants: fan-in arity per kind, no dangling
    /// references, unique names, acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut names: HashMap<&str, usize> = HashMap::with_capacity(self.gates.len());
        for (i, gate) in self.gates.iter().enumerate() {
            if let Some(_prev) = names.insert(gate.name.as_str(), i) {
                return Err(NetlistError::DuplicateName { name: gate.name.clone() });
            }
            let expected = gate.kind.input_count();
            if gate.fanin.len() != expected {
                return Err(NetlistError::ArityMismatch {
                    gate: GateId(i),
                    kind: gate.kind,
                    expected,
                    found: gate.fanin.len(),
                });
            }
            for &driver in &gate.fanin {
                if driver.0 >= self.gates.len() {
                    return Err(NetlistError::DanglingFanin { gate: GateId(i), missing: driver });
                }
            }
        }
        traverse::topological_order(self).map(|_| ())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn toy() -> Netlist {
        let mut n = Netlist::new("toy");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(CellKind::And, "g1", vec![a, b]);
        let g2 = n.add_gate(CellKind::Or, "g2", vec![g1, c]);
        n.add_output("y", g2);
        n
    }

    #[test]
    fn toy_netlist_counts() {
        let n = toy();
        assert_eq!(n.gate_count(), 6);
        assert_eq!(n.cell_count(), 2);
        assert_eq!(n.primary_inputs().len(), 3);
        assert_eq!(n.primary_outputs().len(), 1);
        assert_eq!(n.connection_count(), 4 + 1);
        assert_eq!(n.count_kind(CellKind::And), 1);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn net_count_excludes_unused_outputs() {
        let mut n = toy();
        // A dangling gate drives no net.
        let a = n.primary_inputs()[0];
        let b = n.primary_inputs()[1];
        n.add_gate(CellKind::And, "unused", vec![a, b]);
        // 3 PIs drive nets (a,b feed two gates each? actually a,b feed g1/unused, c feeds g2),
        // g1 and g2 drive nets, unused drives nothing.
        assert_eq!(n.net_count(), 5);
    }

    #[test]
    fn fanouts_are_consistent_with_fanin() {
        let n = toy();
        let fanouts = n.fanouts();
        let mut edges_from_fanout = 0;
        for (i, sinks) in fanouts.iter().enumerate() {
            for sink in sinks {
                assert!(n.gate(*sink).fanin.contains(&GateId(i)));
                edges_from_fanout += 1;
            }
        }
        assert_eq!(edges_from_fanout, n.connection_count());
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        n.add_gate(CellKind::And, "g", vec![a]);
        assert!(matches!(n.validate(), Err(NetlistError::ArityMismatch { .. })));
    }

    #[test]
    fn validation_rejects_duplicate_names() {
        let mut n = Netlist::new("bad");
        n.add_input("a");
        n.add_input("a");
        assert!(matches!(n.validate(), Err(NetlistError::DuplicateName { .. })));
    }

    #[test]
    fn validation_rejects_dangling_fanin() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        n.add_gate(CellKind::Buffer, "g", vec![GateId(17)]);
        let _ = a;
        assert!(matches!(n.validate(), Err(NetlistError::DanglingFanin { .. })));
    }

    #[test]
    fn validation_rejects_cycles() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        // g1 and g2 feed each other.
        let g1 = n.add_gate(CellKind::And, "g1", vec![a, GateId(2)]);
        let _g2 = n.add_gate(CellKind::Buffer, "g2", vec![g1]);
        assert!(matches!(n.validate(), Err(NetlistError::Cycle { .. })));
    }

    #[test]
    fn pruning_removes_dead_logic() {
        let mut n = toy();
        let a = n.primary_inputs()[0];
        let b = n.primary_inputs()[1];
        let dead = n.add_gate(CellKind::And, "dead", vec![a, b]);
        n.add_gate(CellKind::Buffer, "dead2", vec![dead]);
        assert_eq!(n.cell_count(), 4);
        let pruned = n.pruned();
        assert_eq!(pruned.cell_count(), 2);
        assert_eq!(pruned.primary_inputs().len(), 3);
        assert_eq!(pruned.primary_outputs().len(), 1);
        pruned.validate().expect("pruned netlist stays valid");
        assert!(pruned.find_by_name("dead").is_none());
    }

    #[test]
    fn pruning_preserves_function() {
        let n = toy();
        let pruned = n.pruned();
        assert!(crate::simulate::equivalent(&n, &pruned).unwrap());
    }

    #[test]
    fn find_by_name_round_trips() {
        let n = toy();
        let id = n.find_by_name("g2").expect("exists");
        assert_eq!(n.gate(id).kind, CellKind::Or);
        assert!(n.find_by_name("nope").is_none());
    }
}
