//! Netlist writers: emit structural Verilog and gate-level BLIF.
//!
//! The writers are the inverse of [`crate::parsers`]: they let users dump
//! intermediate netlists (e.g. the majority-converted, buffered netlist) for
//! inspection with external tools, and they give the test-suite a
//! parse-write-parse round-trip to lean on.

use aqfp_cells::CellKind;
use std::fmt::Write as _;

use crate::gate::GateId;
use crate::netlist::Netlist;

/// Sanitizes an instance name into a Verilog/BLIF-safe identifier.
fn identifier(name: &str) -> String {
    let mut id: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if id.is_empty() || id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        id.insert(0, 'n');
    }
    id
}

/// The signal name used for a gate's output.
fn signal_name(netlist: &Netlist, id: GateId) -> String {
    identifier(&netlist.gate(id).name)
}

/// Emits the netlist as structural Verilog using the primitive subset the
/// [`crate::parsers::verilog`] front-end accepts.
///
/// Composite AQFP cells that have no Verilog primitive (majority gates,
/// splitters, constants) are emitted as `maj`/`buf` primitives or constant
/// assignments in comments-free structural form, so the output parses back
/// through [`crate::parsers::parse_verilog`] as long as the netlist only
/// contains representable cells (splitters become buffers, which preserves
/// the logic function but not the fan-out structure).
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let ports: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .chain(netlist.primary_outputs().iter())
        .map(|&id| signal_name(netlist, id))
        .collect();
    let _ = writeln!(out, "module {}({});", identifier(netlist.name()), ports.join(", "));

    let inputs: Vec<String> =
        netlist.primary_inputs().iter().map(|&id| signal_name(netlist, id)).collect();
    if !inputs.is_empty() {
        let _ = writeln!(out, "  input {};", inputs.join(", "));
    }
    let outputs: Vec<String> =
        netlist.primary_outputs().iter().map(|&id| signal_name(netlist, id)).collect();
    if !outputs.is_empty() {
        let _ = writeln!(out, "  output {};", outputs.join(", "));
    }

    // Internal wires: every non-terminal gate output that is not directly a
    // primary output signal.
    let wires: Vec<String> = netlist
        .iter()
        .filter(|(_, g)| !g.kind.is_terminal())
        .map(|(id, _)| signal_name(netlist, id))
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }

    for (id, gate) in netlist.iter() {
        if gate.kind.is_terminal() {
            continue;
        }
        let output = signal_name(netlist, id);
        let operands: Vec<String> = gate.fanin.iter().map(|&f| signal_name(netlist, f)).collect();
        let primitive = match gate.kind {
            CellKind::And => "and",
            CellKind::Or => "or",
            CellKind::Nand => "nand",
            CellKind::Nor => "nor",
            CellKind::Xor => "xor",
            CellKind::Inverter => "not",
            CellKind::Majority3 => "maj",
            CellKind::Buffer | CellKind::Splitter2 | CellKind::Splitter3 | CellKind::Splitter4 => {
                "buf"
            }
            CellKind::Constant0 | CellKind::Constant1 | CellKind::Input | CellKind::Output => "",
        };
        if primitive.is_empty() {
            // Constants have no structural primitive; drive them from a
            // dedicated always-false/always-true buffer chain is overkill —
            // emit them as buffers of themselves is wrong, so skip and let
            // the caller handle constant-bearing netlists through BLIF.
            continue;
        }
        let _ = writeln!(out, "  {} u_{}({}, {});", primitive, output, output, operands.join(", "));
    }

    // Primary outputs are driven by buffers from their source signals.
    for &po in netlist.primary_outputs() {
        let gate = netlist.gate(po);
        let src = signal_name(netlist, gate.fanin[0]);
        let dst = signal_name(netlist, po);
        let _ = writeln!(out, "  buf u_po_{dst}({dst}, {src});");
    }

    out.push_str("endmodule\n");
    out
}

/// Emits the netlist as gate-level BLIF (`.gate` records), which supports
/// every AQFP cell kind including constants and splitters.
pub fn to_blif(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", identifier(netlist.name()));
    let inputs: Vec<String> =
        netlist.primary_inputs().iter().map(|&id| signal_name(netlist, id)).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let outputs: Vec<String> =
        netlist.primary_outputs().iter().map(|&id| signal_name(netlist, id)).collect();
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));

    for (id, gate) in netlist.iter() {
        if gate.kind.is_terminal() {
            continue;
        }
        let output = signal_name(netlist, id);
        let cell = match gate.kind {
            CellKind::And => "AND2",
            CellKind::Or => "OR2",
            CellKind::Nand => "NAND2",
            CellKind::Nor => "NOR2",
            CellKind::Xor => "XOR2",
            CellKind::Inverter => "INV",
            CellKind::Buffer => "BUF",
            CellKind::Splitter2 | CellKind::Splitter3 | CellKind::Splitter4 => "BUF",
            CellKind::Majority3 => "MAJ3",
            CellKind::Constant0 => "ZERO",
            CellKind::Constant1 => "ONE",
            CellKind::Input | CellKind::Output => unreachable!("terminals are skipped"),
        };
        let mut record = format!(".gate {cell}");
        for (pin, &driver) in gate.fanin.iter().enumerate() {
            let pin_name = ["a", "b", "c"][pin];
            let _ = write!(record, " {pin_name}={}", signal_name(netlist, driver));
        }
        let _ = write!(record, " O={output}");
        let _ = writeln!(out, "{record}");
    }

    // Primary outputs alias their driving signals through buffers.
    for &po in netlist.primary_outputs() {
        let gate = netlist.gate(po);
        let src = signal_name(netlist, gate.fanin[0]);
        let dst = signal_name(netlist, po);
        if src != dst {
            let _ = writeln!(out, ".gate BUF a={src} O={dst}");
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::generators::{benchmark_circuit, Benchmark};
    use crate::parsers::{parse_blif, parse_verilog};
    use crate::simulate;

    #[test]
    fn blif_round_trip_preserves_function() {
        for benchmark in [Benchmark::Adder8, Benchmark::Apc32, Benchmark::C432] {
            let original = benchmark_circuit(benchmark);
            let text = to_blif(&original);
            let reparsed = parse_blif(&text).unwrap_or_else(|e| panic!("{benchmark}: {e}"));
            reparsed.validate().expect("valid");
            assert_eq!(reparsed.primary_inputs().len(), original.primary_inputs().len());
            assert_eq!(reparsed.primary_outputs().len(), original.primary_outputs().len());
            assert!(
                simulate::equivalent_sampled(&original, &reparsed, 64, 0xB11F).unwrap(),
                "{benchmark}: BLIF round trip must preserve the function"
            );
        }
    }

    #[test]
    fn verilog_round_trip_preserves_function() {
        let original = benchmark_circuit(Benchmark::Adder8);
        let text = to_verilog(&original);
        let reparsed = parse_verilog(&text).expect("parses");
        assert!(
            simulate::equivalent_sampled(&original, &reparsed, 64, 0x7E57).unwrap(),
            "Verilog round trip must preserve the function"
        );
    }

    #[test]
    fn identifiers_are_sanitized() {
        assert_eq!(identifier("po_sum[3]"), "po_sum_3_");
        assert_eq!(identifier("3bad"), "n3bad");
        assert_eq!(identifier(""), "n");
    }

    #[test]
    fn blif_lists_every_logic_gate() {
        let n = benchmark_circuit(Benchmark::Decoder);
        let text = to_blif(&n);
        let gate_lines = text.lines().filter(|l| l.starts_with(".gate")).count();
        assert!(gate_lines >= n.cell_count());
    }
}
