//! Gate-level BLIF front-end.
//!
//! Supports the `.gate` flavour of BLIF used by standard-cell mapped
//! netlists (and by the EPFL SCE-benchmarks the paper cites), plus simple
//! `.names` covers for constants, buffers and inverters:
//!
//! ```text
//! .model c17
//! .inputs a b c
//! .outputs y
//! .gate AND2 a=a b=b O=n1
//! .gate OR2  a=n1 b=c O=y
//! .end
//! ```

use aqfp_cells::CellKind;
use std::collections::HashMap;

use super::ParseNetlistError;
use crate::gate::GateId;
use crate::netlist::Netlist;

/// Parses a gate-level BLIF description into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] for unknown gate types, undriven signals,
/// duplicate drivers or malformed records.
pub fn parse_blif(source: &str) -> Result<Netlist, ParseNetlistError> {
    let mut model = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut input_lines: HashMap<String, usize> = HashMap::new();
    // (declaration line, signal)
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut output_lines: HashMap<String, usize> = HashMap::new();
    // (line, kind, ordered input signals, output signal)
    let mut gates: Vec<(usize, CellKind, Vec<String>, String)> = Vec::new();

    let logical_lines = join_continuations(source);
    let mut pending_names: Option<(usize, Vec<String>)> = None;
    let mut pending_cover: Vec<String> = Vec::new();

    let flush_names = |pending: &mut Option<(usize, Vec<String>)>,
                       cover: &mut Vec<String>,
                       gates: &mut Vec<(usize, CellKind, Vec<String>, String)>|
     -> Result<(), ParseNetlistError> {
        if let Some((line, signals)) = pending.take() {
            let kind = names_kind(&signals, cover)
                .ok_or_else(|| ParseNetlistError::new(line, "unsupported .names cover"))?;
            // Guarded at the `.names` directive, but a typed error beats an
            // unreachable-by-construction panic if that invariant ever slips.
            let output = signals
                .last()
                .ok_or_else(|| ParseNetlistError::new(line, ".names needs at least an output"))?
                .clone();
            let inputs = signals[..signals.len() - 1].to_vec();
            gates.push((line, kind, inputs, output));
            cover.clear();
        }
        Ok(())
    };

    for (line_no, line) in logical_lines {
        let line = line.split('#').next().unwrap_or("").trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if !line.starts_with('.') {
            // Part of a .names cover.
            if pending_names.is_some() {
                pending_cover.push(line);
            }
            continue;
        }
        flush_names(&mut pending_names, &mut pending_cover, &mut gates)?;
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().unwrap_or("");
        match directive {
            ".model" => {
                model = tokens.next().unwrap_or("blif").to_owned();
            }
            ".inputs" => {
                for signal in tokens {
                    if let Some(previous) = input_lines.insert(signal.to_owned(), line_no) {
                        return Err(ParseNetlistError::new(
                            line_no,
                            format!("input `{signal}` declared twice (first on line {previous})"),
                        ));
                    }
                    inputs.push(signal.to_owned());
                }
            }
            ".outputs" => {
                for signal in tokens {
                    if let Some(previous) = output_lines.insert(signal.to_owned(), line_no) {
                        return Err(ParseNetlistError::new(
                            line_no,
                            format!("output `{signal}` declared twice (first on line {previous})"),
                        ));
                    }
                    outputs.push((line_no, signal.to_owned()));
                }
            }
            ".gate" => {
                let cell = tokens
                    .next()
                    .ok_or_else(|| ParseNetlistError::new(line_no, ".gate missing cell name"))?;
                let kind = gate_kind(cell).ok_or_else(|| {
                    ParseNetlistError::new(line_no, format!("unknown gate type `{cell}`"))
                })?;
                let mut pin_map: HashMap<String, String> = HashMap::new();
                for binding in tokens {
                    let (pin, signal) = binding.split_once('=').ok_or_else(|| {
                        ParseNetlistError::new(line_no, format!("malformed binding `{binding}`"))
                    })?;
                    pin_map.insert(pin.to_lowercase(), signal.to_owned());
                }
                let output = pin_map
                    .remove("o")
                    .or_else(|| pin_map.remove("y"))
                    .or_else(|| pin_map.remove("out"))
                    .or_else(|| pin_map.remove("xout"))
                    .ok_or_else(|| ParseNetlistError::new(line_no, ".gate missing output pin"))?;
                let mut gate_inputs = Vec::new();
                for pin in ["a", "b", "c"].iter().take(kind.input_count()) {
                    let signal = pin_map.remove(*pin).ok_or_else(|| {
                        ParseNetlistError::new(line_no, format!(".gate missing input pin `{pin}`"))
                    })?;
                    gate_inputs.push(signal);
                }
                gates.push((line_no, kind, gate_inputs, output));
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_owned).collect();
                if signals.is_empty() {
                    return Err(ParseNetlistError::new(line_no, ".names needs at least an output"));
                }
                pending_names = Some((line_no, signals));
            }
            ".end" => break,
            ".latch" => {
                return Err(ParseNetlistError::new(
                    line_no,
                    "sequential elements (.latch) are not supported",
                ))
            }
            _ => {
                // Ignore other directives (.clock, .area, ...).
            }
        }
    }
    flush_names(&mut pending_names, &mut pending_cover, &mut gates)?;

    build(&model, &inputs, &outputs, &gates)
}

/// Joins BLIF continuation lines (trailing `\`) and returns numbered lines.
fn join_continuations(source: &str) -> Vec<(usize, String)> {
    let mut lines = Vec::new();
    let mut buffer = String::new();
    let mut start = 1;
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        if buffer.is_empty() {
            start = line_no;
        }
        if let Some(stripped) = raw.trim_end().strip_suffix('\\') {
            buffer.push_str(stripped);
            buffer.push(' ');
        } else {
            buffer.push_str(raw);
            lines.push((start, std::mem::take(&mut buffer)));
        }
    }
    if !buffer.is_empty() {
        lines.push((start, buffer));
    }
    lines
}

fn gate_kind(cell: &str) -> Option<CellKind> {
    let upper = cell.to_uppercase();
    let base = upper.trim_end_matches(|c: char| c.is_ascii_digit() || c == '_' || c == 'X');
    match base {
        "AND" => Some(CellKind::And),
        "OR" => Some(CellKind::Or),
        "NAND" => Some(CellKind::Nand),
        "NOR" => Some(CellKind::Nor),
        "XOR" => Some(CellKind::Xor),
        "INV" | "NOT" => Some(CellKind::Inverter),
        "BUF" | "BUFF" => Some(CellKind::Buffer),
        "MAJ" | "MAJORITY" => Some(CellKind::Majority3),
        "ZERO" | "CONST" => Some(CellKind::Constant0),
        "ONE" | "VDD" => Some(CellKind::Constant1),
        _ => None,
    }
}

/// Recognizes the small set of `.names` covers needed for mapped netlists:
/// constants, buffers, inverters, 2-input AND/OR.
fn names_kind(signals: &[String], cover: &[String]) -> Option<CellKind> {
    let n_inputs = signals.len() - 1;
    match n_inputs {
        0 => {
            if cover.iter().any(|c| c.trim() == "1") {
                Some(CellKind::Constant1)
            } else {
                Some(CellKind::Constant0)
            }
        }
        1 => {
            let c: Vec<&str> = cover.iter().map(|s| s.trim()).collect();
            if c == ["1 1"] {
                Some(CellKind::Buffer)
            } else if c == ["0 1"] {
                Some(CellKind::Inverter)
            } else {
                None
            }
        }
        2 => {
            let mut rows: Vec<&str> = cover.iter().map(|s| s.trim()).collect();
            rows.sort_unstable();
            if rows == ["11 1"] {
                Some(CellKind::And)
            } else if rows == ["-1 1", "1- 1"] {
                Some(CellKind::Or)
            } else if rows == ["01 1", "10 1"] {
                Some(CellKind::Xor)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn build(
    model: &str,
    inputs: &[String],
    outputs: &[(usize, String)],
    gates: &[(usize, CellKind, Vec<String>, String)],
) -> Result<Netlist, ParseNetlistError> {
    let mut netlist = Netlist::new(model);
    let mut driver: HashMap<String, GateId> = HashMap::new();
    for name in inputs {
        let id = netlist.add_input(name.clone());
        driver.insert(name.clone(), id);
    }
    let mut pending: Vec<(usize, GateId, Vec<String>)> = Vec::new();
    for (line, kind, gate_inputs, output) in gates {
        let id = netlist.add_gate(*kind, format!("u_{output}"), vec![]);
        if driver.insert(output.clone(), id).is_some() {
            return Err(ParseNetlistError::new(
                *line,
                format!("signal `{output}` has multiple drivers"),
            ));
        }
        pending.push((*line, id, gate_inputs.clone()));
    }
    for (line, id, gate_inputs) in pending {
        let mut fanin = Vec::with_capacity(gate_inputs.len());
        for signal in &gate_inputs {
            let src = driver.get(signal).ok_or_else(|| {
                ParseNetlistError::new(line, format!("signal `{signal}` is never driven"))
            })?;
            fanin.push(*src);
        }
        netlist.gate_mut(id).fanin = fanin;
    }
    for (line, name) in outputs {
        let src = driver.get(name).ok_or_else(|| {
            ParseNetlistError::new(*line, format!("output `{name}` is never driven"))
        })?;
        netlist.add_output(format!("po_{name}"), *src);
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    const C17_LIKE: &str = r#"
# a tiny mapped netlist
.model c17ish
.inputs a b c
.outputs y z
.gate AND2 a=a b=b O=n1
.gate OR2  a=n1 b=c O=y
.gate NAND2 a=b b=c O=z
.end
"#;

    #[test]
    fn parses_gate_records() {
        let n = parse_blif(C17_LIKE).expect("parses");
        assert_eq!(n.name(), "c17ish");
        assert_eq!(n.primary_inputs().len(), 3);
        assert_eq!(n.primary_outputs().len(), 2);
        n.validate().expect("valid");
        // y = (a&b)|c, z = !(b&c)
        assert_eq!(simulate::simulate(&n, &[true, true, false]).unwrap(), vec![true, true]);
        assert_eq!(simulate::simulate(&n, &[false, false, true]).unwrap(), vec![true, true]);
        assert_eq!(simulate::simulate(&n, &[false, true, true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn parses_names_covers() {
        let src = r#"
.model names_demo
.inputs a b
.outputs y n k one
.names a b y
11 1
.names a n
0 1
.names a k
1 1
.names one
1
.end
"#;
        let n = parse_blif(src).expect("parses");
        n.validate().expect("valid");
        // y = a&b, n = !a, k = a, one = 1
        assert_eq!(simulate::simulate(&n, &[true, false]).unwrap(), vec![false, false, true, true]);
    }

    #[test]
    fn rejects_unknown_gate() {
        let src = ".model m\n.inputs a\n.outputs y\n.gate LUT4 a=a O=y\n.end\n";
        assert!(parse_blif(src).unwrap_err().message.contains("unknown gate type"));
    }

    #[test]
    fn rejects_latches() {
        let src = ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        assert!(parse_blif(src).unwrap_err().message.contains("not supported"));
    }

    #[test]
    fn rejects_undriven_output() {
        let src = ".model m\n.inputs a\n.outputs y\n.end\n";
        assert!(parse_blif(src).unwrap_err().message.contains("never driven"));
    }

    #[test]
    fn duplicate_declarations_carry_both_line_numbers() {
        let src = ".model m\n.inputs a\n.inputs a\n.outputs y\n.gate BUF a=a O=y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("declared twice"), "{}", err.message);
        assert!(err.message.contains("line 2"), "{}", err.message);
        let src = ".model m\n.inputs a\n.outputs y y\n.gate BUF a=a O=y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert!(err.message.contains("output `y` declared twice"), "{}", err.message);
    }

    #[test]
    fn undriven_outputs_report_their_declaration_line() {
        let src = ".model m\n.inputs a\n.outputs y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("never driven"), "{}", err.message);
    }

    #[test]
    fn continuation_lines_are_joined() {
        let src = ".model m\n.inputs a \\\nb\n.outputs y\n.gate AND2 a=a b=b O=y\n.end\n";
        let n = parse_blif(src).expect("parses");
        assert_eq!(n.primary_inputs().len(), 2);
    }

    #[test]
    fn majority_gate_records() {
        let src = ".model m\n.inputs a b c\n.outputs y\n.gate MAJ3 a=a b=b c=c O=y\n.end\n";
        let n = parse_blif(src).expect("parses");
        assert_eq!(simulate::simulate(&n, &[true, false, true]).unwrap(), vec![true]);
    }
}
