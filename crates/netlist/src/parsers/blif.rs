//! Gate-level BLIF front-end.
//!
//! Supports the `.gate` flavour of BLIF used by standard-cell mapped
//! netlists (and by the EPFL SCE-benchmarks the paper cites), plus simple
//! `.names` covers for constants, buffers and inverters:
//!
//! ```text
//! .model c17
//! .inputs a b c
//! .outputs y
//! .gate AND2 a=a b=b O=n1
//! .gate OR2  a=n1 b=c O=y
//! .end
//! ```

use aqfp_cells::CellKind;
use std::collections::HashMap;

use super::{placeholder, ParseNetlistError, ParsedDesign, RecoveredDefect, RecoveredKind};
use crate::gate::GateId;
use crate::netlist::Netlist;
use crate::span::SourceSpan;

/// Parses a gate-level BLIF description into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] for unknown gate types, undriven signals,
/// duplicate drivers or malformed records.
pub fn parse_blif(source: &str) -> Result<Netlist, ParseNetlistError> {
    super::strictify(parse_blif_recovering(source)?)
}

/// One `.gate`/`.names` record: the directive's span, the cell kind, the
/// ordered input signals and the output signal, each with its token span.
struct GateRecord {
    span: SourceSpan,
    kind: CellKind,
    inputs: Vec<(String, SourceSpan)>,
    output: (String, SourceSpan),
}

/// Parses gate-level BLIF, patching undriven signals with constant-0
/// placeholder gates instead of failing, and recording each patch as a
/// [`RecoveredDefect`] with its exact source span.
///
/// Malformed records (unknown gate types, bad bindings, `.latch`, duplicate
/// drivers) are still hard errors.
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] for the unrecoverable problems above.
pub fn parse_blif_recovering(source: &str) -> Result<ParsedDesign, ParseNetlistError> {
    let mut model = String::from("blif");
    let mut inputs: Vec<(String, SourceSpan)> = Vec::new();
    let mut input_spans: HashMap<String, SourceSpan> = HashMap::new();
    let mut outputs: Vec<(String, SourceSpan)> = Vec::new();
    let mut output_spans: HashMap<String, SourceSpan> = HashMap::new();
    let mut gates: Vec<GateRecord> = Vec::new();

    let logical_lines = join_continuations(source);
    let mut pending_names: Option<(SourceSpan, Vec<(String, SourceSpan)>)> = None;
    let mut pending_cover: Vec<String> = Vec::new();

    let flush_names = |pending: &mut Option<(SourceSpan, Vec<(String, SourceSpan)>)>,
                       cover: &mut Vec<String>,
                       gates: &mut Vec<GateRecord>|
     -> Result<(), ParseNetlistError> {
        if let Some((span, signals)) = pending.take() {
            let names: Vec<&str> = signals.iter().map(|(name, _)| name.as_str()).collect();
            let kind = names_kind(&names, cover)
                .ok_or_else(|| ParseNetlistError::at(span, "unsupported .names cover"))?;
            // Guarded at the `.names` directive, but a typed error beats an
            // unreachable-by-construction panic if that invariant ever slips.
            let output = signals
                .last()
                .ok_or_else(|| ParseNetlistError::at(span, ".names needs at least an output"))?
                .clone();
            let inputs = signals[..signals.len() - 1].to_vec();
            gates.push(GateRecord { span, kind, inputs, output });
            cover.clear();
        }
        Ok(())
    };

    for line in logical_lines {
        // `#` starts a comment; truncating keeps byte offsets into `text`
        // aligned with the position table.
        let text = &line.text[..line.text.find('#').unwrap_or(line.text.len())];
        let tokens = tokenize(text);
        let Some(&(first_offset, first)) = tokens.first() else { continue };
        if !first.starts_with('.') {
            // Part of a .names cover.
            if pending_names.is_some() {
                pending_cover.push(text.trim().to_owned());
            }
            continue;
        }
        flush_names(&mut pending_names, &mut pending_cover, &mut gates)?;
        let directive_span = line.span_at(first_offset);
        let line_no = directive_span.line;
        let rest = &tokens[1..];
        match first {
            ".model" => {
                model = rest.first().map_or("blif", |&(_, token)| token).to_owned();
            }
            ".inputs" => {
                for &(offset, signal) in rest {
                    let span = line.span_at(offset);
                    if let Some(previous) = input_spans.insert(signal.to_owned(), span) {
                        return Err(ParseNetlistError::at(
                            span,
                            format!(
                                "input `{signal}` declared twice (first on line {})",
                                previous.line
                            ),
                        ));
                    }
                    inputs.push((signal.to_owned(), span));
                }
            }
            ".outputs" => {
                for &(offset, signal) in rest {
                    let span = line.span_at(offset);
                    if let Some(previous) = output_spans.insert(signal.to_owned(), span) {
                        return Err(ParseNetlistError::at(
                            span,
                            format!(
                                "output `{signal}` declared twice (first on line {})",
                                previous.line
                            ),
                        ));
                    }
                    outputs.push((signal.to_owned(), span));
                }
            }
            ".gate" => {
                let &(_, cell) = rest
                    .first()
                    .ok_or_else(|| ParseNetlistError::new(line_no, ".gate missing cell name"))?;
                let kind = gate_kind(cell).ok_or_else(|| {
                    ParseNetlistError::at(directive_span, format!("unknown gate type `{cell}`"))
                })?;
                let mut pin_map: HashMap<String, (String, SourceSpan)> = HashMap::new();
                for &(offset, binding) in &rest[1..] {
                    let (pin, signal) = binding.split_once('=').ok_or_else(|| {
                        ParseNetlistError::at(
                            line.span_at(offset),
                            format!("malformed binding `{binding}`"),
                        )
                    })?;
                    let signal_span = line.span_at(offset + pin.len() + 1);
                    pin_map.insert(pin.to_lowercase(), (signal.to_owned(), signal_span));
                }
                let output = pin_map
                    .remove("o")
                    .or_else(|| pin_map.remove("y"))
                    .or_else(|| pin_map.remove("out"))
                    .or_else(|| pin_map.remove("xout"))
                    .ok_or_else(|| ParseNetlistError::new(line_no, ".gate missing output pin"))?;
                let mut gate_inputs = Vec::new();
                for pin in ["a", "b", "c"].iter().take(kind.input_count()) {
                    let signal = pin_map.remove(*pin).ok_or_else(|| {
                        ParseNetlistError::new(line_no, format!(".gate missing input pin `{pin}`"))
                    })?;
                    gate_inputs.push(signal);
                }
                gates.push(GateRecord { span: directive_span, kind, inputs: gate_inputs, output });
            }
            ".names" => {
                let signals: Vec<(String, SourceSpan)> = rest
                    .iter()
                    .map(|&(offset, token)| (token.to_owned(), line.span_at(offset)))
                    .collect();
                if signals.is_empty() {
                    return Err(ParseNetlistError::new(line_no, ".names needs at least an output"));
                }
                pending_names = Some((directive_span, signals));
            }
            ".end" => break,
            ".latch" => {
                return Err(ParseNetlistError::at(
                    directive_span,
                    "sequential elements (.latch) are not supported",
                ))
            }
            _ => {
                // Ignore other directives (.clock, .area, ...).
            }
        }
    }
    flush_names(&mut pending_names, &mut pending_cover, &mut gates)?;

    build(&model, &inputs, &outputs, &gates)
}

/// A BLIF logical line (continuations joined) with a `(line, column)`
/// position recorded per byte of its text.
struct LogicalLine {
    text: String,
    pos: Vec<(usize, usize)>,
}

impl LogicalLine {
    fn span_at(&self, offset: usize) -> SourceSpan {
        self.pos
            .get(offset)
            .or_else(|| self.pos.last())
            .map_or(SourceSpan::UNKNOWN, |&(line, column)| SourceSpan::new(line, column))
    }
}

/// Joins BLIF continuation lines (trailing `\`), recording the original
/// position of every retained character.
fn join_continuations(source: &str) -> Vec<LogicalLine> {
    let mut lines = Vec::new();
    let mut text = String::new();
    let mut pos: Vec<(usize, usize)> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let (content, continued) = match raw.trim_end().strip_suffix('\\') {
            Some(stripped) => (stripped, true),
            None => (raw, false),
        };
        let mut column = 0;
        for ch in content.chars() {
            column += 1;
            text.push(ch);
            for _ in 0..ch.len_utf8() {
                pos.push((line_no, column));
            }
        }
        if continued {
            // The backslash becomes a joining space at its own position.
            text.push(' ');
            pos.push((line_no, column + 1));
        } else {
            lines.push(LogicalLine {
                text: std::mem::take(&mut text),
                pos: std::mem::take(&mut pos),
            });
        }
    }
    if !text.is_empty() {
        lines.push(LogicalLine { text, pos });
    }
    lines
}

/// Whitespace-tokenizes `text`, returning each token with its byte offset.
fn tokenize(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in text.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, &text[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, &text[s..]));
    }
    out
}

fn gate_kind(cell: &str) -> Option<CellKind> {
    let upper = cell.to_uppercase();
    let base = upper.trim_end_matches(|c: char| c.is_ascii_digit() || c == '_' || c == 'X');
    match base {
        "AND" => Some(CellKind::And),
        "OR" => Some(CellKind::Or),
        "NAND" => Some(CellKind::Nand),
        "NOR" => Some(CellKind::Nor),
        "XOR" => Some(CellKind::Xor),
        "INV" | "NOT" => Some(CellKind::Inverter),
        "BUF" | "BUFF" => Some(CellKind::Buffer),
        "MAJ" | "MAJORITY" => Some(CellKind::Majority3),
        "ZERO" | "CONST" => Some(CellKind::Constant0),
        "ONE" | "VDD" => Some(CellKind::Constant1),
        _ => None,
    }
}

/// Recognizes the small set of `.names` covers needed for mapped netlists:
/// constants, buffers, inverters, 2-input AND/OR.
fn names_kind(signals: &[&str], cover: &[String]) -> Option<CellKind> {
    let n_inputs = signals.len().checked_sub(1)?;
    match n_inputs {
        0 => {
            if cover.iter().any(|c| c.trim() == "1") {
                Some(CellKind::Constant1)
            } else {
                Some(CellKind::Constant0)
            }
        }
        1 => {
            let c: Vec<&str> = cover.iter().map(|s| s.trim()).collect();
            if c == ["1 1"] {
                Some(CellKind::Buffer)
            } else if c == ["0 1"] {
                Some(CellKind::Inverter)
            } else {
                None
            }
        }
        2 => {
            let mut rows: Vec<&str> = cover.iter().map(|s| s.trim()).collect();
            rows.sort_unstable();
            if rows == ["11 1"] {
                Some(CellKind::And)
            } else if rows == ["-1 1", "1- 1"] {
                Some(CellKind::Or)
            } else if rows == ["01 1", "10 1"] {
                Some(CellKind::Xor)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn build(
    model: &str,
    inputs: &[(String, SourceSpan)],
    outputs: &[(String, SourceSpan)],
    gates: &[GateRecord],
) -> Result<ParsedDesign, ParseNetlistError> {
    let mut netlist = Netlist::new(model);
    let mut recovered: Vec<RecoveredDefect> = Vec::new();
    let mut driver: HashMap<String, GateId> = HashMap::new();
    let mut placeholders: HashMap<String, GateId> = HashMap::new();
    for (name, span) in inputs {
        let id = netlist.add_input(name.clone());
        netlist.set_span(id, *span);
        driver.insert(name.clone(), id);
    }
    let mut pending: Vec<(GateId, &GateRecord)> = Vec::new();
    for record in gates {
        let (output, output_span) = &record.output;
        let id = netlist.add_gate(record.kind, format!("u_{output}"), vec![]);
        netlist.set_span(id, record.span);
        if driver.insert(output.clone(), id).is_some() {
            return Err(ParseNetlistError::at(
                *output_span,
                format!("signal `{output}` has multiple drivers"),
            ));
        }
        pending.push((id, record));
    }
    for (id, record) in pending {
        let mut fanin = Vec::with_capacity(record.inputs.len());
        for (signal, span) in &record.inputs {
            let src = match driver.get(signal) {
                Some(src) => *src,
                None => placeholder(
                    &mut netlist,
                    &mut placeholders,
                    &mut recovered,
                    signal,
                    RecoveredKind::UndrivenSignal,
                    *span,
                ),
            };
            fanin.push(src);
        }
        netlist.gate_mut(id).fanin = fanin;
    }
    for (name, span) in outputs {
        let src = match driver.get(name).or_else(|| placeholders.get(name)) {
            Some(src) => *src,
            None => placeholder(
                &mut netlist,
                &mut placeholders,
                &mut recovered,
                name,
                RecoveredKind::UndrivenOutput,
                *span,
            ),
        };
        let id = netlist.add_output(format!("po_{name}"), src);
        netlist.set_span(id, *span);
    }
    Ok(ParsedDesign { netlist, recovered })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::simulate;

    const C17_LIKE: &str = r#"
# a tiny mapped netlist
.model c17ish
.inputs a b c
.outputs y z
.gate AND2 a=a b=b O=n1
.gate OR2  a=n1 b=c O=y
.gate NAND2 a=b b=c O=z
.end
"#;

    #[test]
    fn parses_gate_records() {
        let n = parse_blif(C17_LIKE).expect("parses");
        assert_eq!(n.name(), "c17ish");
        assert_eq!(n.primary_inputs().len(), 3);
        assert_eq!(n.primary_outputs().len(), 2);
        n.validate().expect("valid");
        // y = (a&b)|c, z = !(b&c)
        assert_eq!(simulate::simulate(&n, &[true, true, false]).unwrap(), vec![true, true]);
        assert_eq!(simulate::simulate(&n, &[false, false, true]).unwrap(), vec![true, true]);
        assert_eq!(simulate::simulate(&n, &[false, true, true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn parses_names_covers() {
        let src = r#"
.model names_demo
.inputs a b
.outputs y n k one
.names a b y
11 1
.names a n
0 1
.names a k
1 1
.names one
1
.end
"#;
        let n = parse_blif(src).expect("parses");
        n.validate().expect("valid");
        // y = a&b, n = !a, k = a, one = 1
        assert_eq!(simulate::simulate(&n, &[true, false]).unwrap(), vec![false, false, true, true]);
    }

    #[test]
    fn rejects_unknown_gate() {
        let src = ".model m\n.inputs a\n.outputs y\n.gate LUT4 a=a O=y\n.end\n";
        assert!(parse_blif(src).unwrap_err().message.contains("unknown gate type"));
    }

    #[test]
    fn rejects_latches() {
        let src = ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        assert!(parse_blif(src).unwrap_err().message.contains("not supported"));
    }

    #[test]
    fn rejects_undriven_output() {
        let src = ".model m\n.inputs a\n.outputs y\n.end\n";
        assert!(parse_blif(src).unwrap_err().message.contains("never driven"));
    }

    #[test]
    fn duplicate_declarations_carry_both_line_numbers() {
        let src = ".model m\n.inputs a\n.inputs a\n.outputs y\n.gate BUF a=a O=y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("declared twice"), "{}", err.message);
        assert!(err.message.contains("line 2"), "{}", err.message);
        let src = ".model m\n.inputs a\n.outputs y y\n.gate BUF a=a O=y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert!(err.message.contains("output `y` declared twice"), "{}", err.message);
    }

    #[test]
    fn undriven_outputs_report_their_declaration_line() {
        let src = ".model m\n.inputs a\n.outputs y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("never driven"), "{}", err.message);
    }

    #[test]
    fn continuation_lines_are_joined() {
        let src = ".model m\n.inputs a \\\nb\n.outputs y\n.gate AND2 a=a b=b O=y\n.end\n";
        let n = parse_blif(src).expect("parses");
        assert_eq!(n.primary_inputs().len(), 2);
    }

    #[test]
    fn majority_gate_records() {
        let src = ".model m\n.inputs a b c\n.outputs y\n.gate MAJ3 a=a b=b c=c O=y\n.end\n";
        let n = parse_blif(src).expect("parses");
        assert_eq!(simulate::simulate(&n, &[true, false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn errors_carry_columns() {
        // The duplicate `a` token sits at line 3, column 9.
        let src = ".model m\n.inputs a\n.inputs a\n.outputs y\n.gate BUF a=a O=y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert_eq!((err.line, err.column), (3, 9), "{err}");

        // The undriven signal's binding token is pinpointed: `u` in `a=u`.
        let src = ".model m\n.inputs a\n.outputs y\n.gate BUF a=u O=y\n.end\n";
        let err = parse_blif(src).unwrap_err();
        assert!(err.message.contains("signal `u` is never driven"), "{}", err.message);
        assert_eq!((err.line, err.column), (4, 13), "{err}");
    }

    #[test]
    fn parsed_gates_carry_declaration_spans() {
        let src = ".model m\n.inputs a\n.outputs y\n.gate BUF a=a O=y\n.end\n";
        let n = parse_blif(src).expect("parses");
        let a = n.find_by_name("a").unwrap();
        assert_eq!(n.span(a), SourceSpan::new(2, 9));
        let gate = n.find_by_name("u_y").unwrap();
        assert_eq!(n.span(gate), SourceSpan::new(4, 1));
        let po = n.find_by_name("po_y").unwrap();
        assert_eq!(n.span(po), SourceSpan::new(3, 10));
    }

    #[test]
    fn recovering_parse_patches_undriven_signals() {
        let src = ".model m\n.inputs a\n.outputs y z\n.gate AND2 a=a b=u O=y\n.end\n";
        let design = parse_blif_recovering(src).expect("recovers");
        assert_eq!(design.recovered.len(), 2);
        assert_eq!(design.recovered[0].signal, "u");
        assert_eq!(design.recovered[0].kind, RecoveredKind::UndrivenSignal);
        assert_eq!(design.recovered[0].span, SourceSpan::new(4, 18));
        assert_eq!(design.recovered[1].signal, "z");
        assert_eq!(design.recovered[1].kind, RecoveredKind::UndrivenOutput);
        assert_eq!(design.recovered[1].span, SourceSpan::new(3, 12));
        design.netlist.validate().expect("patched netlist is valid");
        assert!(design.netlist.find_by_name("undriven$u").is_some());
    }
}
