//! Netlist file-format parsers.
//!
//! SuperFlow's paper uses Yosys to turn RTL Verilog into a gate-level AOI
//! netlist. Yosys is an external C++ tool, so this reproduction substitutes
//! two light-weight front-ends that produce the same in-memory [`crate::Netlist`]:
//!
//! * [`verilog`] — a structural-Verilog subset (gate-primitive instantiations
//!   of `and`/`or`/`not`/...), sufficient for hand-written RTL netlists;
//! * [`blif`] — gate-level BLIF using `.gate` records, the format the EPFL
//!   SCE-benchmarks distribute their AQFP benchmarks in.
//!
//! Both front-ends track exact line *and* column positions (surfaced through
//! [`ParseNetlistError`] and per-gate [`SourceSpan`]s on the parsed netlist)
//! and offer a *recovering* mode ([`verilog::parse_verilog_recovering`],
//! [`blif::parse_blif_recovering`]): instead of failing on the first undriven
//! signal, the parser binds each one to an injected constant-0 placeholder
//! gate and records a [`RecoveredDefect`] per signal, so a static-analysis
//! pass can report every defect with its source location in one shot. The
//! strict entry points are the recovering ones plus "fail on the first
//! recorded defect", so their behaviour is unchanged.

pub mod blif;
pub mod verilog;

pub use blif::{parse_blif, parse_blif_recovering};
pub use verilog::{parse_verilog, parse_verilog_recovering};

use std::error::Error;
use std::fmt;

use crate::gate::GateId;
use crate::netlist::Netlist;
use crate::span::SourceSpan;

/// Name prefix of the constant-0 placeholder gates the recovering parsers
/// inject for undriven signals. No legal Verilog/BLIF identifier contains
/// `$`, so placeholders can never collide with (or be spoofed by) real
/// instance names.
pub const PLACEHOLDER_PREFIX: &str = "undriven$";

/// Error produced while parsing a netlist file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line number where the problem was found (0 if global).
    pub line: usize,
    /// 1-based column number (0 if only the line is known).
    pub column: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseNetlistError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self { line, column: 0, message: message.into() }
    }

    pub(crate) fn at(span: SourceSpan, message: impl Into<String>) -> Self {
        Self { line: span.line, column: span.column, message: message.into() }
    }

    /// The source location of the error.
    pub fn span(&self) -> SourceSpan {
        SourceSpan::new(self.line, self.column)
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else if self.column == 0 {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        } else {
            write!(f, "parse error at line {}, column {}: {}", self.line, self.column, self.message)
        }
    }
}

impl Error for ParseNetlistError {}

/// What kind of defect the recovering parser patched around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveredKind {
    /// A signal referenced as a gate input has no driver; a constant-0
    /// placeholder was bound in its place.
    UndrivenSignal,
    /// A declared primary output has no driver.
    UndrivenOutput,
}

/// One defect the recovering parser patched instead of failing on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredDefect {
    /// The undriven signal's name as written in the source.
    pub signal: String,
    /// Whether the signal was an internal net or a declared output.
    pub kind: RecoveredKind,
    /// Where the defect was observed: the first referencing use for internal
    /// signals, the declaration for outputs.
    pub span: SourceSpan,
    /// The injected placeholder gate standing in for the missing driver.
    pub placeholder: GateId,
}

/// The result of a recovering parse: a structurally complete netlist plus
/// the list of defects that were patched to get there. An empty `recovered`
/// list means the source was clean.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedDesign {
    /// The parsed netlist, with placeholder gates bound where drivers were
    /// missing.
    pub netlist: Netlist,
    /// The patched defects, in the order the strict parser would have
    /// reported them.
    pub recovered: Vec<RecoveredDefect>,
}

/// Injects (or reuses) the constant-0 placeholder standing in for an
/// undriven `signal`, recording the defect on first sight. Shared by both
/// recovering front-ends.
pub(crate) fn placeholder(
    netlist: &mut Netlist,
    placeholders: &mut std::collections::HashMap<String, GateId>,
    recovered: &mut Vec<RecoveredDefect>,
    signal: &str,
    kind: RecoveredKind,
    span: SourceSpan,
) -> GateId {
    if let Some(&id) = placeholders.get(signal) {
        return id;
    }
    let id = netlist.add_gate(
        aqfp_cells::CellKind::Constant0,
        format!("{PLACEHOLDER_PREFIX}{signal}"),
        vec![],
    );
    netlist.set_span(id, span);
    placeholders.insert(signal.to_owned(), id);
    recovered.push(RecoveredDefect { signal: signal.to_owned(), kind, span, placeholder: id });
    id
}

/// Converts a recovering parse into the strict contract: the first patched
/// defect becomes the error the strict parsers have always produced.
pub(crate) fn strictify(design: ParsedDesign) -> Result<Netlist, ParseNetlistError> {
    match design.recovered.first() {
        None => Ok(design.netlist),
        Some(defect) => {
            let what = match defect.kind {
                RecoveredKind::UndrivenSignal => "signal",
                RecoveredKind::UndrivenOutput => "output",
            };
            Err(ParseNetlistError::at(
                defect.span,
                format!("{what} `{}` is never driven", defect.signal),
            ))
        }
    }
}
