//! Netlist file-format parsers.
//!
//! SuperFlow's paper uses Yosys to turn RTL Verilog into a gate-level AOI
//! netlist. Yosys is an external C++ tool, so this reproduction substitutes
//! two light-weight front-ends that produce the same in-memory [`crate::Netlist`]:
//!
//! * [`verilog`] — a structural-Verilog subset (gate-primitive instantiations
//!   of `and`/`or`/`not`/...), sufficient for hand-written RTL netlists;
//! * [`blif`] — gate-level BLIF using `.gate` records, the format the EPFL
//!   SCE-benchmarks distribute their AQFP benchmarks in.

pub mod blif;
pub mod verilog;

pub use blif::parse_blif;
pub use verilog::parse_verilog;

use std::error::Error;
use std::fmt;

/// Error produced while parsing a netlist file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line number where the problem was found (0 if global).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseNetlistError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self { line, message: message.into() }
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseNetlistError {}
