//! Structural-Verilog front-end.
//!
//! The supported subset covers gate-level structural Verilog as produced by
//! logic-synthesis tools when mapped to a simple gate library:
//!
//! ```verilog
//! module half_adder(a, b, sum, carry);
//!   input a, b;
//!   output sum, carry;
//!   wire n1;
//!   xor g1(sum, a, b);
//!   and g2(carry, a, b);
//! endmodule
//! ```
//!
//! Supported primitives: `and`, `or`, `nand`, `nor`, `xor`, `not`, `buf`,
//! `maj` (3-input majority). The first port of a primitive is its output.
//! Vectors, assigns, parameters and behavioural constructs are not supported.

use aqfp_cells::CellKind;
use std::collections::HashMap;

use super::ParseNetlistError;
use crate::gate::GateId;
use crate::netlist::Netlist;

/// Parses a structural-Verilog module into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] when the text is not in the supported
/// subset: missing module header, unknown primitive, undeclared signal,
/// wrong pin count, or a signal driven by more than one gate.
pub fn parse_verilog(source: &str) -> Result<Netlist, ParseNetlistError> {
    let statements = split_statements(source);
    let mut module_name = String::new();
    let mut declared_at: HashMap<String, (&'static str, usize)> = HashMap::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut wires: Vec<String> = Vec::new();
    let mut instances: Vec<(usize, String, String, Vec<String>)> = Vec::new();

    for (line, stmt) in &statements {
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("module") {
            let name = rest.split(['(', ';']).next().unwrap_or("").trim();
            if name.is_empty() {
                return Err(ParseNetlistError::new(*line, "module name missing"));
            }
            module_name = name.to_owned();
            continue;
        }
        let category = ["input", "output", "wire"]
            .into_iter()
            .find_map(|keyword| strip_keyword(stmt, keyword).map(|rest| (keyword, rest)));
        if let Some((category, rest)) = category {
            declare(
                &mut declared_at,
                category,
                *line,
                parse_signal_list(rest),
                &mut inputs,
                &mut outputs,
                &mut wires,
            )?;
            continue;
        }
        // Gate primitive instantiation: `<prim> <name>(<out>, <in>...)`.
        let (prim, rest) = stmt.split_once(char::is_whitespace).ok_or_else(|| {
            ParseNetlistError::new(*line, format!("unrecognised statement `{stmt}`"))
        })?;
        let open = rest
            .find('(')
            .ok_or_else(|| ParseNetlistError::new(*line, "expected `(` in gate instantiation"))?;
        let close = rest
            .rfind(')')
            .ok_or_else(|| ParseNetlistError::new(*line, "expected `)` in gate instantiation"))?;
        if close <= open {
            // `buf g1 )a(` — slicing open+1..close below would panic.
            return Err(ParseNetlistError::new(*line, "`)` precedes `(` in gate instantiation"));
        }
        let inst_name = rest[..open].trim().to_owned();
        let ports: Vec<String> =
            rest[open + 1..close].split(',').map(|p| p.trim().to_owned()).collect();
        if ports.iter().any(|p| p.is_empty()) {
            return Err(ParseNetlistError::new(*line, "empty port in gate instantiation"));
        }
        instances.push((*line, prim.trim().to_owned(), inst_name, ports));
    }

    if module_name.is_empty() {
        return Err(ParseNetlistError::new(0, "no module declaration found"));
    }

    build_netlist(&module_name, &inputs, &outputs, &wires, &instances, &declared_at)
}

/// Registers a declaration list, detecting duplicates. Re-declaring a port
/// as a wire (or a wire as a port) is legal Verilog and collapses to the
/// port declaration; any other duplicate is an error carrying both lines.
fn declare(
    declared_at: &mut HashMap<String, (&'static str, usize)>,
    category: &'static str,
    line: usize,
    names: Vec<String>,
    inputs: &mut Vec<String>,
    outputs: &mut Vec<String>,
    wires: &mut Vec<String>,
) -> Result<(), ParseNetlistError> {
    for name in names {
        if let Some(&(previous, previous_line)) = declared_at.get(name.as_str()) {
            if (previous == "wire") == (category == "wire") {
                return Err(ParseNetlistError::new(
                    line,
                    format!(
                        "signal `{name}` declared twice (first as {previous} on line \
                         {previous_line})"
                    ),
                ));
            }
            if previous == "wire" {
                // The port declaration wins: `wire y; output y;` makes `y`
                // an output.
                wires.retain(|wire| wire != &name);
                declared_at.insert(name.clone(), (category, line));
                if category == "input" {
                    inputs.push(name);
                } else {
                    outputs.push(name);
                }
            }
            // `input a; wire a;` — the wire re-declaration adds nothing.
            continue;
        }
        declared_at.insert(name.clone(), (category, line));
        match category {
            "input" => inputs.push(name),
            "output" => outputs.push(name),
            _ => wires.push(name),
        }
    }
    Ok(())
}

fn strip_keyword<'a>(stmt: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = stmt.strip_prefix(keyword)?;
    if rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

/// Splits the source into `;`-terminated statements with line numbers,
/// stripping `//` comments.
fn split_statements(source: &str) -> Vec<(usize, String)> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut start_line = 1;
    for (i, raw_line) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split("//").next().unwrap_or("");
        for ch in line.chars() {
            if current.trim().is_empty() {
                start_line = line_no;
            }
            if ch == ';' {
                statements.push((start_line, current.trim().to_owned()));
                current.clear();
            } else {
                current.push(ch);
            }
        }
        current.push(' ');
    }
    let tail = current.trim();
    if !tail.is_empty() {
        statements.push((start_line, tail.to_owned()));
    }
    statements
}

fn parse_signal_list(rest: &str) -> Vec<String> {
    rest.split(',').map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()).collect()
}

fn primitive_kind(prim: &str) -> Option<CellKind> {
    match prim {
        "and" => Some(CellKind::And),
        "or" => Some(CellKind::Or),
        "nand" => Some(CellKind::Nand),
        "nor" => Some(CellKind::Nor),
        "xor" => Some(CellKind::Xor),
        "not" => Some(CellKind::Inverter),
        "buf" => Some(CellKind::Buffer),
        "maj" => Some(CellKind::Majority3),
        _ => None,
    }
}

fn build_netlist(
    module_name: &str,
    inputs: &[String],
    outputs: &[String],
    wires: &[String],
    instances: &[(usize, String, String, Vec<String>)],
    declared_at: &HashMap<String, (&'static str, usize)>,
) -> Result<Netlist, ParseNetlistError> {
    let mut netlist = Netlist::new(module_name);
    // Map from signal name to the gate that drives it.
    let mut driver: HashMap<String, GateId> = HashMap::new();
    for name in inputs {
        let id = netlist.add_input(name.clone());
        driver.insert(name.clone(), id);
    }

    let declared: std::collections::HashSet<&str> =
        inputs.iter().chain(outputs.iter()).chain(wires.iter()).map(String::as_str).collect();

    // First pass: create the gates so forward references resolve; we place
    // gates in instance order and patch fan-ins in a second pass.
    let mut pending: Vec<(usize, GateId, Vec<String>)> = Vec::new();
    for (line, prim, inst_name, ports) in instances {
        let kind = primitive_kind(prim).ok_or_else(|| {
            ParseNetlistError::new(*line, format!("unknown gate primitive `{prim}`"))
        })?;
        if ports.len() != kind.input_count() + 1 {
            return Err(ParseNetlistError::new(
                *line,
                format!(
                    "primitive `{prim}` expects {} ports, found {}",
                    kind.input_count() + 1,
                    ports.len()
                ),
            ));
        }
        let out_signal = &ports[0];
        if !declared.contains(out_signal.as_str()) {
            return Err(ParseNetlistError::new(*line, format!("undeclared signal `{out_signal}`")));
        }
        let gate_name =
            if inst_name.is_empty() { format!("u_{out_signal}") } else { inst_name.clone() };
        let id = netlist.add_gate(kind, gate_name, vec![]);
        if driver.insert(out_signal.clone(), id).is_some() {
            return Err(ParseNetlistError::new(
                *line,
                format!("signal `{out_signal}` has multiple drivers"),
            ));
        }
        pending.push((*line, id, ports[1..].to_vec()));
    }

    // Second pass: resolve fan-ins now that all drivers are known.
    for (line, id, input_signals) in pending {
        let mut fanin = Vec::with_capacity(input_signals.len());
        for signal in &input_signals {
            if !declared.contains(signal.as_str()) {
                return Err(ParseNetlistError::new(line, format!("undeclared signal `{signal}`")));
            }
            let src = driver.get(signal).ok_or_else(|| {
                ParseNetlistError::new(line, format!("signal `{signal}` is never driven"))
            })?;
            fanin.push(*src);
        }
        netlist.gate_mut(id).fanin = fanin;
    }

    for name in outputs {
        let src = driver.get(name).ok_or_else(|| {
            let line = declared_at.get(name).map_or(0, |&(_, line)| line);
            ParseNetlistError::new(line, format!("output `{name}` is never driven"))
        })?;
        netlist.add_output(format!("po_{name}"), *src);
    }

    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    const HALF_ADDER: &str = r#"
        // A half adder in the supported structural subset.
        module half_adder(a, b, sum, carry);
          input a, b;
          output sum, carry;
          xor g1(sum, a, b);
          and g2(carry, a, b);
        endmodule
    "#;

    #[test]
    fn parses_half_adder() {
        let n = parse_verilog(HALF_ADDER).expect("parses");
        assert_eq!(n.name(), "half_adder");
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 2);
        n.validate().expect("valid");
        // sum = a ^ b, carry = a & b
        assert_eq!(simulate::simulate(&n, &[true, false]).unwrap(), vec![true, false]);
        assert_eq!(simulate::simulate(&n, &[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn parses_wires_and_not() {
        let src = r#"
            module inv_chain(a, y);
              input a;
              output y;
              wire w1;
              not g1(w1, a);
              not g2(y, w1);
            endmodule
        "#;
        let n = parse_verilog(src).expect("parses");
        assert_eq!(simulate::simulate(&n, &[true]).unwrap(), vec![true]);
        assert_eq!(simulate::simulate(&n, &[false]).unwrap(), vec![false]);
    }

    #[test]
    fn rejects_unknown_primitive() {
        let src = "module m(a, y); input a; output y; dff g1(y, a); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("unknown gate primitive"));
    }

    #[test]
    fn rejects_undeclared_signal() {
        let src = "module m(a, y); input a; output y; and g1(y, a, ghost); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("undeclared signal"));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let src = "module m(a, y); input a; output y; buf g1(y, a); buf g2(y, a); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("multiple drivers"));
    }

    #[test]
    fn rejects_wrong_port_count() {
        let src = "module m(a, y); input a; output y; and g1(y, a); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("expects 3 ports"));
    }

    #[test]
    fn rejects_missing_module() {
        let err = parse_verilog("input a;").unwrap_err();
        assert!(err.message.contains("unrecognised statement") || err.message.contains("module"));
    }

    #[test]
    fn reversed_parentheses_are_an_error_not_a_panic() {
        let src = "module m(a, y); input a; output y; buf g1 )y, a(; endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("precedes"), "{}", err.message);
    }

    #[test]
    fn duplicate_declarations_carry_both_line_numbers() {
        let src = "module m(a, y);\ninput a;\ninput a;\noutput y;\nbuf g1(y, a);\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("declared twice"), "{}", err.message);
        assert!(err.message.contains("line 2"), "{}", err.message);
        // A name can't be both an input and an output either.
        let src = "module m(a); input a; output a; endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("declared twice"), "{}", err.message);
    }

    #[test]
    fn port_wire_redeclaration_is_legal_verilog() {
        // `output y; wire y;` (either order) collapses to the port.
        for src in [
            "module m(a, y); input a; output y; wire y; buf g1(y, a); endmodule",
            "module m(a, y); input a; wire y; output y; buf g1(y, a); endmodule",
        ] {
            let n = parse_verilog(src).expect("parses");
            assert_eq!(n.primary_outputs().len(), 1, "{src}");
            assert_eq!(simulate::simulate(&n, &[true]).unwrap(), vec![true], "{src}");
        }
    }

    #[test]
    fn undriven_outputs_report_their_declaration_line() {
        let src = "module m(a, y);\ninput a;\noutput y;\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("never driven"), "{}", err.message);
    }

    #[test]
    fn majority_primitive_is_supported() {
        let src = r#"
            module m(a, b, c, y);
              input a, b, c;
              output y;
              maj g1(y, a, b, c);
            endmodule
        "#;
        let n = parse_verilog(src).expect("parses");
        assert_eq!(simulate::simulate(&n, &[true, true, false]).unwrap(), vec![true]);
        assert_eq!(simulate::simulate(&n, &[true, false, false]).unwrap(), vec![false]);
    }
}
