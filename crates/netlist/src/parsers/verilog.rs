//! Structural-Verilog front-end.
//!
//! The supported subset covers gate-level structural Verilog as produced by
//! logic-synthesis tools when mapped to a simple gate library:
//!
//! ```verilog
//! module half_adder(a, b, sum, carry);
//!   input a, b;
//!   output sum, carry;
//!   wire n1;
//!   xor g1(sum, a, b);
//!   and g2(carry, a, b);
//! endmodule
//! ```
//!
//! Supported primitives: `and`, `or`, `nand`, `nor`, `xor`, `not`, `buf`,
//! `maj` (3-input majority). The first port of a primitive is its output.
//! Vectors, assigns, parameters and behavioural constructs are not supported.

use aqfp_cells::CellKind;
use std::collections::HashMap;

use super::{placeholder, ParseNetlistError, ParsedDesign, RecoveredDefect, RecoveredKind};
use crate::gate::GateId;
use crate::netlist::Netlist;
use crate::span::SourceSpan;

/// Parses a structural-Verilog module into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] when the text is not in the supported
/// subset: missing module header, unknown primitive, undeclared signal,
/// wrong pin count, a signal driven by more than one gate, or an undriven
/// signal/output.
pub fn parse_verilog(source: &str) -> Result<Netlist, ParseNetlistError> {
    super::strictify(parse_verilog_recovering(source)?)
}

/// Parses a structural-Verilog module, patching undriven signals with
/// constant-0 placeholder gates instead of failing, and recording each patch
/// as a [`RecoveredDefect`] with its exact source span.
///
/// Structural problems other than missing drivers (unknown primitives,
/// undeclared signals, multiple drivers, malformed statements) are still
/// hard errors.
///
/// # Errors
///
/// Returns a [`ParseNetlistError`] for the unrecoverable problems above.
pub fn parse_verilog_recovering(source: &str) -> Result<ParsedDesign, ParseNetlistError> {
    let statements = split_statements(source);
    let mut module_name = String::new();
    let mut declared_at: HashMap<String, (&'static str, SourceSpan)> = HashMap::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut wires: Vec<String> = Vec::new();
    let mut instances: Vec<Instance> = Vec::new();

    for stmt in &statements {
        let text = stmt.text.as_str();
        if text.is_empty() || text == "endmodule" {
            continue;
        }
        if let Some(rest) = text.strip_prefix("module") {
            let name = rest.split(['(', ';']).next().unwrap_or("").trim();
            if name.is_empty() {
                return Err(ParseNetlistError::at(stmt.start(), "module name missing"));
            }
            module_name = name.to_owned();
            continue;
        }
        let category = ["input", "output", "wire"]
            .into_iter()
            .find_map(|keyword| strip_keyword(text, keyword).map(|_| keyword));
        if let Some(category) = category {
            declare(
                &mut declared_at,
                category,
                split_signals(stmt, category.len()),
                &mut inputs,
                &mut outputs,
                &mut wires,
            )?;
            continue;
        }
        // Gate primitive instantiation: `<prim> <name>(<out>, <in>...)`.
        let (prim, after) = text.split_once(char::is_whitespace).ok_or_else(|| {
            ParseNetlistError::at(stmt.start(), format!("unrecognised statement `{text}`"))
        })?;
        let after_offset = text.len() - after.len();
        let open = after.find('(').ok_or_else(|| {
            ParseNetlistError::at(stmt.start(), "expected `(` in gate instantiation")
        })?;
        let close = after.rfind(')').ok_or_else(|| {
            ParseNetlistError::at(stmt.start(), "expected `)` in gate instantiation")
        })?;
        if close <= open {
            // `buf g1 )a(` — slicing open+1..close below would panic.
            return Err(ParseNetlistError::at(
                stmt.start(),
                "`)` precedes `(` in gate instantiation",
            ));
        }
        let ports = split_signals_in(stmt, &after[open + 1..close], after_offset + open + 1);
        if let Some((_, span)) = ports.iter().find(|(p, _)| p.is_empty()) {
            return Err(ParseNetlistError::at(*span, "empty port in gate instantiation"));
        }
        instances.push(Instance {
            span: stmt.start(),
            prim: prim.trim().to_owned(),
            name: after[..open].trim().to_owned(),
            ports,
        });
    }

    if module_name.is_empty() {
        return Err(ParseNetlistError::new(0, "no module declaration found"));
    }

    build_netlist(&module_name, &inputs, &outputs, &wires, &instances, &declared_at)
}

/// One gate-primitive instantiation, with the statement's source span and a
/// span per port token.
struct Instance {
    span: SourceSpan,
    prim: String,
    name: String,
    ports: Vec<(String, SourceSpan)>,
}

/// Registers a declaration list, detecting duplicates. Re-declaring a port
/// as a wire (or a wire as a port) is legal Verilog and collapses to the
/// port declaration; any other duplicate is an error carrying both lines.
fn declare(
    declared_at: &mut HashMap<String, (&'static str, SourceSpan)>,
    category: &'static str,
    names: Vec<(String, SourceSpan)>,
    inputs: &mut Vec<String>,
    outputs: &mut Vec<String>,
    wires: &mut Vec<String>,
) -> Result<(), ParseNetlistError> {
    for (name, span) in names {
        if let Some(&(previous, previous_span)) = declared_at.get(name.as_str()) {
            if (previous == "wire") == (category == "wire") {
                return Err(ParseNetlistError::at(
                    span,
                    format!(
                        "signal `{name}` declared twice (first as {previous} on line {})",
                        previous_span.line
                    ),
                ));
            }
            if previous == "wire" {
                // The port declaration wins: `wire y; output y;` makes `y`
                // an output.
                wires.retain(|wire| wire != &name);
                declared_at.insert(name.clone(), (category, span));
                if category == "input" {
                    inputs.push(name);
                } else {
                    outputs.push(name);
                }
            }
            // `input a; wire a;` — the wire re-declaration adds nothing.
            continue;
        }
        declared_at.insert(name.clone(), (category, span));
        match category {
            "input" => inputs.push(name),
            "output" => outputs.push(name),
            _ => wires.push(name),
        }
    }
    Ok(())
}

fn strip_keyword<'a>(stmt: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = stmt.strip_prefix(keyword)?;
    if rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}

/// A `;`-terminated statement with a `(line, column)` position recorded for
/// every byte of its (whitespace-trimmed, comment-stripped) text.
struct Statement {
    text: String,
    pos: Vec<(usize, usize)>,
}

impl Statement {
    /// The span of the statement's first character.
    fn start(&self) -> SourceSpan {
        self.span_at(0)
    }

    /// The span of the byte at `offset` into [`Statement::text`], clamped to
    /// the last recorded position.
    fn span_at(&self, offset: usize) -> SourceSpan {
        self.pos
            .get(offset)
            .or_else(|| self.pos.last())
            .map_or(SourceSpan::UNKNOWN, |&(line, column)| SourceSpan::new(line, column))
    }
}

/// Splits the source into `;`-terminated statements, stripping `//` comments
/// and recording the original (line, column) of every retained character.
fn split_statements(source: &str) -> Vec<Statement> {
    fn flush(text: &mut String, pos: &mut Vec<(usize, usize)>, out: &mut Vec<Statement>) {
        let start = text.len() - text.trim_start().len();
        let end = text.trim_end().len();
        if end > start {
            out.push(Statement {
                text: text[start..end].to_owned(),
                pos: pos[start..end].to_vec(),
            });
        }
        text.clear();
        pos.clear();
    }

    let mut statements = Vec::new();
    let mut text = String::new();
    let mut pos: Vec<(usize, usize)> = Vec::new();
    for (i, raw_line) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split("//").next().unwrap_or("");
        let mut column = 0;
        for ch in line.chars() {
            column += 1;
            if ch == ';' {
                flush(&mut text, &mut pos, &mut statements);
            } else {
                text.push(ch);
                // One position entry per byte keeps `pos` indexable by the
                // byte offsets string searches produce.
                for _ in 0..ch.len_utf8() {
                    pos.push((line_no, column));
                }
            }
        }
        text.push(' ');
        pos.push((line_no, column + 1));
    }
    flush(&mut text, &mut pos, &mut statements);
    statements
}

/// Splits the comma-separated list starting `offset` bytes into the
/// statement's text, returning each trimmed piece with the span of its first
/// character. Empty pieces are dropped.
fn split_signals(stmt: &Statement, offset: usize) -> Vec<(String, SourceSpan)> {
    let list = &stmt.text[offset..];
    split_signals_in(stmt, list, offset).into_iter().filter(|(name, _)| !name.is_empty()).collect()
}

/// Like [`split_signals`] but keeps empty pieces (so instantiation port
/// lists can report them), over an explicit `slice` of the statement found
/// at byte offset `base`.
fn split_signals_in(stmt: &Statement, slice: &str, base: usize) -> Vec<(String, SourceSpan)> {
    let mut out = Vec::new();
    let mut cursor = 0;
    for piece in slice.split(',') {
        let lead = piece.len() - piece.trim_start().len();
        out.push((piece.trim().to_owned(), stmt.span_at(base + cursor + lead)));
        cursor += piece.len() + 1;
    }
    out
}

fn primitive_kind(prim: &str) -> Option<CellKind> {
    match prim {
        "and" => Some(CellKind::And),
        "or" => Some(CellKind::Or),
        "nand" => Some(CellKind::Nand),
        "nor" => Some(CellKind::Nor),
        "xor" => Some(CellKind::Xor),
        "not" => Some(CellKind::Inverter),
        "buf" => Some(CellKind::Buffer),
        "maj" => Some(CellKind::Majority3),
        _ => None,
    }
}

fn build_netlist(
    module_name: &str,
    inputs: &[String],
    outputs: &[String],
    wires: &[String],
    instances: &[Instance],
    declared_at: &HashMap<String, (&'static str, SourceSpan)>,
) -> Result<ParsedDesign, ParseNetlistError> {
    let mut netlist = Netlist::new(module_name);
    let mut recovered: Vec<RecoveredDefect> = Vec::new();
    // Map from signal name to the gate that drives it.
    let mut driver: HashMap<String, GateId> = HashMap::new();
    // Placeholders injected for undriven signals, one per signal.
    let mut placeholders: HashMap<String, GateId> = HashMap::new();
    for name in inputs {
        let id = netlist.add_input(name.clone());
        if let Some(&(_, span)) = declared_at.get(name.as_str()) {
            netlist.set_span(id, span);
        }
        driver.insert(name.clone(), id);
    }

    let declared: std::collections::HashSet<&str> =
        inputs.iter().chain(outputs.iter()).chain(wires.iter()).map(String::as_str).collect();

    // First pass: create the gates so forward references resolve; we place
    // gates in instance order and patch fan-ins in a second pass.
    let mut pending: Vec<(GateId, &Instance)> = Vec::new();
    for instance in instances {
        let kind = primitive_kind(&instance.prim).ok_or_else(|| {
            ParseNetlistError::at(
                instance.span,
                format!("unknown gate primitive `{}`", instance.prim),
            )
        })?;
        if instance.ports.len() != kind.input_count() + 1 {
            return Err(ParseNetlistError::at(
                instance.span,
                format!(
                    "primitive `{}` expects {} ports, found {}",
                    instance.prim,
                    kind.input_count() + 1,
                    instance.ports.len()
                ),
            ));
        }
        let (out_signal, out_span) = &instance.ports[0];
        if !declared.contains(out_signal.as_str()) {
            return Err(ParseNetlistError::at(
                *out_span,
                format!("undeclared signal `{out_signal}`"),
            ));
        }
        let gate_name = if instance.name.is_empty() {
            format!("u_{out_signal}")
        } else {
            instance.name.clone()
        };
        let id = netlist.add_gate(kind, gate_name, vec![]);
        netlist.set_span(id, instance.span);
        if driver.insert(out_signal.clone(), id).is_some() {
            return Err(ParseNetlistError::at(
                *out_span,
                format!("signal `{out_signal}` has multiple drivers"),
            ));
        }
        pending.push((id, instance));
    }

    // Second pass: resolve fan-ins now that all drivers are known; missing
    // drivers are patched with recorded placeholders.
    for (id, instance) in pending {
        let mut fanin = Vec::with_capacity(instance.ports.len() - 1);
        for (signal, span) in &instance.ports[1..] {
            if !declared.contains(signal.as_str()) {
                return Err(ParseNetlistError::at(*span, format!("undeclared signal `{signal}`")));
            }
            let src = match driver.get(signal) {
                Some(src) => *src,
                None => placeholder(
                    &mut netlist,
                    &mut placeholders,
                    &mut recovered,
                    signal,
                    RecoveredKind::UndrivenSignal,
                    *span,
                ),
            };
            fanin.push(src);
        }
        netlist.gate_mut(id).fanin = fanin;
    }

    for name in outputs {
        let declaration = declared_at.get(name).map_or(SourceSpan::UNKNOWN, |&(_, span)| span);
        let src = match driver.get(name).or_else(|| placeholders.get(name)) {
            Some(src) => *src,
            None => placeholder(
                &mut netlist,
                &mut placeholders,
                &mut recovered,
                name,
                RecoveredKind::UndrivenOutput,
                declaration,
            ),
        };
        let id = netlist.add_output(format!("po_{name}"), src);
        netlist.set_span(id, declaration);
    }

    Ok(ParsedDesign { netlist, recovered })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::simulate;

    const HALF_ADDER: &str = r#"
        // A half adder in the supported structural subset.
        module half_adder(a, b, sum, carry);
          input a, b;
          output sum, carry;
          xor g1(sum, a, b);
          and g2(carry, a, b);
        endmodule
    "#;

    #[test]
    fn parses_half_adder() {
        let n = parse_verilog(HALF_ADDER).expect("parses");
        assert_eq!(n.name(), "half_adder");
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 2);
        n.validate().expect("valid");
        // sum = a ^ b, carry = a & b
        assert_eq!(simulate::simulate(&n, &[true, false]).unwrap(), vec![true, false]);
        assert_eq!(simulate::simulate(&n, &[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn parses_wires_and_not() {
        let src = r#"
            module inv_chain(a, y);
              input a;
              output y;
              wire w1;
              not g1(w1, a);
              not g2(y, w1);
            endmodule
        "#;
        let n = parse_verilog(src).expect("parses");
        assert_eq!(simulate::simulate(&n, &[true]).unwrap(), vec![true]);
        assert_eq!(simulate::simulate(&n, &[false]).unwrap(), vec![false]);
    }

    #[test]
    fn rejects_unknown_primitive() {
        let src = "module m(a, y); input a; output y; dff g1(y, a); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("unknown gate primitive"));
    }

    #[test]
    fn rejects_undeclared_signal() {
        let src = "module m(a, y); input a; output y; and g1(y, a, ghost); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("undeclared signal"));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let src = "module m(a, y); input a; output y; buf g1(y, a); buf g2(y, a); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("multiple drivers"));
    }

    #[test]
    fn rejects_wrong_port_count() {
        let src = "module m(a, y); input a; output y; and g1(y, a); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("expects 3 ports"));
    }

    #[test]
    fn rejects_missing_module() {
        let err = parse_verilog("input a;").unwrap_err();
        assert!(err.message.contains("unrecognised statement") || err.message.contains("module"));
    }

    #[test]
    fn reversed_parentheses_are_an_error_not_a_panic() {
        let src = "module m(a, y); input a; output y; buf g1 )y, a(; endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("precedes"), "{}", err.message);
    }

    #[test]
    fn duplicate_declarations_carry_both_line_numbers() {
        let src = "module m(a, y);\ninput a;\ninput a;\noutput y;\nbuf g1(y, a);\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("declared twice"), "{}", err.message);
        assert!(err.message.contains("line 2"), "{}", err.message);
        // A name can't be both an input and an output either.
        let src = "module m(a); input a; output a; endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("declared twice"), "{}", err.message);
    }

    #[test]
    fn port_wire_redeclaration_is_legal_verilog() {
        // `output y; wire y;` (either order) collapses to the port.
        for src in [
            "module m(a, y); input a; output y; wire y; buf g1(y, a); endmodule",
            "module m(a, y); input a; wire y; output y; buf g1(y, a); endmodule",
        ] {
            let n = parse_verilog(src).expect("parses");
            assert_eq!(n.primary_outputs().len(), 1, "{src}");
            assert_eq!(simulate::simulate(&n, &[true]).unwrap(), vec![true], "{src}");
        }
    }

    #[test]
    fn undriven_outputs_report_their_declaration_line() {
        let src = "module m(a, y);\ninput a;\noutput y;\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("never driven"), "{}", err.message);
    }

    #[test]
    fn majority_primitive_is_supported() {
        let src = r#"
            module m(a, b, c, y);
              input a, b, c;
              output y;
              maj g1(y, a, b, c);
            endmodule
        "#;
        let n = parse_verilog(src).expect("parses");
        assert_eq!(simulate::simulate(&n, &[true, true, false]).unwrap(), vec![true]);
        assert_eq!(simulate::simulate(&n, &[true, false, false]).unwrap(), vec![false]);
    }

    #[test]
    fn errors_carry_columns() {
        // `b` is declared at line 2, column 10; the duplicate is the error site.
        let src = "module m(a, y);\ninput a, a;\noutput y;\nbuf g1(y, a);\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!((err.line, err.column), (2, 10), "{err}");
        assert!(err.to_string().contains("line 2, column 10"), "{err}");

        // The undeclared signal's own token is pinpointed.
        let src = "module m(a, y);\ninput a;\noutput y;\nand g1(y, a, ghost);\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!((err.line, err.column), (4, 14), "{err}");
    }

    #[test]
    fn parsed_gates_carry_declaration_spans() {
        let src = "module m(a, y);\n  input a;\n  output y;\n  buf g1(y, a);\nendmodule";
        let n = parse_verilog(src).expect("parses");
        let a = n.find_by_name("a").unwrap();
        assert_eq!(n.span(a), SourceSpan::new(2, 9));
        let g1 = n.find_by_name("g1").unwrap();
        assert_eq!(n.span(g1), SourceSpan::new(4, 3));
        let po = n.find_by_name("po_y").unwrap();
        assert_eq!(n.span(po), SourceSpan::new(3, 10));
    }

    #[test]
    fn recovering_parse_patches_undriven_signals() {
        let src = "module m(a, y, z);\n  input a;\n  output y, z;\n  wire u;\n  \
                   and g1(y, a, u);\nendmodule";
        // Strict parse fails on the first defect (the use of `u`).
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("signal `u` is never driven"), "{}", err.message);
        assert_eq!((err.line, err.column), (5, 16));

        // The recovering parse patches `u` and the undriven output `z`.
        let design = parse_verilog_recovering(src).expect("recovers");
        assert_eq!(design.recovered.len(), 2);
        assert_eq!(design.recovered[0].signal, "u");
        assert_eq!(design.recovered[0].kind, RecoveredKind::UndrivenSignal);
        assert_eq!(design.recovered[0].span, SourceSpan::new(5, 16));
        assert_eq!(design.recovered[1].signal, "z");
        assert_eq!(design.recovered[1].kind, RecoveredKind::UndrivenOutput);
        assert_eq!(design.recovered[1].span, SourceSpan::new(3, 13));
        // The patched netlist is structurally complete and validates.
        design.netlist.validate().expect("patched netlist is valid");
        assert!(design.netlist.find_by_name("undriven$u").is_some());
    }

    #[test]
    fn recovering_parse_of_clean_source_records_nothing() {
        let design = parse_verilog_recovering(HALF_ADDER).expect("parses");
        assert!(design.recovered.is_empty());
        assert_eq!(design.netlist, parse_verilog(HALF_ADDER).expect("parses"));
    }
}
