//! Gate-level netlist data model for AQFP design automation.
//!
//! This crate provides the logical representation every SuperFlow stage works
//! on:
//!
//! * [`Netlist`] — a directed acyclic graph of gates ([`Gate`]) identified by
//!   [`GateId`]; primary inputs and outputs are explicit virtual gates;
//! * [`traverse`] — topological ordering, logic levels and cone extraction;
//! * [`simulate`] — boolean simulation used to verify that synthesis
//!   transformations preserve functionality;
//! * [`parsers`] — readers for a structural-Verilog subset and gate-level
//!   BLIF, standing in for the Yosys front-end of the paper; both record
//!   [`SourceSpan`]s and offer a recovering mode that patches undriven
//!   signals so static analysis can report them all at once;
//! * [`generators`] — programmatic constructions of the paper's benchmark
//!   circuits (Kogge-Stone adder, approximate parallel counters, decoder,
//!   sorting network, ISCAS'85-like circuits).
//!
//! # Examples
//!
//! ```
//! use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
//!
//! let adder = benchmark_circuit(Benchmark::Adder8);
//! assert_eq!(adder.primary_inputs().len(), 17); // two 8-bit operands + carry-in
//! assert!(adder.validate().is_ok());
//! ```

#![warn(clippy::unwrap_used)]

pub mod csr;
pub mod gate;
pub mod generators;
pub mod netlist;
pub mod parsers;
pub mod simulate;
pub mod span;
pub mod stats;
pub mod traverse;
pub mod writers;

pub use csr::FanoutCsr;
pub use gate::{Gate, GateId};
pub use netlist::{Netlist, NetlistError};
pub use span::SourceSpan;
pub use stats::NetlistStats;
