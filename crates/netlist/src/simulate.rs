//! Boolean simulation of netlists.
//!
//! Simulation is used throughout the test suite to prove that synthesis
//! transformations (AOI→MAJ conversion, buffer/splitter insertion) preserve
//! the logic function of the circuit.

use aqfp_cells::CellKind;

use crate::gate::GateId;
use crate::netlist::{Netlist, NetlistError};
use crate::traverse;

/// Evaluates the netlist on one input assignment.
///
/// `inputs[i]` is the value of the `i`-th primary input in
/// [`Netlist::primary_inputs`] order. Returns the values of the primary
/// outputs in [`Netlist::primary_outputs`] order.
///
/// Splitters and buffers forward their single input; constant cells produce
/// their constant regardless of the input vector.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if the netlist is cyclic.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
pub fn simulate(netlist: &Netlist, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
    let values = simulate_all(netlist, inputs)?;
    Ok(netlist.primary_outputs().iter().map(|id| values[id.0]).collect())
}

/// Evaluates the netlist and returns the value of every gate output, indexed
/// by [`GateId`].
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if the netlist is cyclic.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
pub fn simulate_all(netlist: &Netlist, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
    assert_eq!(
        inputs.len(),
        netlist.primary_inputs().len(),
        "input vector length must match the number of primary inputs"
    );
    let order = traverse::topological_order(netlist)?;
    let mut values = vec![false; netlist.gate_count()];
    for (value, id) in inputs.iter().zip(netlist.primary_inputs()) {
        values[id.0] = *value;
    }
    for id in order {
        let gate = netlist.gate(id);
        if gate.kind == CellKind::Input {
            continue;
        }
        let f: Vec<bool> = gate.fanin.iter().map(|d| values[d.0]).collect();
        values[id.0] = eval_kind(gate.kind, &f);
    }
    Ok(values)
}

/// Evaluates a single cell kind on its input values.
///
/// # Panics
///
/// Panics if the number of inputs does not match the kind's arity.
pub fn eval_kind(kind: CellKind, inputs: &[bool]) -> bool {
    assert_eq!(inputs.len(), kind.input_count(), "arity mismatch evaluating {kind}");
    match kind {
        CellKind::Buffer
        | CellKind::Splitter2
        | CellKind::Splitter3
        | CellKind::Splitter4
        | CellKind::Output => inputs[0],
        CellKind::Inverter => !inputs[0],
        CellKind::Constant0 => false,
        CellKind::Constant1 => true,
        CellKind::And => inputs[0] && inputs[1],
        CellKind::Or => inputs[0] || inputs[1],
        CellKind::Nand => !(inputs[0] && inputs[1]),
        CellKind::Nor => !(inputs[0] || inputs[1]),
        CellKind::Xor => inputs[0] ^ inputs[1],
        CellKind::Majority3 => (inputs[0] as u8 + inputs[1] as u8 + inputs[2] as u8) >= 2,
        CellKind::Input => false,
    }
}

/// Exhaustively compares two netlists with identical primary-input counts and
/// primary-output counts, returning the first differing input assignment.
///
/// Intended for small cones (the number of inputs must be ≤ 20 to keep the
/// truth-table enumeration tractable).
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if either netlist is cyclic.
///
/// # Panics
///
/// Panics if the interface sizes differ or if there are more than 20 inputs.
pub fn first_mismatch(a: &Netlist, b: &Netlist) -> Result<Option<Vec<bool>>, NetlistError> {
    assert_eq!(a.primary_inputs().len(), b.primary_inputs().len(), "input count mismatch");
    assert_eq!(a.primary_outputs().len(), b.primary_outputs().len(), "output count mismatch");
    let n = a.primary_inputs().len();
    assert!(n <= 20, "exhaustive comparison limited to 20 inputs");
    for pattern in 0u32..(1u32 << n) {
        let inputs: Vec<bool> = (0..n).map(|i| pattern & (1 << i) != 0).collect();
        if simulate(a, &inputs)? != simulate(b, &inputs)? {
            return Ok(Some(inputs));
        }
    }
    Ok(None)
}

/// Convenience wrapper around [`first_mismatch`] returning a boolean verdict.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if either netlist is cyclic.
pub fn equivalent(a: &Netlist, b: &Netlist) -> Result<bool, NetlistError> {
    Ok(first_mismatch(a, b)?.is_none())
}

/// Pseudo-random equivalence check for netlists too wide for exhaustive
/// enumeration: compares the two netlists on `samples` random input vectors
/// derived from a simple deterministic LCG seeded with `seed`.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if either netlist is cyclic.
///
/// # Panics
///
/// Panics if the interface sizes differ.
pub fn equivalent_sampled(
    a: &Netlist,
    b: &Netlist,
    samples: usize,
    seed: u64,
) -> Result<bool, NetlistError> {
    assert_eq!(a.primary_inputs().len(), b.primary_inputs().len(), "input count mismatch");
    assert_eq!(a.primary_outputs().len(), b.primary_outputs().len(), "output count mismatch");
    let n = a.primary_inputs().len();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for _ in 0..samples {
        let inputs: Vec<bool> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) & 1 == 1
            })
            .collect();
        if simulate(a, &inputs)? != simulate(b, &inputs)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Identifiers of gates whose value is `true` under the given inputs; handy
/// for debugging small circuits.
///
/// # Errors
///
/// Returns [`NetlistError::Cycle`] if the netlist is cyclic.
pub fn active_gates(netlist: &Netlist, inputs: &[bool]) -> Result<Vec<GateId>, NetlistError> {
    let values = simulate_all(netlist, inputs)?;
    Ok(netlist.ids().filter(|id| values[id.0]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn majority_netlist() -> Netlist {
        let mut n = Netlist::new("maj");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let m = n.add_gate(CellKind::Majority3, "m", vec![a, b, c]);
        n.add_output("y", m);
        n
    }

    #[test]
    fn majority_truth_table() {
        let n = majority_netlist();
        let cases = [
            ([false, false, false], false),
            ([true, false, false], false),
            ([true, true, false], true),
            ([true, true, true], true),
            ([false, true, true], true),
        ];
        for (inputs, expected) in cases {
            let outputs = simulate(&n, &inputs).expect("acyclic netlist simulates");
            assert_eq!(outputs, vec![expected], "inputs {inputs:?}");
        }
    }

    #[test]
    fn and_or_equivalence_via_majority_constants() {
        // AND(a,b) == MAJ(a,b,0) and OR(a,b) == MAJ(a,b,1).
        let mut and_net = Netlist::new("and");
        let a = and_net.add_input("a");
        let b = and_net.add_input("b");
        let g = and_net.add_gate(CellKind::And, "g", vec![a, b]);
        and_net.add_output("y", g);

        let mut maj_net = Netlist::new("maj_and");
        let a = maj_net.add_input("a");
        let b = maj_net.add_input("b");
        let zero = maj_net.add_gate(CellKind::Constant0, "zero", vec![]);
        let g = maj_net.add_gate(CellKind::Majority3, "g", vec![a, b, zero]);
        maj_net.add_output("y", g);

        assert!(equivalent(&and_net, &maj_net).expect("both netlists are acyclic"));
    }

    #[test]
    fn xor_differs_from_or() {
        let mut xor_net = Netlist::new("xor");
        let a = xor_net.add_input("a");
        let b = xor_net.add_input("b");
        let g = xor_net.add_gate(CellKind::Xor, "g", vec![a, b]);
        xor_net.add_output("y", g);

        let mut or_net = Netlist::new("or");
        let a = or_net.add_input("a");
        let b = or_net.add_input("b");
        let g = or_net.add_gate(CellKind::Or, "g", vec![a, b]);
        or_net.add_output("y", g);

        let mismatch = first_mismatch(&xor_net, &or_net).expect("both netlists are acyclic");
        assert_eq!(mismatch, Some(vec![true, true]));
        assert!(!equivalent_sampled(&xor_net, &or_net, 64, 7).expect("both netlists are acyclic"));
    }

    #[test]
    fn buffers_and_splitters_forward_values() {
        let mut n = Netlist::new("fwd");
        let a = n.add_input("a");
        let s = n.add_gate(CellKind::Splitter2, "s", vec![a]);
        let b1 = n.add_gate(CellKind::Buffer, "b1", vec![s]);
        let b2 = n.add_gate(CellKind::Inverter, "b2", vec![s]);
        n.add_output("y1", b1);
        n.add_output("y2", b2);
        assert_eq!(simulate(&n, &[true]).expect("acyclic netlist simulates"), vec![true, false]);
        assert_eq!(simulate(&n, &[false]).expect("acyclic netlist simulates"), vec![false, true]);
    }

    #[test]
    fn active_gates_reports_true_valued_gates() {
        let n = majority_netlist();
        let active = active_gates(&n, &[true, true, false]).expect("acyclic netlist simulates");
        // a, b, the majority gate and the output are true.
        assert_eq!(active.len(), 4);
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn wrong_input_length_panics() {
        let n = majority_netlist();
        let _ = simulate(&n, &[true]);
    }
}
