//! Shared flow-input loading.
//!
//! The CLI's single-design mode and the batch driver accept the same input
//! spellings: a built-in benchmark name (`adder8`, `c432`, …) resolving to a
//! generated circuit, or a netlist file dispatched on its extension
//! (`.v`/`.sv` structural Verilog, `.blif`). This module is the one place
//! that mapping lives, so both front ends agree — and both produce typed
//! [`FlowError`]s (with the failing path and the parser's line number)
//! instead of stringly-typed messages.

use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
use aqfp_netlist::parsers::{parse_blif, parse_verilog, ParseNetlistError};
use aqfp_netlist::Netlist;

use crate::error::FlowError;

/// Loads a flow input: benchmark names resolve to generated circuits, file
/// paths dispatch on their extension.
///
/// # Errors
///
/// - [`FlowError::Input`] when the input is neither a benchmark name nor a
///   file with a recognized extension.
/// - [`FlowError::Io`] when the file cannot be read.
/// - [`FlowError::Parse`] when the netlist text does not parse.
pub fn load_netlist(input: &str) -> Result<Netlist, FlowError> {
    if let Some(benchmark) = Benchmark::ALL.into_iter().find(|b| b.name() == input) {
        return Ok(benchmark_circuit(benchmark));
    }
    let extension = std::path::Path::new(input)
        .extension()
        .and_then(|extension| extension.to_str())
        .unwrap_or("");
    let parse: fn(&str) -> Result<Netlist, ParseNetlistError> = match extension {
        "v" | "sv" => parse_verilog,
        "blif" => parse_blif,
        _ => {
            return Err(FlowError::Input(format!(
                "cannot tell the format of `{input}` from its extension: expected a .v/.sv \
                 (structural Verilog) or .blif file, or one of the benchmark names ({})",
                Benchmark::ALL.map(|b| b.name()).join(", ")
            )))
        }
    };
    let source = std::fs::read_to_string(input)
        .map_err(|e| FlowError::Io { path: input.to_owned(), message: e.to_string() })?;
    parse(&source).map_err(FlowError::from)
}

/// A short display name for an input spec: benchmark names pass through,
/// file paths reduce to their stem (`designs/alu.v` → `alu`). Used by the
/// batch driver to label reports and journal directories.
pub fn design_name(input: &str) -> String {
    if Benchmark::ALL.into_iter().any(|b| b.name() == input) {
        return input.to_owned();
    }
    std::path::Path::new(input)
        .file_stem()
        .and_then(|stem| stem.to_str())
        .map(str::to_owned)
        .unwrap_or_else(|| input.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_resolve_without_touching_disk() {
        let netlist = load_netlist("adder8").expect("built-in benchmark");
        assert!(netlist.gate_count() > 0);
        assert_eq!(design_name("adder8"), "adder8");
    }

    #[test]
    fn errors_are_typed_with_the_failing_path() {
        assert!(
            matches!(load_netlist("design.vhdl"), Err(FlowError::Input(m)) if m.contains("vhdl"))
        );
        assert!(matches!(
            load_netlist("no_such_file.v"),
            Err(FlowError::Io { path, .. }) if path == "no_such_file.v"
        ));
    }

    #[test]
    fn file_paths_reduce_to_their_stem() {
        assert_eq!(design_name("designs/alu.v"), "alu");
        assert_eq!(design_name("top.blif"), "top");
    }
}
