//! Shared flow-input loading.
//!
//! The CLI's single-design mode and the batch driver accept the same input
//! spellings: a built-in benchmark name (`adder8`, `c432`, …) resolving to a
//! generated circuit, or a netlist file dispatched on its extension
//! (`.v`/`.sv` structural Verilog, `.blif`). This module is the one place
//! that mapping lives, so both front ends agree — and both produce typed
//! [`FlowError`]s (with the failing path and the parser's line number)
//! instead of stringly-typed messages.
//!
//! Two loaders share the mapping: [`load_netlist`] parses strictly (the
//! first undriven signal is a parse error), while [`load_design`] parses
//! leniently through the recovering front-ends, so pre-flight lint can
//! report *every* undriven net with its source span (`AQFP-E002`) instead
//! of stopping at the first.
//!
//! A third spelling, `gen:<family>:<cells>[:<seed>]`, resolves to the
//! large-design generators of `aqfp_netlist::generators::large` — e.g.
//! `gen:random_dag:100000:7` — so scale runs need no netlist file on disk.
//! `superflow generate` uses the same families to dump such designs as
//! files.

use aqfp_netlist::generators::{benchmark_circuit, Benchmark, LargeFamily};
use aqfp_netlist::parsers::{
    parse_blif, parse_blif_recovering, parse_verilog, parse_verilog_recovering, ParsedDesign,
};
use aqfp_netlist::Netlist;

use crate::error::FlowError;

/// The netlist file formats the flow accepts, detected from the extension.
enum NetlistFormat {
    Verilog,
    Blif,
}

/// Maps an input path to its format, or explains what the flow accepts.
fn detect_format(input: &str) -> Result<NetlistFormat, FlowError> {
    let extension = std::path::Path::new(input)
        .extension()
        .and_then(|extension| extension.to_str())
        .unwrap_or("");
    match extension {
        "v" | "sv" => Ok(NetlistFormat::Verilog),
        "blif" => Ok(NetlistFormat::Blif),
        _ => Err(FlowError::Input(format!(
            "cannot tell the format of `{input}` from its extension: expected a .v/.sv \
             (structural Verilog) or .blif file, or one of the benchmark names ({})",
            Benchmark::ALL.map(|b| b.name()).join(", ")
        ))),
    }
}

fn read_source(input: &str) -> Result<String, FlowError> {
    std::fs::read_to_string(input)
        .map_err(|e| FlowError::Io { path: input.to_owned(), message: e.to_string() })
}

/// Parses a `gen:<family>:<cells>[:<seed>]` generated-design spec. Returns
/// `None` when `input` does not start with `gen:` (it is a name or path),
/// `Some(Err(_))` when it does but the family or numbers are malformed.
fn parse_generator_spec(input: &str) -> Option<Result<(LargeFamily, usize, u64), FlowError>> {
    let spec = input.strip_prefix("gen:")?;
    let mut parts = spec.split(':');
    let family_name = parts.next().unwrap_or("");
    let families = || LargeFamily::ALL.map(|f| f.name()).join(", ");
    let Some(family) = LargeFamily::parse(family_name) else {
        return Some(Err(FlowError::Input(format!(
            "unknown generator family `{family_name}` in `{input}`: expected one of {}",
            families()
        ))));
    };
    let Some(Ok(cells)) = parts.next().map(str::parse::<usize>) else {
        return Some(Err(FlowError::Input(format!(
            "bad cell count in `{input}`: expected gen:<family>:<cells>[:<seed>]"
        ))));
    };
    let seed = match parts.next() {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                return Some(Err(FlowError::Input(format!(
                    "bad seed in `{input}`: expected gen:<family>:<cells>[:<seed>]"
                ))))
            }
        },
    };
    if parts.next().is_some() {
        return Some(Err(FlowError::Input(format!(
            "too many fields in `{input}`: expected gen:<family>:<cells>[:<seed>]"
        ))));
    }
    Some(Ok((family, cells, seed)))
}

/// Loads a flow input: benchmark names resolve to generated circuits, file
/// paths dispatch on their extension.
///
/// # Errors
///
/// - [`FlowError::Input`] when the input is neither a benchmark name nor a
///   file with a recognized extension.
/// - [`FlowError::Io`] when the file cannot be read.
/// - [`FlowError::Parse`] when the netlist text does not parse.
pub fn load_netlist(input: &str) -> Result<Netlist, FlowError> {
    if let Some(benchmark) = Benchmark::ALL.into_iter().find(|b| b.name() == input) {
        return Ok(benchmark_circuit(benchmark));
    }
    if let Some(spec) = parse_generator_spec(input) {
        let (family, cells, seed) = spec?;
        return Ok(family.by_cells(cells, seed));
    }
    let format = detect_format(input)?;
    let source = read_source(input)?;
    match format {
        NetlistFormat::Verilog => parse_verilog(&source),
        NetlistFormat::Blif => parse_blif(&source),
    }
    .map_err(FlowError::from)
}

/// Loads a flow input leniently, through the recovering parsers: undriven
/// signals are patched with constant-0 placeholder gates and recorded as
/// [`RecoveredDefect`](aqfp_netlist::parsers::RecoveredDefect)s instead of
/// failing the parse. Pre-flight lint reports each placeholder as an
/// `AQFP-E002` finding with its source span, so one run surfaces every
/// undriven net. Benchmark names resolve to generated circuits with an
/// empty defect list.
///
/// # Errors
///
/// Same as [`load_netlist`], except undriven signals are no longer a
/// [`FlowError::Parse`] — only unrecoverable syntax errors are.
pub fn load_design(input: &str) -> Result<ParsedDesign, FlowError> {
    if let Some(benchmark) = Benchmark::ALL.into_iter().find(|b| b.name() == input) {
        return Ok(ParsedDesign { netlist: benchmark_circuit(benchmark), recovered: Vec::new() });
    }
    if let Some(spec) = parse_generator_spec(input) {
        let (family, cells, seed) = spec?;
        return Ok(ParsedDesign { netlist: family.by_cells(cells, seed), recovered: Vec::new() });
    }
    let format = detect_format(input)?;
    let source = read_source(input)?;
    match format {
        NetlistFormat::Verilog => parse_verilog_recovering(&source),
        NetlistFormat::Blif => parse_blif_recovering(&source),
    }
    .map_err(FlowError::from)
}

/// A short display name for an input spec: benchmark names pass through,
/// file paths reduce to their stem (`designs/alu.v` → `alu`). Used by the
/// batch driver to label reports and journal directories.
pub fn design_name(input: &str) -> String {
    if Benchmark::ALL.into_iter().any(|b| b.name() == input) {
        return input.to_owned();
    }
    if let Some(Ok((family, cells, seed))) = parse_generator_spec(input) {
        // Mirrors the generators' own netlist names, minus sizing details
        // the generator derives itself.
        return match family {
            LargeFamily::RandomDag => format!("{}_{cells}_s{seed}", family.name()),
            _ => format!("{}_{cells}", family.name()),
        };
    }
    std::path::Path::new(input)
        .file_stem()
        .and_then(|stem| stem.to_str())
        .map(str::to_owned)
        .unwrap_or_else(|| input.to_owned())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_resolve_without_touching_disk() {
        let netlist = load_netlist("adder8").expect("built-in benchmark");
        assert!(netlist.gate_count() > 0);
        assert_eq!(design_name("adder8"), "adder8");
        let design = load_design("adder8").expect("built-in benchmark");
        assert!(design.recovered.is_empty());
        assert_eq!(design.netlist.gate_count(), netlist.gate_count());
    }

    #[test]
    fn errors_are_typed_with_the_failing_path() {
        assert!(
            matches!(load_netlist("design.vhdl"), Err(FlowError::Input(m)) if m.contains("vhdl"))
        );
        assert!(matches!(
            load_netlist("no_such_file.v"),
            Err(FlowError::Io { path, .. }) if path == "no_such_file.v"
        ));
        // The lenient loader shares the same dispatch and error types.
        assert!(matches!(load_design("design.vhdl"), Err(FlowError::Input(_))));
        assert!(matches!(load_design("no_such_file.blif"), Err(FlowError::Io { .. })));
    }

    #[test]
    fn file_paths_reduce_to_their_stem() {
        assert_eq!(design_name("designs/alu.v"), "alu");
        assert_eq!(design_name("top.blif"), "top");
    }

    #[test]
    fn generator_specs_resolve_without_touching_disk() {
        let netlist = load_netlist("gen:random_dag:500:7").expect("generated design");
        assert!(netlist.validate().is_ok());
        let cells = netlist.cell_count();
        assert!((350..=650).contains(&cells), "got {cells} cells");
        // Same spec, same circuit — and the seed is part of the identity.
        let again = load_netlist("gen:random_dag:500:7").expect("generated design");
        assert_eq!(again.cell_count(), cells);
        // The seed defaults to 0 when omitted; hyphens are accepted.
        assert!(load_netlist("gen:tiled-mul:100").is_ok());
        let design = load_design("gen:apc_array:200").expect("generated design");
        assert!(design.recovered.is_empty());
    }

    #[test]
    fn generator_names_are_filesystem_safe() {
        // Journal directories and output GDS files are named after the
        // design, so the colons of the spec must not leak through.
        assert_eq!(design_name("gen:random_dag:100000:7"), "random_dag_100000_s7");
        assert_eq!(design_name("gen:tiled_mul:5000"), "tiled_mul_5000");
        assert_eq!(design_name("gen:apc-array:200"), "apc_array_200");
    }

    #[test]
    fn malformed_generator_specs_are_input_errors() {
        for bad in [
            "gen:no_such_family:100",
            "gen:random_dag",
            "gen:random_dag:lots",
            "gen:random_dag:100:abc",
            "gen:random_dag:100:7:extra",
        ] {
            assert!(
                matches!(load_netlist(bad), Err(FlowError::Input(_))),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn lenient_loading_recovers_undriven_signals() {
        let dir = std::env::temp_dir().join("superflow-input-lenient-test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("undriven.v");
        std::fs::write(
            &path,
            "module undriven(a, y);\n  input a;\n  output y;\n  wire ghost;\n  and g(y, a, \
             ghost);\nendmodule\n",
        )
        .expect("write fixture");
        let input = path.to_str().expect("utf-8 path");
        // Strict loading fails on the undriven signal ...
        assert!(matches!(load_netlist(input), Err(FlowError::Parse(_))));
        // ... while lenient loading patches it and records the defect.
        let design = load_design(input).expect("recovering parse succeeds");
        assert_eq!(design.recovered.len(), 1);
        assert_eq!(design.recovered[0].signal, "ghost");
        std::fs::remove_file(&path).ok();
    }
}
