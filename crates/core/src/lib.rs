//! SuperFlow: a fully-customized RTL-to-GDS design automation flow for
//! Adiabatic Quantum-Flux-Parametron (AQFP) superconducting circuits.
//!
//! This crate is the top of the SuperFlow workspace: it wires the individual
//! stages — majority-based logic synthesis ([`aqfp_synth`]), timing-aware
//! row-wise placement ([`aqfp_place`]), layer-wise A* routing
//! ([`aqfp_route`]) and GDSII layout generation with DRC
//! ([`aqfp_layout`]) — into the single push-button pipeline of Fig. 3 in the
//! paper, from an RTL-level netlist to a final GDSII layout.
//!
//! # Quick start
//!
//! ```
//! use aqfp_netlist::generators::Benchmark;
//! use superflow::{Flow, FlowConfig};
//!
//! let flow = Flow::with_config(FlowConfig::fast());
//! let report = flow.run_benchmark(Benchmark::Adder8)?;
//! println!(
//!     "{}: {} JJs, HPWL {:.0} µm, WNS {}, DRC clean: {}",
//!     report.design_name,
//!     report.synthesis_stats.jj_count,
//!     report.placement.hpwl_um,
//!     report.placement.wns_display(),
//!     report.drc.is_clean(),
//! );
//! let gds_bytes = report.layout.to_gds_bytes();
//! assert!(!gds_bytes.is_empty());
//! # Ok::<(), superflow::FlowError>(())
//! ```
//!
//! # Staged sessions
//!
//! [`Flow::run`] is a thin wrapper over the staged [`FlowSession`] API:
//! each stage returns a typed, inspectable artifact
//! ([`Synthesized`] → [`Placed`] → [`Routed`] → [`Checked`]) that
//! serializes to a resumable JSON checkpoint, observers
//! ([`FlowObserver`]) watch stage boundaries and DRC-repair iterations, and
//! per-stage wall-clock timings land in [`FlowReport::stage_timings`]. The
//! DRC-repair loop is incremental: only the channels whose cells actually
//! moved are rerouted (see [`session`]).
//!
//! # Batch runs
//!
//! [`BatchRunner`] (`superflow batch` on the CLI) drives many designs
//! through the flow on a pool of worker threads with a fault boundary
//! around each design: per-stage panic isolation, cooperative wall-clock
//! deadlines, one degraded retry before a design is classified failed, and
//! crash-safe journaling of stage checkpoints so a killed batch resumes
//! from the last completed stage with byte-identical results. See the
//! [`batch`] module docs for the fault model.
//!
//! # Pre-flight lint
//!
//! Before any stage engine runs, the flow lints its inputs ([`lint`], the
//! `aqfp-lint` crate): [`FlowSession::new`] checks the resolved technology
//! and flow configuration, [`FlowSession::synthesize`] checks the netlist
//! graph (combinational loops, undriven nets, unmappable cell kinds, …),
//! and the batch driver classifies rejected designs as failed at the
//! pre-flight "lint" stage without starting the flow. Error-severity
//! findings surface as [`FlowError::Lint`] carrying the full
//! [`LintReport`]; the policy (deny/warn/allow per rule) lives in
//! [`FlowConfig::lint`]. The `superflow lint` CLI subcommand runs the same
//! rules standalone, with human-readable or JSON output.
//!
//! # Predictive analysis
//!
//! Between "what the netlist is" (lint) and "what the flow did" (verify)
//! sits "what the flow *will* do": the predictive feasibility analysis
//! ([`predict`], the `aqfp-predict` crate) derives phase-depth intervals,
//! cell-count and die-size bounds, a channel-congestion forecast and a
//! calibrated stage cost model from the parsed netlist alone — no stage
//! engine runs. Its `AQFP-P0xx` findings fold into the same pre-flight
//! report as the lint rules ([`lint_design`], [`FlowSession::lint`]), so a
//! provably-infeasible design is rejected before synthesis; the batch
//! driver additionally uses the per-stage cost forecast to schedule
//! longest-predicted-first and to scale its per-stage deadlines (see
//! [`batch`]). Run it standalone with `superflow predict`.
//!
//! # Post-stage verification
//!
//! Where lint checks the *inputs*, the verification layer ([`verify`], the
//! `aqfp-verify` crate) re-checks the flow's *outputs* from first
//! principles: logic equivalence between the input and synthesized
//! netlists (bit-parallel random plus exhaustive cone simulation),
//! AQFP phase-legality of placed and routed designs, and LVS-lite
//! extraction of the emitted GDS byte stream against the routed netlist.
//! Enable it per stage boundary with [`FlowConfig::verify`] (findings
//! surface as [`FlowError::Verify`] carrying the full [`VerifyReport`]
//! with stable `AQFP-V0xx` rule ids), run it standalone with
//! `superflow verify`, or let the batch driver classify failures at its
//! [`VERIFY_STAGE`].
//!
//! # Technologies
//!
//! The flow is generic over the fabrication process: every stage consumes
//! one shared [`Technology`](aqfp_cells::Technology) (cell geometry, design
//! rules, clock, timing coefficients, GDS layer map), selected through
//! [`FlowConfig::tech`] as a [`TechSpec`] — a built-in registry name
//! (`mit-ll-sqf5ee`, `aist-stp2`), a technology file dumped with
//! `superflow tech dump` and edited by hand, or an inline value. Session
//! checkpoints embed the technology fingerprint, so resuming an artifact
//! under a different process fails loudly instead of mixing data.
//!
//! The individual stages also remain available through the re-exported
//! crates for users who want to customize a single step (e.g. swap in their
//! own placer) while keeping the rest of the flow.

#![warn(clippy::unwrap_used)]

pub mod batch;
pub mod config;
pub mod error;
pub mod flow;
pub mod input;
pub mod report;
pub mod session;

pub use batch::{
    error_chain, BatchConfig, BatchJob, BatchReport, BatchRunner, DesignReport, DesignStatus,
    Fault, FaultKind, FaultPlan, LINT_STAGE, VERIFY_STAGE,
};
pub use config::{FlowConfig, TechSpec};
pub use error::FlowError;
pub use flow::Flow;
pub use input::{load_design, load_netlist};
pub use report::{FlowReport, StageTimings};
pub use session::{
    lint_design, Checked, FlowObserver, FlowSession, FlowStage, Placed, RepairScope, Routed,
    Synthesized,
};

// Re-export the stage crates so downstream users can depend on `superflow`
// alone.
pub use aqfp_cells as cells;
pub use aqfp_layout as layout;
pub use aqfp_lint as lint;
pub use aqfp_lint::{LintConfig, LintReport};
pub use aqfp_netlist as netlist;
pub use aqfp_place as place;
pub use aqfp_predict as predict;
pub use aqfp_predict::{PredictOptions, PredictReport};
pub use aqfp_route as route;
pub use aqfp_synth as synth;
pub use aqfp_timing as timing;
pub use aqfp_verify as verify;
pub use aqfp_verify::{VerifyConfig, VerifyReport};
