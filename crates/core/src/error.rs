//! Flow-level error type.

use aqfp_lint::LintReport;
use aqfp_netlist::parsers::ParseNetlistError;
use aqfp_netlist::NetlistError;
use aqfp_synth::SynthesisError;
use aqfp_verify::VerifyReport;
use std::error::Error;
use std::fmt;

/// Errors a complete flow run can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The RTL/netlist input could not be parsed.
    Parse(ParseNetlistError),
    /// Pre-flight lint found error-severity defects, so the flow refused to
    /// start. The full report — rule ids, messages, source spans — is
    /// carried along for rendering.
    Lint(LintReport),
    /// Post-stage verification found error-severity defects in a stage
    /// artifact, so the flow stopped at that stage boundary. The full
    /// report — rule ids, messages, offending objects — is carried along
    /// for rendering.
    Verify(VerifyReport),
    /// The input netlist failed validation.
    InvalidNetlist(NetlistError),
    /// The synthesis stage failed.
    Synthesis(SynthesisError),
    /// A stage-artifact checkpoint could not be serialized, parsed or
    /// validated. The message carries context: what was being loaded (and
    /// the file path, when the checkpoint came from disk) plus the cause.
    Checkpoint(String),
    /// The flow input could not be identified (e.g. an unrecognized file
    /// extension that is neither a netlist format nor a benchmark name).
    Input(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A stage was cancelled cooperatively before it completed; any partial
    /// work was discarded.
    Cancelled {
        /// The stage that observed the cancellation.
        stage: crate::session::FlowStage,
    },
    /// A stage's wall-clock deadline fired before it completed; any partial
    /// work was discarded.
    DeadlineExceeded {
        /// The stage that ran out of budget.
        stage: crate::session::FlowStage,
    },
    /// The configured technology could not be resolved (unknown registry
    /// name, unreadable file, parse or validation failure).
    Technology(String),
    /// A stage artifact was produced under a different technology than the
    /// session targets, so resuming it would silently mix process data.
    TechnologyMismatch {
        /// Fingerprint of the session's technology.
        expected: String,
        /// Fingerprint recorded in the artifact.
        found: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Parse(e) => write!(f, "failed to parse input: {e}"),
            FlowError::Lint(report) => {
                let errors = report.errors().count();
                let rules: std::collections::BTreeSet<&str> =
                    report.errors().map(|d| d.rule.as_str()).collect();
                let rules: Vec<&str> = rules.into_iter().collect();
                write!(
                    f,
                    "design `{}` rejected by pre-flight lint: {errors} error{} ({}); run \
                     `superflow lint` for the full report",
                    report.design,
                    if errors == 1 { "" } else { "s" },
                    rules.join(", ")
                )
            }
            FlowError::Verify(report) => {
                let errors = report.errors().count();
                let rules: std::collections::BTreeSet<&str> =
                    report.errors().map(|d| d.rule.as_str()).collect();
                let rules: Vec<&str> = rules.into_iter().collect();
                write!(
                    f,
                    "design `{}` rejected by post-stage verification: {errors} error{} ({}); \
                     run `superflow verify` for the full report",
                    report.design,
                    if errors == 1 { "" } else { "s" },
                    rules.join(", ")
                )
            }
            FlowError::InvalidNetlist(e) => write!(f, "input netlist is invalid: {e}"),
            FlowError::Synthesis(e) => write!(f, "logic synthesis failed: {e}"),
            FlowError::Checkpoint(message) => write!(f, "checkpoint error: {message}"),
            FlowError::Input(message) => write!(f, "input error: {message}"),
            FlowError::Io { path, message } => write!(f, "io error on `{path}`: {message}"),
            FlowError::Cancelled { stage } => write!(f, "the {stage} stage was cancelled"),
            FlowError::DeadlineExceeded { stage } => {
                write!(f, "the {stage} stage exceeded its wall-clock deadline")
            }
            FlowError::Technology(message) => write!(f, "technology error: {message}"),
            FlowError::TechnologyMismatch { expected, found } => write!(
                f,
                "technology mismatch: this session targets `{expected}`, but the artifact was \
                 produced under `{found}`; resume with the original technology or re-run from \
                 the netlist"
            ),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Parse(e) => Some(e),
            FlowError::InvalidNetlist(e) => Some(e),
            FlowError::Synthesis(e) => Some(e),
            FlowError::Lint(_)
            | FlowError::Verify(_)
            | FlowError::Checkpoint(_)
            | FlowError::Input(_)
            | FlowError::Io { .. }
            | FlowError::Cancelled { .. }
            | FlowError::DeadlineExceeded { .. }
            | FlowError::Technology(_)
            | FlowError::TechnologyMismatch { .. } => None,
        }
    }
}

impl From<ParseNetlistError> for FlowError {
    fn from(value: ParseNetlistError) -> Self {
        FlowError::Parse(value)
    }
}

impl From<SynthesisError> for FlowError {
    fn from(value: SynthesisError) -> Self {
        FlowError::Synthesis(value)
    }
}

impl From<NetlistError> for FlowError {
    fn from(value: NetlistError) -> Self {
        FlowError::InvalidNetlist(value)
    }
}

impl From<LintReport> for FlowError {
    fn from(value: LintReport) -> Self {
        FlowError::Lint(value)
    }
}

impl From<VerifyReport> for FlowError {
    fn from(value: VerifyReport) -> Self {
        FlowError::Verify(value)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_netlist::GateId;

    #[test]
    fn errors_display_their_stage() {
        let parse: FlowError = FlowError::Parse(ParseNetlistError {
            line: 3,
            column: 0,
            message: "bad token".to_owned(),
        });
        assert!(parse.to_string().contains("parse"));
        let invalid: FlowError = NetlistError::Cycle { gate: GateId(0) }.into();
        assert!(invalid.to_string().contains("invalid"));
        assert!(std::error::Error::source(&invalid).is_some());
    }

    #[test]
    fn lint_errors_summarize_the_report() {
        let mut report = LintReport::clean("bad");
        report.diagnostics.push(aqfp_lint::Diagnostic {
            rule: "AQFP-E001".to_owned(),
            severity: aqfp_lint::Severity::Error,
            message: "combinational loop: g1 -> g2 -> g1".to_owned(),
            object: Some("g1".to_owned()),
            line: 4,
            column: 3,
        });
        let error: FlowError = report.into();
        let text = error.to_string();
        assert!(text.contains("pre-flight lint"), "{text}");
        assert!(text.contains("AQFP-E001"), "{text}");
        assert!(text.contains("1 error"), "{text}");
    }

    #[test]
    fn verify_errors_summarize_the_report() {
        let mut report = VerifyReport::clean("bad");
        report.record_check("phase");
        report.diagnostics.push(aqfp_lint::Diagnostic {
            rule: "AQFP-V010".to_owned(),
            severity: aqfp_lint::Severity::Error,
            message: "net n3 advances 2 phases".to_owned(),
            object: Some("u7".to_owned()),
            line: 0,
            column: 0,
        });
        let error: FlowError = report.into();
        let text = error.to_string();
        assert!(text.contains("post-stage verification"), "{text}");
        assert!(text.contains("AQFP-V010"), "{text}");
        assert!(text.contains("superflow verify"), "{text}");
    }
}
