//! Flow-level configuration.

use std::sync::Arc;

use aqfp_cells::{Process, Technology, TechnologyRegistry};
use aqfp_place::{PlacementOptions, PlacerKind};
use aqfp_route::RouterConfig;
use aqfp_synth::SynthesisOptions;
use serde::{Deserialize, Serialize};

use crate::error::FlowError;

/// Where the flow's technology (PDK) description comes from.
///
/// The flow is generic over the fabrication process: everything
/// process-specific lives in one [`Technology`] value, and this spec says
/// how to obtain it — by registry name, from a dumped-and-edited file, or
/// inline.
///
/// ```
/// use superflow::{FlowConfig, TechSpec};
/// let config = FlowConfig::fast().with_tech(TechSpec::builtin("aist-stp2"));
/// assert_eq!(config.resolve_technology().unwrap().rules().max_wirelength, 500.0);
/// ```
// The `Inline` variant dwarfs the other two; that is fine — a `FlowConfig`
// is constructed a handful of times per run, never stored in bulk, and an
// unboxed `Technology` keeps `TechSpec::Inline(tech)` ergonomic (the
// vendored serde has no `Box` support).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TechSpec {
    /// A built-in technology from the [`TechnologyRegistry`]
    /// (`mit-ll-sqf5ee`, `aist-stp2`).
    Builtin(String),
    /// A technology file on disk — TOML (`superflow tech dump` format) or
    /// JSON, dispatched on a case-insensitive `.json` extension.
    File(String),
    /// A fully constructed technology value.
    Inline(Technology),
}

impl TechSpec {
    /// A builtin spec from a registry name.
    pub fn builtin(name: impl Into<String>) -> Self {
        TechSpec::Builtin(name.into())
    }

    /// A file spec from a path.
    pub fn file(path: impl Into<String>) -> Self {
        TechSpec::File(path.into())
    }

    /// Resolves the spec to a shared technology, validating it.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Technology`] for unknown registry names,
    /// unreadable files, and parse or validation failures.
    pub fn resolve(&self) -> Result<Arc<Technology>, FlowError> {
        match self {
            TechSpec::Builtin(name) => TechnologyRegistry::global().get(name).ok_or_else(|| {
                FlowError::Technology(format!(
                    "no built-in technology named `{name}` (available: {})",
                    TechnologyRegistry::global().names().collect::<Vec<_>>().join(", ")
                ))
            }),
            TechSpec::File(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    FlowError::Technology(format!("cannot read technology file `{path}`: {e}"))
                })?;
                let is_json = std::path::Path::new(path)
                    .extension()
                    .is_some_and(|ext| ext.eq_ignore_ascii_case("json"));
                let technology = if is_json {
                    Technology::from_json(&text)
                } else {
                    Technology::from_toml(&text)
                }
                .map_err(|e| FlowError::Technology(format!("technology file `{path}`: {e}")))?;
                Ok(Arc::new(technology))
            }
            TechSpec::Inline(technology) => {
                technology
                    .validate()
                    .map_err(|e| FlowError::Technology(format!("inline technology: {e}")))?;
                Ok(Arc::new(technology.clone()))
            }
        }
    }

    /// A short human-readable description of the spec, for logs.
    pub fn describe(&self) -> String {
        match self {
            TechSpec::Builtin(name) => format!("builtin `{name}`"),
            TechSpec::File(path) => format!("file `{path}`"),
            TechSpec::Inline(technology) => format!("inline `{}`", technology.name),
        }
    }
}

impl Default for TechSpec {
    fn default() -> Self {
        TechSpec::Builtin(aqfp_cells::MIT_LL_SQF5EE.to_owned())
    }
}

/// Configuration of a complete RTL-to-GDS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowConfig {
    /// The technology (PDK) to target — a built-in registry name, a
    /// technology file, or an inline value. Selects the cell geometry,
    /// design rules, clock, timing coefficients and GDS layer map for every
    /// stage at once.
    pub tech: TechSpec,
    /// Placement strategy (SuperFlow or one of the baselines).
    pub placer: PlacerKind,
    /// Logic synthesis options.
    pub synthesis: SynthesisOptions,
    /// Placement options.
    pub placement: PlacementOptions,
    /// Router options.
    pub router: RouterConfig,
    /// Maximum number of DRC-fix iterations before the flow gives up and
    /// reports the remaining violations.
    pub max_drc_iterations: usize,
    /// Pre-flight lint policy: per-rule severity overrides and rule
    /// parameters. The defaults deny nothing extra and suppress nothing —
    /// error-severity rules gate the flow, warnings are reported and the
    /// flow proceeds.
    pub lint: aqfp_lint::LintConfig,
    /// Post-stage verification policy. When
    /// [`enabled`](aqfp_verify::VerifyConfig::enabled) is set, every stage
    /// boundary re-verifies its artifact (LEC after synthesis,
    /// phase-legality after placement and routing, LVS-lite after layout)
    /// and fails the stage with [`FlowError::Verify`] on findings. Off by
    /// default.
    pub verify: aqfp_verify::VerifyConfig,
}

impl FlowConfig {
    /// The configuration used for the paper's evaluation: MIT-LL process,
    /// SuperFlow placer, default stage options.
    pub fn paper_default() -> Self {
        Self {
            tech: TechSpec::default(),
            placer: PlacerKind::SuperFlow,
            synthesis: SynthesisOptions::default(),
            placement: PlacementOptions::default(),
            router: RouterConfig::default(),
            max_drc_iterations: 3,
            lint: aqfp_lint::LintConfig::default(),
            verify: aqfp_verify::VerifyConfig::default(),
        }
    }

    /// A faster configuration for tests and examples: fewer global-placement
    /// iterations and detailed-placement passes, same flow structure.
    pub fn fast() -> Self {
        let mut config = Self::paper_default();
        config.placement.global.iterations = 150;
        config.placement.detailed.passes = 2;
        config
    }

    /// Returns the same configuration with a different placer, for baseline
    /// comparisons.
    pub fn with_placer(mut self, placer: PlacerKind) -> Self {
        self.placer = placer;
        self
    }

    /// Returns the same configuration targeting a different technology.
    pub fn with_tech(mut self, tech: TechSpec) -> Self {
        self.tech = tech;
        self
    }

    /// Returns the same configuration targeting an inline technology value.
    pub fn with_technology(self, technology: Technology) -> Self {
        self.with_tech(TechSpec::Inline(technology))
    }

    /// Returns the same configuration targeting the built-in technology of
    /// a legacy [`Process`] value (kept for symmetry with the old
    /// `Process`-based API; equivalent to
    /// `with_tech(TechSpec::builtin(process.tech_name()))`).
    pub fn with_process(self, process: Process) -> Self {
        self.with_tech(TechSpec::builtin(process.tech_name()))
    }

    /// Returns the same configuration with an explicit worker-thread count
    /// for the parallel flow stages: channel routing, the detailed
    /// placer's row sweeps and the global placer's shards. `0` uses every
    /// available core, `1` forces strictly serial execution; the flow
    /// result is identical for every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.router.threads = threads;
        self.placement.detailed.threads = threads;
        self.placement.global.threads = threads;
        self
    }

    /// The worker-thread count the parallel flow stages will use (`0` =
    /// every available core).
    pub fn threads(&self) -> usize {
        self.router.threads
    }

    /// Returns the same configuration with a different lint policy.
    pub fn with_lint(mut self, lint: aqfp_lint::LintConfig) -> Self {
        self.lint = lint;
        self
    }

    /// Returns the same configuration with a different post-stage
    /// verification policy. `with_verify(VerifyConfig { enabled: true,
    /// ..Default::default() })` turns on the stage-boundary gates.
    pub fn with_verify(mut self, verify: aqfp_verify::VerifyConfig) -> Self {
        self.verify = verify;
        self
    }

    /// The slice of this configuration the lint config-sanity rules inspect.
    pub fn lint_settings(&self) -> aqfp_lint::FlowSettings {
        aqfp_lint::FlowSettings {
            threads: self.threads(),
            max_splitter_arity: self.synthesis.max_splitter_arity,
            max_drc_iterations: self.max_drc_iterations,
        }
    }

    /// The slice of this configuration the predictive feasibility analysis
    /// ([`aqfp_predict::predict`]) runs under: the lint-visible flow
    /// settings, the severity policy (shared with lint, so `--deny
    /// AQFP-P004` works the same way as `--deny AQFP-W009`), and the router
    /// configuration the congestion forecast mirrors.
    pub fn predict_options(&self) -> aqfp_predict::PredictOptions {
        aqfp_predict::PredictOptions {
            settings: self.lint_settings(),
            lint: self.lint.clone(),
            router: self.router,
        }
    }

    /// The degraded variant of this configuration, used by the batch
    /// driver's retry policy after a design fails or times out: strictly
    /// serial stage execution (no parallel row sweeps or channel workers
    /// competing for cores) and a doubled DRC-repair budget, so the retry
    /// trades wall-clock time for a better chance of completing. Everything
    /// else — technology, placer, stage options — is unchanged, keeping the
    /// retry's result comparable to the original attempt.
    pub fn degraded(self) -> Self {
        let max_drc_iterations = self.max_drc_iterations.saturating_mul(2).max(1);
        let mut config = self.with_threads(1);
        config.max_drc_iterations = max_drc_iterations;
        config
    }

    /// Resolves [`FlowConfig::tech`] to the shared, validated technology
    /// every stage of a session built from this configuration will target.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Technology`] when the spec cannot be resolved.
    pub fn resolve_technology(&self) -> Result<Arc<Technology>, FlowError> {
        self.tech.resolve()
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_cells::MIT_LL_SQF5EE;

    #[test]
    fn default_targets_mit_ll_and_superflow() {
        let config = FlowConfig::default();
        assert_eq!(config.tech, TechSpec::builtin(MIT_LL_SQF5EE));
        assert_eq!(config.placer, PlacerKind::SuperFlow);
        assert!(config.max_drc_iterations >= 1);
        assert_eq!(config.resolve_technology().unwrap().name, MIT_LL_SQF5EE);
    }

    #[test]
    fn fast_config_is_cheaper() {
        let fast = FlowConfig::fast();
        let full = FlowConfig::paper_default();
        assert!(fast.placement.global.iterations < full.placement.global.iterations);
    }

    #[test]
    fn with_placer_switches_strategy() {
        let config = FlowConfig::default().with_placer(PlacerKind::Taas);
        assert_eq!(config.placer, PlacerKind::Taas);
    }

    #[test]
    fn with_tech_switches_rules_and_process_maps_to_builtin_names() {
        let config = FlowConfig::default().with_tech(TechSpec::builtin("aist-stp2"));
        let technology = config.resolve_technology().expect("resolves");
        assert_eq!(technology.rules().name, "AIST STP2");
        // The legacy Process values reach the same registry entries.
        let via_process = FlowConfig::default().with_process(Process::Stp2);
        assert_eq!(via_process.tech, TechSpec::builtin("aist-stp2"));
        // Builders chain in any order.
        let chained = FlowConfig::fast()
            .with_process(Process::MitLl)
            .with_placer(PlacerKind::GordianBased)
            .with_threads(2);
        assert_eq!(chained.tech, TechSpec::builtin(MIT_LL_SQF5EE));
        assert_eq!(chained.placer, PlacerKind::GordianBased);
        assert_eq!(chained.threads(), 2);
    }

    #[test]
    fn unknown_builtin_names_fail_with_the_available_list() {
        let config = FlowConfig::default().with_tech(TechSpec::builtin("tba-9000"));
        let err = config.resolve_technology().expect_err("unknown name");
        let message = err.to_string();
        assert!(message.contains("tba-9000"), "{message}");
        assert!(message.contains(MIT_LL_SQF5EE), "lists the available names: {message}");
    }

    #[test]
    fn inline_technologies_are_validated_on_resolution() {
        let mut technology = Technology::mit_ll_sqf5ee();
        technology.rules.grid = -1.0;
        let config = FlowConfig::default().with_technology(technology);
        assert!(matches!(
            config.resolve_technology(),
            Err(FlowError::Technology(message)) if message.contains("grid")
        ));
    }

    #[test]
    fn missing_tech_files_fail_loudly() {
        let config = FlowConfig::default().with_tech(TechSpec::file("/no/such/tech.toml"));
        let err = config.resolve_technology().expect_err("missing file");
        assert!(err.to_string().contains("/no/such/tech.toml"), "{err}");
    }

    #[test]
    fn with_threads_reaches_every_parallel_stage() {
        let config = FlowConfig::default().with_threads(3);
        assert_eq!(config.threads(), 3);
        assert_eq!(config.router.threads, 3);
        assert_eq!(config.placement.detailed.threads, 3);
        assert_eq!(config.placement.global.threads, 3);
        // Default is auto (0): use every available core.
        assert_eq!(FlowConfig::default().threads(), 0);
        assert_eq!(FlowConfig::default().placement.detailed.threads, 0);
        assert_eq!(FlowConfig::default().placement.global.threads, 0);
    }

    #[test]
    fn degraded_is_serial_with_a_doubled_repair_budget() {
        let base = FlowConfig::fast().with_threads(4);
        let degraded = base.clone().degraded();
        assert_eq!(degraded.threads(), 1);
        assert_eq!(degraded.placement.detailed.threads, 1);
        assert_eq!(degraded.max_drc_iterations, base.max_drc_iterations * 2);
        // Everything else is untouched — the retry stays comparable.
        assert_eq!(degraded.tech, base.tech);
        assert_eq!(degraded.placer, base.placer);
        assert_eq!(degraded.placement.global.iterations, base.placement.global.iterations);
    }

    #[test]
    fn lint_settings_mirror_the_flow_configuration() {
        let config = FlowConfig::fast().with_threads(2);
        let settings = config.lint_settings();
        assert_eq!(settings.threads, 2);
        assert_eq!(settings.max_splitter_arity, config.synthesis.max_splitter_arity);
        assert_eq!(settings.max_drc_iterations, config.max_drc_iterations);
        // with_lint swaps the policy wholesale.
        let strict = config
            .with_lint(aqfp_lint::LintConfig { deny: vec!["all".into()], ..Default::default() });
        assert_eq!(strict.lint.deny, vec!["all".to_owned()]);
    }

    #[test]
    fn predict_options_mirror_the_flow_configuration() {
        let mut config = FlowConfig::fast().with_threads(2);
        config.lint.deny.push("AQFP-P002".to_owned());
        config.router.initial_tracks = 7;
        let options = config.predict_options();
        assert_eq!(options.settings, config.lint_settings());
        assert_eq!(options.lint.deny, vec!["AQFP-P002".to_owned()]);
        assert_eq!(options.router.initial_tracks, 7);
    }

    #[test]
    fn verification_is_off_by_default_and_togglable() {
        assert!(!FlowConfig::default().verify.enabled);
        let config = FlowConfig::fast()
            .with_verify(aqfp_verify::VerifyConfig { enabled: true, ..Default::default() });
        assert!(config.verify.enabled);
        assert!(config.verify.lec_rounds > 0);
    }

    #[test]
    fn tech_spec_serde_round_trips() {
        for spec in [
            TechSpec::builtin("aist-stp2"),
            TechSpec::file("custom.toml"),
            TechSpec::Inline(Technology::mit_ll_sqf5ee()),
        ] {
            let json = serde_json::to_string(&spec).expect("serializes");
            let back: TechSpec = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, spec);
        }
    }
}
