//! Flow-level configuration.

use aqfp_cells::{CellLibrary, Process};
use aqfp_place::{PlacementOptions, PlacerKind};
use aqfp_route::RouterConfig;
use aqfp_synth::SynthesisOptions;
use serde::{Deserialize, Serialize};

/// Configuration of a complete RTL-to-GDS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Fabrication process to target (selects the cell library and rules).
    pub process: Process,
    /// Placement strategy (SuperFlow or one of the baselines).
    pub placer: PlacerKind,
    /// Logic synthesis options.
    pub synthesis: SynthesisOptions,
    /// Placement options.
    pub placement: PlacementOptions,
    /// Router options.
    pub router: RouterConfig,
    /// Maximum number of DRC-fix iterations before the flow gives up and
    /// reports the remaining violations.
    pub max_drc_iterations: usize,
}

impl FlowConfig {
    /// The configuration used for the paper's evaluation: MIT-LL process,
    /// SuperFlow placer, default stage options.
    pub fn paper_default() -> Self {
        Self {
            process: Process::MitLl,
            placer: PlacerKind::SuperFlow,
            synthesis: SynthesisOptions::default(),
            placement: PlacementOptions::default(),
            router: RouterConfig::default(),
            max_drc_iterations: 3,
        }
    }

    /// A faster configuration for tests and examples: fewer global-placement
    /// iterations and detailed-placement passes, same flow structure.
    pub fn fast() -> Self {
        let mut config = Self::paper_default();
        config.placement.global.iterations = 150;
        config.placement.detailed.passes = 2;
        config
    }

    /// Returns the same configuration with a different placer, for baseline
    /// comparisons.
    pub fn with_placer(mut self, placer: PlacerKind) -> Self {
        self.placer = placer;
        self
    }

    /// Returns the same configuration targeting a different fabrication
    /// process (which selects the cell library and design rules), for
    /// symmetry with [`FlowConfig::with_placer`] and
    /// [`FlowConfig::with_threads`].
    pub fn with_process(mut self, process: Process) -> Self {
        self.process = process;
        self
    }

    /// Returns the same configuration with an explicit worker-thread count
    /// for the parallel flow stages: channel routing and the detailed
    /// placer's row sweeps. `0` uses every available core, `1` forces
    /// strictly serial execution; the flow result is identical for every
    /// setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.router.threads = threads;
        self.placement.detailed.threads = threads;
        self
    }

    /// The worker-thread count the parallel flow stages will use (`0` =
    /// every available core).
    pub fn threads(&self) -> usize {
        self.router.threads
    }

    /// Builds the cell library selected by [`FlowConfig::process`].
    pub fn library(&self) -> CellLibrary {
        match self.process {
            Process::MitLl => CellLibrary::mit_ll(),
            Process::Stp2 => CellLibrary::stp2(),
        }
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_targets_mit_ll_and_superflow() {
        let config = FlowConfig::default();
        assert_eq!(config.process, Process::MitLl);
        assert_eq!(config.placer, PlacerKind::SuperFlow);
        assert!(config.max_drc_iterations >= 1);
    }

    #[test]
    fn fast_config_is_cheaper() {
        let fast = FlowConfig::fast();
        let full = FlowConfig::paper_default();
        assert!(fast.placement.global.iterations < full.placement.global.iterations);
    }

    #[test]
    fn with_placer_switches_strategy() {
        let config = FlowConfig::default().with_placer(PlacerKind::Taas);
        assert_eq!(config.placer, PlacerKind::Taas);
    }

    #[test]
    fn with_process_switches_library_and_rules() {
        let config = FlowConfig::default().with_process(Process::Stp2);
        assert_eq!(config.process, Process::Stp2);
        assert_eq!(config.library().rules().name, "AIST STP2");
        // Builders chain in any order.
        let chained = FlowConfig::fast()
            .with_process(Process::MitLl)
            .with_placer(PlacerKind::GordianBased)
            .with_threads(2);
        assert_eq!(chained.process, Process::MitLl);
        assert_eq!(chained.placer, PlacerKind::GordianBased);
        assert_eq!(chained.threads(), 2);
    }

    #[test]
    fn with_threads_reaches_every_parallel_stage() {
        let config = FlowConfig::default().with_threads(3);
        assert_eq!(config.threads(), 3);
        assert_eq!(config.router.threads, 3);
        assert_eq!(config.placement.detailed.threads, 3);
        // Default is auto (0): use every available core.
        assert_eq!(FlowConfig::default().threads(), 0);
        assert_eq!(FlowConfig::default().placement.detailed.threads, 0);
    }

    #[test]
    fn library_matches_process() {
        let stp2 = FlowConfig { process: Process::Stp2, ..FlowConfig::default() };
        assert_eq!(stp2.library().rules().name, "AIST STP2");
        assert_eq!(FlowConfig::default().library().rules().name, "MIT-LL SQF5ee");
    }
}
