//! `superflow` command-line interface.
//!
//! Runs the RTL-to-GDS flow on a structural-Verilog or BLIF file, or on one
//! of the built-in benchmark circuits, and writes the resulting GDSII (and
//! optionally an SVG rendering, a JSON report, or a resumable stage
//! checkpoint). The `tech` subcommand inspects and dumps the technology
//! (PDK) descriptions the flow can target.
//!
//! ```text
//! superflow [OPTIONS] <input>
//!
//!   <input>                 path to a .v / .sv / .blif file, or a benchmark
//!                           name (adder8, apc32, apc128, decoder, sorter32,
//!                            c432, c499, c1355, c1908)
//!   --placer <name>         superflow | gordian | taas        [superflow]
//!   --tech <name|file>      technology to target: a built-in name
//!                           (mit-ll-sqf5ee, aist-stp2) or a technology
//!                           file (.toml, or .json)            [mit-ll-sqf5ee]
//!   --process <name>        mit-ll | stp2 — legacy alias for the built-in
//!                           technologies
//!   --threads <n>           worker threads for parallel stages; 0 = all
//!                           cores                             [0]
//!   --stop-after <stage>    stop after synthesis | placement | routing |
//!                           check and (with --report) write that stage's
//!                           resumable JSON checkpoint instead of a GDS
//!   --report <file.json>    write the full flow report — or, with
//!                           --stop-after, the stage checkpoint — as JSON
//!   --output <file.gds>     GDSII output path                 [<design>.gds]
//!   --svg <file.svg>        also write an SVG rendering
//!   --fast                  use the reduced-effort placement configuration
//!   --verify                gate every stage boundary with the post-stage
//!                           verifiers (LEC, phase-legality, LVS-lite)
//!   --fanout-threshold <n>  fan-out above which the pre-flight lint rule
//!                           AQFP-W009 fires
//!   --quiet                 print only the one-line summary
//!
//! superflow batch [OPTIONS] <input>...
//!
//!   runs many designs through the flow on a pool of worker threads with a
//!   fault boundary around each design (panic isolation, per-stage
//!   deadlines, degraded retry, crash-safe journaling — see the
//!   superflow::batch module docs).
//!
//!   --workers <n>           designs in flight at once; 0 = all cores [0]
//!   --stage-timeout <s>     per-stage wall-clock ceiling in seconds. When
//!                           the predictive cost model has a forecast for a
//!                           design, each stage's deadline is scaled from
//!                           its predicted cost, clamped between 10% of
//!                           this value (floor) and this value (ceiling);
//!                           designs without a forecast get the flat value
//!   --no-predict            skip the predictive pass: submission order and
//!                           flat per-stage deadlines
//!   --no-retry              skip the degraded retry of failed designs
//!   --journal <dir>         stage-checkpoint directory; re-running with the
//!                           same journal resumes each design from its last
//!                           completed stage
//!   --output-dir <dir>      write each design's final GDS here
//!   --report <file.json>    write the structured batch report as JSON
//!   --fault <k:d:s>         inject a deterministic fault (testing):
//!                           panic|deadline|truncate|corrupt : design : stage
//!   plus --placer/--tech/--process/--threads/--fast/--verify/
//!   --fanout-threshold/--quiet as above
//!
//! superflow lint [OPTIONS] <input>...
//!
//!   runs the pre-flight static-analysis rules (the same gate the flow and
//!   the batch driver apply before any stage engine) over one or more
//!   designs without running the flow. Inputs parse leniently, so every
//!   undriven net is reported with its source span instead of failing at
//!   the first.
//!
//!   --tech/--process        technology to lint against, as above
//!   --format <text|json>    output format                     [text]
//!   --deny <rule>           treat a rule (or `all`) as an error; repeatable
//!   --warn <rule>           demote a rule (or `all`) to a warning; repeatable
//!   --allow <rule>          suppress a rule (or `all`); repeatable
//!   --fanout-threshold <n>  fan-out above which AQFP-W009 fires
//!   --rules                 print the rule catalog and exit
//!
//!   exits 0 when every design is clean or has only warnings, 1 when any
//!   design has error-severity findings or fails to load, 2 on usage
//!   errors.
//!
//! superflow predict [OPTIONS] <input>...
//!
//!   runs the predictive feasibility analysis over one or more designs
//!   without running any stage engine: phase-depth intervals, splitter and
//!   buffer bounds, a die-size and row estimate, a channel-congestion
//!   forecast and a calibrated per-stage cost model. Findings carry stable
//!   AQFP-P0xx rule ids and also fire inside `superflow lint` and the
//!   flow/batch pre-flight gate.
//!
//!   --tech/--process        technology to predict against, as above
//!   --format <text|json>    output format; json includes the numeric
//!                           bounds and the cost forecast         [text]
//!   --deny <rule>           treat a rule (or `all`) as an error; repeatable
//!   --warn <rule>           demote a rule (or `all`) to a warning; repeatable
//!   --allow <rule>          suppress a rule (or `all`); repeatable
//!   --rules                 print the prediction rule catalog and exit
//!
//!   exits 0 when every design is predicted feasible (warnings allowed),
//!   1 when any design has error-severity findings or fails to load, 2 on
//!   usage errors.
//!
//! superflow verify [OPTIONS] <artifact>...
//!
//!   re-checks finished flow outputs from first principles: logic
//!   equivalence between input and synthesized netlists (LEC),
//!   phase-legality of the placed/routed design, and LVS-lite extraction
//!   of the GDS byte stream against the routed netlist. Each artifact is
//!   either a `.gds` layout (the flow is re-run on the matching input and
//!   the committed bytes are checked against the re-derived design) or a
//!   `.json` stage checkpoint written by `--stop-after`/`--journal` (the
//!   verifiers applicable to that stage run directly on it).
//!
//!   --tech/--process        technology to verify under, as above
//!   --fast                  re-derive with the reduced-effort placement
//!                           configuration (must match how the artifact
//!                           was produced)
//!   --threads <n>           worker threads for the re-derivation     [0]
//!   --against <input>       the original design input (file, benchmark
//!                           name or gen: spec) for LEC; defaults to the
//!                           artifact's design name / file stem
//!   --format <text|json>    output format                         [text]
//!   --inject-defect <kind>  corrupt one wire | cell | phase before
//!                           verifying, to prove the defect is caught
//!   --rules                 print the verification rule catalog and exit
//!
//!   exits 0 when every artifact verifies clean, 1 when any artifact has
//!   findings or fails to load, 2 on usage errors.
//!
//! superflow generate <family> [OPTIONS]
//!
//!   emits a parameterized large design (tiled_mul, apc_array, random_dag)
//!   as a netlist file — the same generators the flow reaches directly via
//!   `gen:<family>:<cells>[:<seed>]` input specs — for scale testing with
//!   external tools or committed fixtures.
//!
//!   --cells <n>             requested gate count (the generator rounds to
//!                           its tiling)                        [10000]
//!   --seed <n>              PRNG seed (random_dag only)        [0]
//!   --output <file>, -o     output path; `.blif` selects BLIF, anything
//!                           else structural Verilog        [stdout, Verilog]
//!
//! superflow tech list [--quiet]     list known technologies (--quiet:
//!                                   names only, one per line)
//! superflow tech show <name|file>   validate a technology and print its
//!                                   summary
//! superflow tech dump <name> [--output <file>]
//!                                   write a built-in technology as an
//!                                   editable TOML file (stdout by default)
//! ```
//!
//! Exit codes: 0 success, 1 flow error, 2 usage error, 3 partial batch
//! failure (the batch completed, but at least one design failed — including
//! designs rejected by the pre-flight lint stage, which the batch report
//! distinguishes from runtime failures).

#![warn(clippy::unwrap_used)]

use std::process::ExitCode;

use aqfp_cells::{EnergyModel, Technology, TechnologyRegistry};
use aqfp_layout::{render_svg, DrcReport, SvgOptions};
use aqfp_netlist::generators::LargeFamily;
use aqfp_netlist::Netlist;
use aqfp_place::PlacerKind;
use superflow::verify::{mutate, Defect};
use superflow::{
    error_chain, BatchConfig, BatchJob, BatchRunner, Checked, Fault, FaultPlan, Flow, FlowConfig,
    FlowObserver, FlowReport, FlowSession, FlowStage, LintConfig, Placed, RepairScope, Routed,
    Synthesized, TechSpec, VerifyConfig, VerifyReport,
};

/// Exit code for usage errors (bad flags, malformed specs).
const EXIT_USAGE: u8 = 2;
/// Exit code for a batch that completed but classified at least one design
/// as failed.
const EXIT_PARTIAL_FAILURE: u8 = 3;

#[derive(Debug)]
struct CliOptions {
    input: String,
    placer: PlacerKind,
    tech: Option<String>,
    threads: Option<usize>,
    stop_after: Option<FlowStage>,
    report: Option<String>,
    output: Option<String>,
    svg: Option<String>,
    fast: bool,
    verify: bool,
    fanout_threshold: Option<usize>,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        input: String::new(),
        placer: PlacerKind::SuperFlow,
        tech: None,
        threads: None,
        stop_after: None,
        report: None,
        output: None,
        svg: None,
        fast: false,
        verify: false,
        fanout_threshold: None,
        quiet: false,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--placer" => {
                let value = iter.next().ok_or("--placer needs a value")?;
                options.placer = match value.as_str() {
                    "superflow" => PlacerKind::SuperFlow,
                    "gordian" => PlacerKind::GordianBased,
                    "taas" => PlacerKind::Taas,
                    other => return Err(format!("unknown placer `{other}`")),
                };
            }
            "--tech" => {
                let value = iter.next().ok_or("--tech needs a value")?;
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(value.clone());
            }
            "--process" => {
                let value = iter.next().ok_or("--process needs a value")?;
                let name = match value.as_str() {
                    "mit-ll" | "mitll" => aqfp_cells::MIT_LL_SQF5EE,
                    "stp2" => aqfp_cells::AIST_STP2,
                    other => return Err(format!("unknown process `{other}`")),
                };
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(name.to_owned());
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads needs a value")?;
                options.threads = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("--threads needs a number, got `{value}`"))?,
                );
            }
            "--stop-after" => {
                let value = iter.next().ok_or("--stop-after needs a value")?;
                options.stop_after = Some(match value.as_str() {
                    "synthesis" | "synth" => FlowStage::Synthesis,
                    "placement" | "place" => FlowStage::Placement,
                    "routing" | "route" => FlowStage::Routing,
                    "check" | "drc" => FlowStage::Check,
                    other => return Err(format!("unknown stage `{other}`")),
                });
            }
            "--report" => {
                options.report = Some(iter.next().ok_or("--report needs a value")?.clone())
            }
            "--output" => {
                options.output = Some(iter.next().ok_or("--output needs a value")?.clone())
            }
            "--svg" => options.svg = Some(iter.next().ok_or("--svg needs a value")?.clone()),
            "--fast" => options.fast = true,
            "--verify" => options.verify = true,
            "--fanout-threshold" => {
                let value = iter.next().ok_or("--fanout-threshold needs a value")?;
                options.fanout_threshold =
                    Some(value.parse::<usize>().map_err(|_| {
                        format!("--fanout-threshold needs a number, got `{value}`")
                    })?);
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if !options.input.is_empty() {
                    return Err("more than one input given".to_owned());
                }
                options.input = other.to_owned();
            }
        }
    }
    if options.input.is_empty() {
        return Err("no input given".to_owned());
    }
    if options.stop_after.is_some() && (options.output.is_some() || options.svg.is_some()) {
        return Err("--output/--svg write final layout artifacts, which --stop-after skips; \
             drop --stop-after (or use --report to keep that stage's checkpoint)"
            .to_owned());
    }
    Ok(options)
}

fn usage() -> &'static str {
    "usage: superflow [--placer superflow|gordian|taas] [--tech name|file.toml] \
     [--process mit-ll|stp2] [--threads n] \
     [--stop-after synthesis|placement|routing|check] [--report out.json] \
     [--output out.gds] [--svg out.svg] [--fast] [--verify] \
     [--fanout-threshold n] [--quiet] \
     <input.v|input.sv|input.blif|benchmark>\n\
     \x20      superflow batch [--workers n] [--stage-timeout seconds] [--no-predict] \
     [--no-retry] [--journal dir] [--output-dir dir] [--report out.json] \
     [--fault panic|deadline|truncate|corrupt:design:stage] [flow options] <input>...\n\
     \x20      superflow lint [--tech name|file.toml] [--process mit-ll|stp2] \
     [--format text|json] [--deny rule] [--warn rule] [--allow rule] \
     [--fanout-threshold n] [--rules] <input>...\n\
     \x20      superflow predict [--tech name|file.toml] [--process mit-ll|stp2] \
     [--format text|json] [--deny rule] [--warn rule] [--allow rule] \
     [--rules] <input>...\n\
     \x20      superflow verify [--tech name|file.toml] [--process mit-ll|stp2] \
     [--fast] [--threads n] [--against input] [--format text|json] \
     [--inject-defect wire|cell|phase] [--rules] <artifact.gds|checkpoint.json>...\n\
     \x20      superflow generate tiled_mul|apc_array|random_dag [--cells n] \
     [--seed n] [--output file.v|-o file.v]\n\
     \x20      superflow tech list [--quiet]\n\
     \x20      superflow tech show <name|file>\n\
     \x20      superflow tech dump <name> [--output file.toml]"
}

/// Interprets a `--tech` value: a known registry name (or one of the
/// legacy `--process` aliases) resolves to the built-in; anything that
/// looks like a path — it contains a separator or an extension dot — is a
/// technology file. A bare name that matches nothing still resolves as
/// `Builtin`, so the error lists the available registry names instead of a
/// confusing missing-file message.
fn tech_spec(value: &str) -> TechSpec {
    if TechnologyRegistry::global().get(value).is_some() {
        return TechSpec::builtin(value);
    }
    match value {
        "mit-ll" | "mitll" => TechSpec::builtin(aqfp_cells::MIT_LL_SQF5EE),
        "stp2" => TechSpec::builtin(aqfp_cells::AIST_STP2),
        _ if !value.contains(['/', '\\', '.']) => TechSpec::builtin(value),
        _ => TechSpec::file(value),
    }
}

/// The flow configuration the command line selects, assembled through the
/// `FlowConfig` builders.
fn build_config(options: &CliOptions) -> FlowConfig {
    let config = if options.fast { FlowConfig::fast() } else { FlowConfig::paper_default() };
    let config = match &options.tech {
        Some(value) => config.with_tech(tech_spec(value)),
        None => config,
    };
    let config = config.with_placer(options.placer);
    let config = match options.threads {
        Some(threads) => config.with_threads(threads),
        None => config,
    };
    let mut config = if options.verify {
        config.with_verify(VerifyConfig { enabled: true, ..VerifyConfig::default() })
    } else {
        config
    };
    if let Some(threshold) = options.fanout_threshold {
        config.lint.fanout_threshold = Some(threshold);
    }
    config
}

/// Loads the input netlist through the shared [`superflow::input`] loader
/// (benchmark names resolve to generated circuits, file paths dispatch on
/// their extension), rendering errors with their full source chain.
fn load_netlist(input: &str) -> Result<Netlist, String> {
    superflow::load_netlist(input).map_err(|e| error_chain(&e))
}

/// Prints stage progress unless `--quiet` is given.
struct StageLog;

impl FlowObserver for StageLog {
    fn stage_finished(&mut self, stage: FlowStage, elapsed_s: f64) {
        println!("[{:<9}] finished in {elapsed_s:.2}s", stage.name());
    }

    fn drc_iteration(&mut self, iteration: usize, report: &DrcReport, scope: RepairScope<'_>) {
        println!(
            "[{:<9}] repair iteration {iteration}: {} violation(s), {scope}",
            "check",
            report.violations.len(),
        );
    }
}

/// What a CLI invocation produced.
enum Outcome {
    /// The whole pipeline ran.
    Complete(Box<FlowReport>),
    /// `--stop-after` ended the run early; the checkpoint JSON is only
    /// rendered when `--report` asks for it.
    Stopped { stage: FlowStage, summary: String, checkpoint: Option<String> },
}

fn run(options: &CliOptions) -> Result<Outcome, String> {
    let netlist = load_netlist(&options.input)?;
    let flow = Flow::with_config(build_config(options));
    let mut session = flow.session().map_err(|e| error_chain(&e))?;
    if !options.quiet {
        println!(
            "[{:<9}] technology {} ({})",
            "tech",
            session.technology().name,
            session.config().tech.describe()
        );
        session.add_observer(Box::new(StageLog));
    }
    let want_checkpoint = options.report.is_some();
    let checkpoint_of =
        |json: Result<String, superflow::FlowError>| json.map_err(|e| error_chain(&e)).map(Some);

    let synthesized = session.synthesize(&netlist).map_err(|e| error_chain(&e))?;
    if options.stop_after == Some(FlowStage::Synthesis) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Synthesis,
            summary: format!(
                "{}: {} JJs / {} nets / {} phases after synthesis",
                synthesized.design_name,
                synthesized.stats().jj_count,
                synthesized.stats().net_count,
                synthesized.stats().delay
            ),
            checkpoint: if want_checkpoint { checkpoint_of(synthesized.to_json())? } else { None },
        });
    }

    let placed = session.place(synthesized).map_err(|e| error_chain(&e))?;
    if options.stop_after == Some(FlowStage::Placement) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Placement,
            summary: format!(
                "{}: HPWL {:.0} µm, {} buffer lines, WNS {}",
                placed.synthesized.design_name,
                placed.placement.hpwl_um,
                placed.placement.buffer_lines,
                placed.placement.wns_display()
            ),
            checkpoint: if want_checkpoint { checkpoint_of(placed.to_json())? } else { None },
        });
    }

    let routed = session.route(placed).map_err(|e| error_chain(&e))?;
    if options.stop_after == Some(FlowStage::Routing) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Routing,
            summary: format!(
                "{}: routed {} nets, {:.0} µm, {} vias",
                routed.placed.synthesized.design_name,
                routed.routing.stats.nets_routed,
                routed.routing.stats.total_wirelength_um,
                routed.routing.stats.total_vias
            ),
            checkpoint: if want_checkpoint { checkpoint_of(routed.to_json())? } else { None },
        });
    }

    let checked = session.check(routed).map_err(|e| error_chain(&e))?;
    if options.stop_after == Some(FlowStage::Check) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Check,
            summary: format!(
                "{}: DRC {} after {} repair iteration(s)",
                checked.routed.placed.synthesized.design_name,
                if checked.drc.is_clean() {
                    "clean".to_owned()
                } else {
                    format!("{} violations", checked.drc.violations.len())
                },
                checked.drc_iterations
            ),
            checkpoint: if want_checkpoint { checkpoint_of(checked.to_json())? } else { None },
        });
    }

    Ok(Outcome::Complete(Box::new(session.finish(checked))))
}

// ---------------------------------------------------------------------------
// `superflow batch` subcommand
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct BatchCliOptions {
    inputs: Vec<String>,
    placer: PlacerKind,
    tech: Option<String>,
    threads: Option<usize>,
    workers: usize,
    stage_timeout_s: Option<f64>,
    predict: bool,
    retry: bool,
    journal: Option<String>,
    output_dir: Option<String>,
    report: Option<String>,
    faults: Vec<Fault>,
    fast: bool,
    verify: bool,
    fanout_threshold: Option<usize>,
    quiet: bool,
}

fn parse_batch_args(args: &[String]) -> Result<BatchCliOptions, String> {
    let mut options = BatchCliOptions {
        inputs: Vec::new(),
        placer: PlacerKind::SuperFlow,
        tech: None,
        threads: None,
        workers: 0,
        stage_timeout_s: None,
        predict: true,
        retry: true,
        journal: None,
        output_dir: None,
        report: None,
        faults: Vec::new(),
        fast: false,
        verify: false,
        fanout_threshold: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--placer" => {
                let value = iter.next().ok_or("--placer needs a value")?;
                options.placer = match value.as_str() {
                    "superflow" => PlacerKind::SuperFlow,
                    "gordian" => PlacerKind::GordianBased,
                    "taas" => PlacerKind::Taas,
                    other => return Err(format!("unknown placer `{other}`")),
                };
            }
            "--tech" => {
                let value = iter.next().ok_or("--tech needs a value")?;
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(value.clone());
            }
            "--process" => {
                let value = iter.next().ok_or("--process needs a value")?;
                let name = match value.as_str() {
                    "mit-ll" | "mitll" => aqfp_cells::MIT_LL_SQF5EE,
                    "stp2" => aqfp_cells::AIST_STP2,
                    other => return Err(format!("unknown process `{other}`")),
                };
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(name.to_owned());
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads needs a value")?;
                options.threads = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("--threads needs a number, got `{value}`"))?,
                );
            }
            "--workers" => {
                let value = iter.next().ok_or("--workers needs a value")?;
                options.workers = value
                    .parse::<usize>()
                    .map_err(|_| format!("--workers needs a number, got `{value}`"))?;
            }
            "--stage-timeout" => {
                let value = iter.next().ok_or("--stage-timeout needs a value")?;
                let seconds = value.parse::<f64>().map_err(|_| {
                    format!("--stage-timeout needs a number of seconds, got `{value}`")
                })?;
                if !seconds.is_finite() || seconds < 0.0 {
                    return Err(format!(
                        "--stage-timeout needs a non-negative finite number, got `{value}`"
                    ));
                }
                options.stage_timeout_s = Some(seconds);
            }
            "--no-predict" => options.predict = false,
            "--no-retry" => options.retry = false,
            "--journal" => {
                options.journal = Some(iter.next().ok_or("--journal needs a value")?.clone())
            }
            "--output-dir" => {
                options.output_dir = Some(iter.next().ok_or("--output-dir needs a value")?.clone())
            }
            "--report" => {
                options.report = Some(iter.next().ok_or("--report needs a value")?.clone())
            }
            "--fault" => {
                let value = iter.next().ok_or("--fault needs a value")?;
                options.faults.push(Fault::parse(value)?);
            }
            "--fast" => options.fast = true,
            "--verify" => options.verify = true,
            "--fanout-threshold" => {
                let value = iter.next().ok_or("--fanout-threshold needs a value")?;
                options.fanout_threshold =
                    Some(value.parse::<usize>().map_err(|_| {
                        format!("--fanout-threshold needs a number, got `{value}`")
                    })?);
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown batch option `{other}`"))
            }
            other => options.inputs.push(other.to_owned()),
        }
    }
    if options.inputs.is_empty() {
        return Err("batch needs at least one input".to_owned());
    }
    let mut names: Vec<String> = Vec::new();
    for input in &options.inputs {
        let name = BatchJob::from_input(input).name;
        if names.contains(&name) {
            return Err(format!(
                "two batch inputs reduce to the design name `{name}`; journals and GDS outputs \
                 are keyed by name, so each design needs a distinct one"
            ));
        }
        names.push(name);
    }
    Ok(options)
}

/// The batch configuration a `superflow batch` command line selects.
fn build_batch_config(options: &BatchCliOptions) -> BatchConfig {
    let flow = if options.fast { FlowConfig::fast() } else { FlowConfig::paper_default() };
    let flow = match &options.tech {
        Some(value) => flow.with_tech(tech_spec(value)),
        None => flow,
    };
    let flow = flow.with_placer(options.placer);
    let flow = match options.threads {
        Some(threads) => flow.with_threads(threads),
        None => flow,
    };
    let mut flow = if options.verify {
        flow.with_verify(VerifyConfig { enabled: true, ..VerifyConfig::default() })
    } else {
        flow
    };
    if let Some(threshold) = options.fanout_threshold {
        flow.lint.fanout_threshold = Some(threshold);
    }
    let mut config = BatchConfig::new(flow)
        .with_workers(options.workers)
        .with_retry_degraded(options.retry)
        .with_predict(options.predict)
        .with_faults(FaultPlan { faults: options.faults.clone() });
    if let Some(seconds) = options.stage_timeout_s {
        config = config.with_stage_timeout_s(seconds);
    }
    if let Some(dir) = &options.journal {
        config = config.with_journal_dir(dir);
    }
    if let Some(dir) = &options.output_dir {
        config = config.with_output_dir(dir);
    }
    config
}

fn run_batch_cli(args: &[String]) -> ExitCode {
    let options = match parse_batch_args(args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let jobs: Vec<BatchJob> = options.inputs.iter().map(BatchJob::from_input).collect();
    let runner = BatchRunner::new(build_batch_config(&options));
    let report = match runner.run(&jobs) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {}", error_chain(&e));
            return ExitCode::FAILURE;
        }
    };
    if options.quiet {
        // First line of the render is the one-line summary.
        println!("{}", report.render().lines().next().unwrap_or_default());
    } else {
        print!("{}", report.render());
    }
    if let Some(path) = &options.report {
        let json = match report.to_json() {
            Ok(json) => json,
            Err(e) => {
                eprintln!("error: {}", error_chain(&e));
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        if !options.quiet {
            println!("batch report written to {path}");
        }
    }
    if report.failed() > 0 {
        ExitCode::from(EXIT_PARTIAL_FAILURE)
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// `superflow lint` subcommand
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct LintCliOptions {
    inputs: Vec<String>,
    tech: Option<String>,
    json: bool,
    lint: LintConfig,
    rules: bool,
}

fn parse_lint_args(args: &[String]) -> Result<LintCliOptions, String> {
    let mut options = LintCliOptions {
        inputs: Vec::new(),
        tech: None,
        json: false,
        lint: LintConfig::default(),
        rules: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tech" => {
                let value = iter.next().ok_or("--tech needs a value")?;
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(value.clone());
            }
            "--process" => {
                let value = iter.next().ok_or("--process needs a value")?;
                let name = match value.as_str() {
                    "mit-ll" | "mitll" => aqfp_cells::MIT_LL_SQF5EE,
                    "stp2" => aqfp_cells::AIST_STP2,
                    other => return Err(format!("unknown process `{other}`")),
                };
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(name.to_owned());
            }
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                options.json = match value.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown lint format `{other}`")),
                };
            }
            "--deny" => {
                options.lint.deny.push(iter.next().ok_or("--deny needs a rule id")?.clone())
            }
            "--warn" => {
                options.lint.warn.push(iter.next().ok_or("--warn needs a rule id")?.clone())
            }
            "--allow" => {
                options.lint.allow.push(iter.next().ok_or("--allow needs a rule id")?.clone())
            }
            "--fanout-threshold" => {
                let value = iter.next().ok_or("--fanout-threshold needs a value")?;
                options.lint.fanout_threshold =
                    Some(value.parse::<usize>().map_err(|_| {
                        format!("--fanout-threshold needs a number, got `{value}`")
                    })?);
            }
            "--rules" => options.rules = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown lint option `{other}`"))
            }
            other => options.inputs.push(other.to_owned()),
        }
    }
    if options.inputs.is_empty() && !options.rules {
        return Err("lint needs at least one input (or --rules)".to_owned());
    }
    Ok(options)
}

/// The rule catalog table `superflow lint --rules` prints.
fn render_rule_catalog() -> String {
    let mut out = String::from("rule       default  summary\n");
    for info in superflow::lint::catalog() {
        out.push_str(&format!("{:<10} {:<8} {}\n", info.id, info.severity.keyword(), info.summary));
    }
    out.trim_end().to_owned()
}

fn run_lint_cli(args: &[String]) -> ExitCode {
    let options = match parse_lint_args(args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if options.rules {
        println!("{}", render_rule_catalog());
        return ExitCode::SUCCESS;
    }
    let flow = match &options.tech {
        Some(value) => FlowConfig::paper_default().with_tech(tech_spec(value)),
        None => FlowConfig::paper_default(),
    }
    .with_lint(options.lint);
    let technology = match flow.resolve_technology() {
        Ok(technology) => technology,
        Err(e) => {
            eprintln!("error: {}", error_chain(&e));
            return ExitCode::FAILURE;
        }
    };
    let mut reports = Vec::new();
    let mut failed = false;
    for input in &options.inputs {
        // Lenient loading: undriven nets become AQFP-E002 findings with
        // their source spans instead of a parse error at the first one.
        match superflow::load_design(input) {
            Ok(design) => {
                let name = superflow::input::design_name(input);
                // The shared pre-flight gate: structural lint rules plus
                // the predictive AQFP-P0xx feasibility rules.
                let report = superflow::lint_design(&name, &design.netlist, &technology, &flow);
                failed |= report.has_errors();
                reports.push(report);
            }
            Err(e) => {
                failed = true;
                eprintln!("error: `{input}`: {}", error_chain(&e));
            }
        }
    }
    if options.json {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: cannot serialize lint reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for report in &reports {
            print!("{}", report.render());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// `superflow predict` subcommand
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PredictCliOptions {
    inputs: Vec<String>,
    tech: Option<String>,
    json: bool,
    lint: LintConfig,
    rules: bool,
}

fn parse_predict_args(args: &[String]) -> Result<PredictCliOptions, String> {
    let mut options = PredictCliOptions {
        inputs: Vec::new(),
        tech: None,
        json: false,
        lint: LintConfig::default(),
        rules: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tech" => {
                let value = iter.next().ok_or("--tech needs a value")?;
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(value.clone());
            }
            "--process" => {
                let value = iter.next().ok_or("--process needs a value")?;
                let name = match value.as_str() {
                    "mit-ll" | "mitll" => aqfp_cells::MIT_LL_SQF5EE,
                    "stp2" => aqfp_cells::AIST_STP2,
                    other => return Err(format!("unknown process `{other}`")),
                };
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(name.to_owned());
            }
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                options.json = match value.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown predict format `{other}`")),
                };
            }
            "--deny" => {
                options.lint.deny.push(iter.next().ok_or("--deny needs a rule id")?.clone())
            }
            "--warn" => {
                options.lint.warn.push(iter.next().ok_or("--warn needs a rule id")?.clone())
            }
            "--allow" => {
                options.lint.allow.push(iter.next().ok_or("--allow needs a rule id")?.clone())
            }
            "--rules" => options.rules = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown predict option `{other}`"))
            }
            other => options.inputs.push(other.to_owned()),
        }
    }
    if options.inputs.is_empty() && !options.rules {
        return Err("predict needs at least one input (or --rules)".to_owned());
    }
    Ok(options)
}

/// The rule catalog table `superflow predict --rules` prints.
fn render_predict_rule_catalog() -> String {
    let mut out = String::from("rule       default  summary\n");
    for info in superflow::predict::catalog() {
        out.push_str(&format!("{:<10} {:<8} {}\n", info.id, info.severity.keyword(), info.summary));
    }
    out.trim_end().to_owned()
}

/// Runs the predictive analysis on one input: the design loads leniently
/// (so a netlist with undriven nets still gets its feasibility forecast),
/// and the prediction itself never runs a stage engine.
fn predict_one(
    input: &str,
    technology: &Technology,
    flow: &FlowConfig,
) -> Result<superflow::PredictReport, String> {
    let design = superflow::load_design(input).map_err(|e| error_chain(&e))?;
    let name = superflow::input::design_name(input);
    Ok(superflow::predict::predict(&name, &design.netlist, technology, &flow.predict_options()))
}

fn run_predict_cli(args: &[String]) -> ExitCode {
    let options = match parse_predict_args(args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if options.rules {
        println!("{}", render_predict_rule_catalog());
        return ExitCode::SUCCESS;
    }
    let flow = match &options.tech {
        Some(value) => FlowConfig::paper_default().with_tech(tech_spec(value)),
        None => FlowConfig::paper_default(),
    }
    .with_lint(options.lint);
    let technology = match flow.resolve_technology() {
        Ok(technology) => technology,
        Err(e) => {
            eprintln!("error: {}", error_chain(&e));
            return ExitCode::FAILURE;
        }
    };
    let mut reports = Vec::new();
    let mut failed = false;
    for input in &options.inputs {
        match predict_one(input, &technology, &flow) {
            Ok(report) => {
                failed |= report.has_errors();
                reports.push(report);
            }
            Err(message) => {
                failed = true;
                eprintln!("error: `{input}`: {message}");
            }
        }
    }
    if options.json {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: cannot serialize predict reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for report in &reports {
            print!("{}", report.render());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// `superflow verify` subcommand
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct VerifyCliOptions {
    inputs: Vec<String>,
    tech: Option<String>,
    threads: Option<usize>,
    fast: bool,
    json: bool,
    against: Option<String>,
    inject: Option<Defect>,
    rules: bool,
}

fn parse_verify_args(args: &[String]) -> Result<VerifyCliOptions, String> {
    let mut options = VerifyCliOptions {
        inputs: Vec::new(),
        tech: None,
        threads: None,
        fast: false,
        json: false,
        against: None,
        inject: None,
        rules: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tech" => {
                let value = iter.next().ok_or("--tech needs a value")?;
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(value.clone());
            }
            "--process" => {
                let value = iter.next().ok_or("--process needs a value")?;
                let name = match value.as_str() {
                    "mit-ll" | "mitll" => aqfp_cells::MIT_LL_SQF5EE,
                    "stp2" => aqfp_cells::AIST_STP2,
                    other => return Err(format!("unknown process `{other}`")),
                };
                if options.tech.is_some() {
                    return Err("--tech/--process given more than once".to_owned());
                }
                options.tech = Some(name.to_owned());
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads needs a value")?;
                options.threads = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("--threads needs a number, got `{value}`"))?,
                );
            }
            "--fast" => options.fast = true,
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                options.json = match value.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown verify format `{other}`")),
                };
            }
            "--against" => {
                let value = iter.next().ok_or("--against needs a value")?;
                if options.against.is_some() {
                    return Err("--against given more than once".to_owned());
                }
                options.against = Some(value.clone());
            }
            "--inject-defect" => {
                let value = iter.next().ok_or("--inject-defect needs a value")?;
                options.inject = Some(Defect::parse(value).ok_or_else(|| {
                    format!("unknown defect `{value}` (available: wire, cell, phase)")
                })?);
            }
            "--rules" => options.rules = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown verify option `{other}`"))
            }
            other => options.inputs.push(other.to_owned()),
        }
    }
    if options.inputs.is_empty() && !options.rules {
        return Err("verify needs at least one artifact (or --rules)".to_owned());
    }
    Ok(options)
}

/// The rule catalog table `superflow verify --rules` prints.
fn render_verify_rule_catalog() -> String {
    let mut out = String::from("rule       default  summary\n");
    for info in superflow::verify::catalog() {
        out.push_str(&format!("{:<10} {:<8} {}\n", info.id, info.severity.keyword(), info.summary));
    }
    out.trim_end().to_owned()
}

/// The flow configuration a `superflow verify` command line re-derives
/// artifacts under. The per-stage verify gates stay off: the subcommand
/// runs the verifiers itself, on the final artifacts.
fn build_verify_config(options: &VerifyCliOptions) -> FlowConfig {
    let config = if options.fast { FlowConfig::fast() } else { FlowConfig::paper_default() };
    let config = match &options.tech {
        Some(value) => config.with_tech(tech_spec(value)),
        None => config,
    };
    match options.threads {
        Some(threads) => config.with_threads(threads),
        None => config,
    }
}

/// Fails verification up front when an artifact was produced under a
/// different technology than the session targets — comparing across
/// processes would produce nonsense findings, not a useful report.
fn ensure_artifact_technology(
    session: &FlowSession,
    found: &str,
    input: &str,
) -> Result<(), String> {
    if session.tech_fingerprint() == found {
        Ok(())
    } else {
        Err(format!(
            "technology mismatch: the session targets `{}`, but `{input}` was produced under \
             `{found}`; pass the matching --tech/--process",
            session.tech_fingerprint()
        ))
    }
}

/// Injects one deliberate defect into a routed (or later) artifact, so a
/// subsequent verification run must report it. Returns a human-readable
/// description of what was damaged.
fn inject_routed_defect(defect: Defect, routed: &mut Routed) -> Result<String, String> {
    let note = match defect {
        Defect::Phase => mutate::corrupt_design_phase(&mut routed.placed.placement.design)
            .map(|net| format!("repointed a sink of net n{net} two phases past its driver")),
        Defect::Cell => mutate::corrupt_design_cell(&mut routed.placed.placement.design)
            .map(|cell| format!("nudged cell `{cell}` half a micron off its placement site")),
        Defect::Wire => mutate::corrupt_routing(&mut routed.routing)
            .map(|net| format!("dropped one routed segment of net n{net}")),
    };
    note.ok_or_else(|| format!("the design is too small to inject a {} defect", defect.name()))
}

/// Resolves the original input netlist for LEC: `--against` when given,
/// otherwise the design name (which resolves for benchmark circuits but not
/// for generated or file-based designs). `required` turns an unresolvable
/// input into an error instead of a skipped check.
fn lec_input(
    options: &VerifyCliOptions,
    design_name: &str,
    required: bool,
) -> Result<Option<Netlist>, String> {
    match &options.against {
        Some(spec) => load_netlist(spec).map(Some).map_err(|e| format!("--against `{spec}`: {e}")),
        None => match superflow::load_netlist(design_name) {
            Ok(netlist) => Ok(Some(netlist)),
            Err(_) if !required => Ok(None),
            Err(_) => Err(format!(
                "cannot resolve the original input for `{design_name}` to run logic \
                 equivalence; pass --against <input>"
            )),
        },
    }
}

/// Verifies a committed `.gds` layout: re-runs the flow on the matching
/// input, then checks logic equivalence, phase-legality and an LVS-lite
/// comparison of the committed bytes against the re-derived design.
fn verify_gds_input(
    input: &str,
    options: &VerifyCliOptions,
    config: &FlowConfig,
) -> Result<VerifyReport, String> {
    let bytes = std::fs::read(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    let spec = match &options.against {
        Some(spec) => spec.clone(),
        None => std::path::Path::new(input)
            .file_stem()
            .and_then(|stem| stem.to_str())
            .map(str::to_owned)
            .ok_or_else(|| format!("cannot infer a design name from `{input}`"))?,
    };
    let netlist = load_netlist(&spec)?;
    let flow = Flow::with_config(config.clone());
    let mut session = flow.session().map_err(|e| error_chain(&e))?;
    let synthesized = session.synthesize(&netlist).map_err(|e| error_chain(&e))?;
    let placed = session.place(synthesized).map_err(|e| error_chain(&e))?;
    let routed = session.route(placed).map_err(|e| error_chain(&e))?;
    let mut checked = session.check(routed).map_err(|e| error_chain(&e))?;
    if let Some(defect) = options.inject {
        let note = inject_routed_defect(defect, &mut checked.routed)?;
        eprintln!("note: injected {} defect into `{input}`: {note}", defect.name());
    }
    let mut report = session.verify_synthesized(&netlist, &checked.routed.placed.synthesized);
    report.merge(session.verify_routed(&checked.routed));
    report.record_check("lvs");
    report.extend(superflow::verify::check_gds(
        &bytes,
        &checked.routed.placed.placement.design,
        &checked.routed.routing,
        session.technology().as_ref(),
    ));
    report.normalize();
    Ok(report)
}

/// Verifies a `.json` stage checkpoint with the verifiers applicable to its
/// stage: LEC for synthesis artifacts (and any later stage whose input
/// resolves), phase-legality from placement on, LVS-lite for checked
/// artifacts (which embed their layout).
fn verify_checkpoint_input(
    input: &str,
    options: &VerifyCliOptions,
    config: &FlowConfig,
) -> Result<VerifyReport, String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    let flow = Flow::with_config(config.clone());
    let session = flow.session().map_err(|e| error_chain(&e))?;

    if let Ok(mut checked) = Checked::from_json(&text) {
        ensure_artifact_technology(&session, checked.tech_fingerprint(), input)?;
        if let Some(defect) = options.inject {
            let note = inject_routed_defect(defect, &mut checked.routed)?;
            eprintln!("note: injected {} defect into `{input}`: {note}", defect.name());
        }
        let mut report = session.verify_checked(&checked);
        let name = checked.routed.placed.synthesized.design_name.clone();
        if let Some(netlist) = lec_input(options, &name, false)? {
            report.merge(session.verify_synthesized(&netlist, &checked.routed.placed.synthesized));
        }
        report.normalize();
        return Ok(report);
    }
    if let Ok(mut routed) = Routed::from_json(&text) {
        ensure_artifact_technology(&session, routed.tech_fingerprint(), input)?;
        if let Some(defect) = options.inject {
            let note = inject_routed_defect(defect, &mut routed)?;
            eprintln!("note: injected {} defect into `{input}`: {note}", defect.name());
        }
        let mut report = session.verify_routed(&routed);
        if let Some(netlist) = lec_input(options, &routed.placed.synthesized.design_name, false)? {
            report.merge(session.verify_synthesized(&netlist, &routed.placed.synthesized));
        }
        report.normalize();
        return Ok(report);
    }
    if let Ok(mut placed) = Placed::from_json(&text) {
        ensure_artifact_technology(&session, placed.tech_fingerprint(), input)?;
        if let Some(defect) = options.inject {
            let note = match defect {
                Defect::Phase => mutate::corrupt_design_phase(&mut placed.placement.design)
                    .map(|net| format!("repointed a sink of net n{net} two phases past its driver"))
                    .ok_or_else(|| "the design is too small to inject a phase defect".to_owned())?,
                other => {
                    return Err(format!(
                        "--inject-defect {} needs a routed artifact; `{input}` stops at placement",
                        other.name()
                    ))
                }
            };
            eprintln!("note: injected {} defect into `{input}`: {note}", defect.name());
        }
        let mut report = session.verify_placed(&placed);
        if let Some(netlist) = lec_input(options, &placed.synthesized.design_name, false)? {
            report.merge(session.verify_synthesized(&netlist, &placed.synthesized));
        }
        report.normalize();
        return Ok(report);
    }
    if let Ok(synthesized) = Synthesized::from_json(&text) {
        ensure_artifact_technology(&session, &synthesized.tech_fingerprint, input)?;
        if let Some(defect) = options.inject {
            return Err(format!(
                "--inject-defect {} needs a placed artifact; `{input}` stops at synthesis",
                defect.name()
            ));
        }
        // LEC is the only verifier that applies at this stage, so an
        // unresolvable input is an error: a report with no checks run
        // would read as a pass.
        let Some(netlist) = lec_input(options, &synthesized.design_name, true)? else {
            unreachable!("required lec_input returns Some or errors")
        };
        let mut report = session.verify_synthesized(&netlist, &synthesized);
        report.normalize();
        return Ok(report);
    }
    Err(format!(
        "`{input}` is not a stage checkpoint this version can read (expected the JSON written \
         by --stop-after/--journal for the synthesis, placement, routing or check stage)"
    ))
}

/// Dispatches one verify input on its extension.
fn verify_one(
    input: &str,
    options: &VerifyCliOptions,
    config: &FlowConfig,
) -> Result<VerifyReport, String> {
    if input.ends_with(".gds") {
        verify_gds_input(input, options, config)
    } else if input.ends_with(".json") {
        verify_checkpoint_input(input, options, config)
    } else {
        Err(format!("verify inputs are .gds layouts or .json stage checkpoints, got `{input}`"))
    }
}

fn run_verify_cli(args: &[String]) -> ExitCode {
    let options = match parse_verify_args(args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if options.rules {
        println!("{}", render_verify_rule_catalog());
        return ExitCode::SUCCESS;
    }
    let config = build_verify_config(&options);
    let mut reports = Vec::new();
    let mut failed = false;
    for input in &options.inputs {
        match verify_one(input, &options, &config) {
            Ok(report) => {
                failed |= report.has_errors();
                reports.push(report);
            }
            Err(message) => {
                failed = true;
                eprintln!("error: `{input}`: {message}");
            }
        }
    }
    if options.json {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: cannot serialize verify reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for report in &reports {
            print!("{}", report.render());
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// `superflow tech …` subcommands
// ---------------------------------------------------------------------------

/// The header `tech dump` prepends to the pure-TOML body; the parser treats
/// it as comments, so a dumped file loads back unchanged.
fn dump_header(technology: &Technology) -> String {
    format!(
        "# SuperFlow technology description — dumped from `{}`.\n\
         # Edit any value and pass the file back with `superflow --tech <file>`;\n\
         # loading re-validates every field.\n",
        technology.name
    )
}

/// Resolves a `tech show` target: a registry name or a technology file
/// (the same dispatch `--tech` uses, so the two can never diverge).
fn resolve_tech_target(target: &str) -> Result<Technology, String> {
    match tech_spec(target).resolve() {
        Ok(technology) => Ok((*technology).clone()),
        Err(e) => Err(e.to_string()),
    }
}

/// A multi-line human-readable summary of a technology.
fn tech_summary(technology: &Technology) -> String {
    let rules = technology.rules();
    let layers = technology.layers();
    let cell_count = technology.iter().count();
    format!(
        "technology    : {}\n\
         description   : {}\n\
         fingerprint   : {}\n\
         rules         : {} (grid {} µm, spacing {} µm, W_max {} µm, {} routing layers)\n\
         clock         : {} GHz ({} ps phase budget)\n\
         timing        : gate {} ps, wire {} ps/µm, skew {} ps/µm, α = {}\n\
         layers        : outline {} / jj {} / pin {} / metal1 {} / metal2 {} / label {}\n\
         cells         : {} kinds, {} total JJs in the table",
        technology.name,
        technology.description,
        technology.fingerprint(),
        rules.name,
        rules.grid,
        rules.min_spacing,
        rules.max_wirelength,
        rules.routing_layers,
        technology.clock().frequency_ghz,
        technology.clock().phase_budget_ps(),
        technology.timing.gate_delay_ps,
        technology.timing.wire_delay_ps_per_um,
        technology.timing.clock_skew_ps_per_um,
        technology.timing.alpha,
        layers.outline,
        layers.jj,
        layers.pin,
        layers.metal1,
        layers.metal2,
        layers.label,
        cell_count,
        technology.iter().map(|c| c.jj_count).sum::<usize>(),
    )
}

#[derive(Debug)]
struct GenerateCliOptions {
    family: LargeFamily,
    cells: usize,
    seed: u64,
    output: Option<String>,
}

fn parse_generate_args(args: &[String]) -> Result<GenerateCliOptions, String> {
    let mut family = None;
    let mut cells = 10_000usize;
    let mut seed = 0u64;
    let mut output = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--cells" => {
                let value = iter.next().ok_or("--cells needs a value")?;
                cells = value
                    .parse::<usize>()
                    .map_err(|_| format!("--cells needs a number, got `{value}`"))?;
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed needs a value")?;
                seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--seed needs a number, got `{value}`"))?;
            }
            "--output" | "-o" => {
                let value = iter.next().ok_or("--output needs a value")?;
                if output.is_some() {
                    return Err("--output given more than once".to_owned());
                }
                output = Some(value.clone());
            }
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown generate option `{other}`"))
            }
            other => {
                if family.is_some() {
                    return Err("generate takes exactly one family".to_owned());
                }
                family = Some(LargeFamily::parse(other).ok_or_else(|| {
                    format!(
                        "unknown generator family `{other}` (available: {})",
                        LargeFamily::ALL.map(|f| f.name()).join(", ")
                    )
                })?);
            }
        }
    }
    let family = family.ok_or_else(|| {
        format!(
            "generate needs a family (available: {})",
            LargeFamily::ALL.map(|f| f.name()).join(", ")
        )
    })?;
    Ok(GenerateCliOptions { family, cells, seed, output })
}

fn run_generate_cli(args: &[String]) -> ExitCode {
    let options = match parse_generate_args(args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let netlist = options.family.by_cells(options.cells, options.seed);
    let blif = options.output.as_deref().is_some_and(|path| path.ends_with(".blif"));
    let text = if blif {
        aqfp_netlist::writers::to_blif(&netlist)
    } else {
        aqfp_netlist::writers::to_verilog(&netlist)
    };
    match &options.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "generated {}: {} gates / {} inputs / {} outputs, written to {path}",
                netlist.name(),
                netlist.cell_count(),
                netlist.primary_inputs().len(),
                netlist.primary_outputs().len(),
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn run_tech_command(args: &[String]) -> Result<String, String> {
    let command = args.first().map(String::as_str).ok_or_else(|| {
        format!("tech subcommand needs an action: list, show or dump\n{}", usage())
    })?;
    match command {
        "list" => {
            let quiet = args[1..].iter().any(|a| a == "--quiet");
            let registry = TechnologyRegistry::global();
            let mut out = String::new();
            for technology in registry.iter() {
                if quiet {
                    out.push_str(&technology.name);
                    out.push('\n');
                } else {
                    out.push_str(&format!("{:<16} {}\n", technology.name, technology.description));
                }
            }
            Ok(out.trim_end().to_owned())
        }
        "show" => {
            let target = args.get(1).ok_or("tech show needs a technology name or file")?;
            let technology = resolve_tech_target(target)?;
            // Files were validated by the loader; re-validate registry
            // entries too so `tech show` is always a full check.
            technology.validate().map_err(|e| format!("technology `{target}` invalid: {e}"))?;
            Ok(tech_summary(&technology))
        }
        "dump" => {
            let name = args.get(1).ok_or("tech dump needs a built-in technology name")?;
            let technology = TechnologyRegistry::global().get(name).ok_or_else(|| {
                format!(
                    "no built-in technology named `{name}` (available: {})",
                    TechnologyRegistry::global().names().collect::<Vec<_>>().join(", ")
                )
            })?;
            let body = technology.to_toml().map_err(|e| format!("cannot dump `{name}`: {e}"))?;
            let text = format!("{}{body}", dump_header(&technology));
            let mut output = None;
            let mut iter = args[2..].iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--output" => {
                        output = Some(iter.next().ok_or("--output needs a value")?.clone())
                    }
                    other => return Err(format!("unknown tech dump option `{other}`")),
                }
            }
            match output {
                Some(path) => {
                    std::fs::write(&path, &text)
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    Ok(format!("technology `{name}` written to {path}"))
                }
                None => Ok(text.trim_end().to_owned()),
            }
        }
        other => Err(format!("unknown tech subcommand `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("batch") {
        return run_batch_cli(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("lint") {
        return run_lint_cli(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("predict") {
        return run_predict_cli(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("verify") {
        return run_verify_cli(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("generate") {
        return run_generate_cli(&args[1..]);
    }

    if args.first().map(String::as_str) == Some("tech") {
        return match run_tech_command(&args[1..]) {
            Ok(output) => {
                println!("{output}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }

    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let report = match run(&options) {
        Ok(Outcome::Complete(report)) => report,
        Ok(Outcome::Stopped { stage, summary, checkpoint }) => {
            println!("{summary}");
            match (&options.report, checkpoint) {
                (Some(path), Some(json)) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("error: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("stopped after {stage}; checkpoint written to {path}");
                }
                _ => println!("stopped after {stage} (pass --report to keep a checkpoint)"),
            }
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &options.report {
        let json = match serde_json::to_string_pretty(&*report) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("error: cannot serialize report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }

    let gds_path = options.output.clone().unwrap_or_else(|| format!("{}.gds", report.design_name));
    // Stream record by record through a BufWriter instead of materializing
    // the byte image — at a million cells the image alone is tens of MB.
    if let Err(e) = std::fs::File::create(&gds_path).and_then(|file| {
        let mut out = std::io::BufWriter::new(file);
        report.layout.gds.write_to(&mut out)?;
        std::io::Write::flush(&mut out)
    }) {
        eprintln!("error: cannot write `{gds_path}`: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(svg_path) = &options.svg {
        let svg = render_svg(&report.placement.design, &report.routing, &SvgOptions::default());
        if let Err(e) = std::fs::write(svg_path, svg) {
            eprintln!("error: cannot write `{svg_path}`: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("{}", report.summary());
    if !options.quiet {
        let energy = EnergyModel::default();
        let timings = report.stage_timings;
        println!("placer            : {}", report.placement.placer);
        println!("clock phases      : {}", report.synthesis_stats.delay);
        println!("JJs after routing : {}", report.jj_after_routing());
        println!(
            "energy estimate   : {:.1} aJ/cycle ({:.2} nW at 5 GHz)",
            report.cycle_energy_aj(&energy),
            report.average_power_nw(&energy, aqfp_cells::FourPhaseClock::PAPER_DEFAULT),
        );
        println!(
            "stage timings     : synth {:.2}s / place {:.2}s / route {:.2}s / check {:.2}s",
            timings.synthesis_s, timings.placement_s, timings.routing_s, timings.check_s,
        );
        if let Some(path) = &options.report {
            println!("report written to : {path}");
        }
        println!("GDS written to    : {gds_path}");
        if let Some(svg_path) = &options.svg {
            println!("SVG written to    : {svg_path}");
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_cells::{AIST_STP2, MIT_LL_SQF5EE};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let options = parse_args(&args(&[
            "--placer",
            "taas",
            "--tech",
            "aist-stp2",
            "--threads",
            "3",
            "--report",
            "out.json",
            "--output",
            "out.gds",
            "--svg",
            "out.svg",
            "--fast",
            "--quiet",
            "adder8",
        ]))
        .expect("parses");
        assert_eq!(options.placer, PlacerKind::Taas);
        assert_eq!(options.tech.as_deref(), Some("aist-stp2"));
        assert_eq!(options.threads, Some(3));
        assert_eq!(options.report.as_deref(), Some("out.json"));
        assert_eq!(options.output.as_deref(), Some("out.gds"));
        assert_eq!(options.svg.as_deref(), Some("out.svg"));
        assert!(options.fast && options.quiet);
        assert_eq!(options.input, "adder8");
        // --stop-after composes with --report (the checkpoint sink).
        let stopped = parse_args(&args(&["--stop-after", "routing", "--report", "r.json", "a.v"]))
            .expect("parses");
        assert_eq!(stopped.stop_after, Some(FlowStage::Routing));
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--placer"])).is_err());
        assert!(parse_args(&args(&["--placer", "magic", "adder8"])).is_err());
        assert!(parse_args(&args(&["--threads", "many", "adder8"])).is_err());
        assert!(parse_args(&args(&["--stop-after", "teardown", "adder8"])).is_err());
        assert!(parse_args(&args(&["--frobnicate", "adder8"])).is_err());
        assert!(parse_args(&args(&["a.v", "b.v"])).is_err());
        // --tech and --process both name the technology; passing both is a
        // contradiction.
        assert!(parse_args(&args(&["--tech", "x.toml", "--process", "stp2", "adder8"])).is_err());
        assert!(parse_args(&args(&["--process", "vaporware", "adder8"])).is_err());
        // --stop-after skips the layout outputs, so combining it with
        // --output/--svg is a contradiction, not a silent no-op.
        let error = parse_args(&args(&["--stop-after", "route", "--output", "o.gds", "adder8"]))
            .expect_err("contradictory flags");
        assert!(error.contains("--stop-after"), "unhelpful message: {error}");
        assert!(parse_args(&args(&["--stop-after", "route", "--svg", "o.svg", "adder8"])).is_err());
    }

    #[test]
    fn config_builders_reflect_the_flags() {
        let options =
            parse_args(&args(&["--tech", "aist-stp2", "--threads", "2", "--fast", "adder8"]))
                .expect("parses");
        let config = build_config(&options);
        assert_eq!(config.tech, TechSpec::builtin(AIST_STP2));
        assert_eq!(config.threads(), 2);
        // --fast lowers the placement effort.
        assert!(
            config.placement.global.iterations
                < FlowConfig::paper_default().placement.global.iterations
        );
        // The legacy --process alias reaches the same registry entries.
        let legacy = parse_args(&args(&["--process", "stp2", "adder8"])).expect("parses");
        assert_eq!(build_config(&legacy).tech, TechSpec::builtin(AIST_STP2));
        // A non-registry value with an extension is treated as a file path.
        let file = parse_args(&args(&["--tech", "custom.toml", "adder8"])).expect("parses");
        assert_eq!(build_config(&file).tech, TechSpec::file("custom.toml"));
        // The legacy --process names also work directly as --tech values...
        assert_eq!(tech_spec("mit-ll"), TechSpec::builtin(MIT_LL_SQF5EE));
        assert_eq!(tech_spec("stp2"), TechSpec::builtin(AIST_STP2));
        // ...and a bare unknown name resolves as Builtin, so its error
        // lists the registry instead of complaining about a missing file.
        let err = tech_spec("mit-ll-sqfee").resolve().expect_err("unknown name");
        assert!(err.to_string().contains(MIT_LL_SQF5EE), "{err}");
    }

    #[test]
    fn benchmark_names_resolve_without_touching_the_filesystem() {
        let options = parse_args(&args(&["--fast", "--quiet", "adder8"])).expect("parses");
        match run(&options).expect("flow runs") {
            Outcome::Complete(report) => assert_eq!(report.design_name, "adder8"),
            Outcome::Stopped { .. } => panic!("no --stop-after given"),
        }
    }

    #[test]
    fn stop_after_produces_a_resumable_checkpoint() {
        let options = parse_args(&args(&[
            "--fast",
            "--quiet",
            "--stop-after",
            "place",
            "--report",
            "unused.json",
            "adder8",
        ]))
        .expect("parses");
        match run(&options).expect("flow runs") {
            Outcome::Stopped { stage, checkpoint, .. } => {
                assert_eq!(stage, FlowStage::Placement);
                let json = checkpoint.expect("--report requests a checkpoint");
                let placed = superflow::Placed::from_json(&json).expect("checkpoint parses");
                assert_eq!(placed.synthesized.design_name, "adder8");
            }
            Outcome::Complete(_) => panic!("--stop-after placement must stop early"),
        }
    }

    #[test]
    fn unknown_extensions_get_a_clear_error() {
        let error = load_netlist("design.vhdl").expect_err("vhdl is unsupported");
        assert!(error.contains("extension"), "unhelpful message: {error}");
        assert!(error.contains(".blif"), "should name the supported formats: {error}");
        // Benchmark names keep working without a file.
        assert!(load_netlist("adder8").is_ok());
        // A supported extension on a missing file reports the I/O problem,
        // not a parse failure.
        let missing = load_netlist("no_such_file.v").expect_err("missing file");
        assert!(missing.contains("io error"), "unhelpful message: {missing}");
        assert!(missing.contains("no_such_file.v"), "names the path: {missing}");
    }

    #[test]
    fn batch_args_parse_into_a_batch_config() {
        let options = parse_batch_args(&args(&[
            "--workers",
            "2",
            "--stage-timeout",
            "30",
            "--no-retry",
            "--journal",
            "runs/j",
            "--output-dir",
            "runs/gds",
            "--report",
            "batch.json",
            "--fault",
            "panic:adder8:placement",
            "--fast",
            "adder8",
            "c432",
        ]))
        .expect("parses");
        assert_eq!(options.inputs, vec!["adder8".to_owned(), "c432".to_owned()]);
        let config = build_batch_config(&options);
        assert_eq!(config.workers, 2);
        assert_eq!(config.stage_timeout, Some(std::time::Duration::from_secs(30)));
        assert!(!config.retry_degraded);
        assert_eq!(config.journal_dir.as_deref(), Some(std::path::Path::new("runs/j")));
        assert_eq!(config.output_dir.as_deref(), Some(std::path::Path::new("runs/gds")));
        assert!(config.faults.matches("adder8", FlowStage::Placement, superflow::FaultKind::Panic));
        // --fast flows through to the per-design flow configuration.
        assert!(
            config.flow.placement.global.iterations
                < FlowConfig::paper_default().placement.global.iterations
        );
    }

    #[test]
    fn batch_args_reject_bad_input() {
        assert!(parse_batch_args(&args(&[])).is_err());
        assert!(parse_batch_args(&args(&["--workers", "two", "adder8"])).is_err());
        assert!(parse_batch_args(&args(&["--stage-timeout", "-5", "adder8"])).is_err());
        assert!(parse_batch_args(&args(&["--fault", "panic:adder8", "adder8"])).is_err());
        assert!(parse_batch_args(&args(&["--frobnicate", "adder8"])).is_err());
        // Two inputs reducing to one design name would share a journal.
        let error =
            parse_batch_args(&args(&["adder8", "designs/adder8.v"])).expect_err("colliding names");
        assert!(error.contains("adder8"), "{error}");
    }

    #[test]
    fn tech_list_names_every_registry_entry() {
        let listing = run_tech_command(&args(&["list"])).expect("lists");
        assert!(listing.contains(MIT_LL_SQF5EE) && listing.contains(AIST_STP2), "{listing}");
        let quiet = run_tech_command(&args(&["list", "--quiet"])).expect("lists");
        assert_eq!(quiet.lines().collect::<Vec<_>>(), vec![MIT_LL_SQF5EE, AIST_STP2]);
    }

    #[test]
    fn tech_show_summarizes_builtins_and_files() {
        let shown = run_tech_command(&args(&["show", MIT_LL_SQF5EE])).expect("shows");
        assert!(shown.contains("MIT-LL SQF5ee"), "{shown}");
        assert!(shown.contains("fingerprint"), "{shown}");

        let dir = std::env::temp_dir().join("superflow_cli_tech_show");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("dumped.toml");
        let technology = Technology::aist_stp2();
        std::fs::write(
            &path,
            format!("{}{}", dump_header(&technology), technology.to_toml().unwrap()),
        )
        .expect("writes");
        let shown = run_tech_command(&args(&["show", path.to_str().unwrap()])).expect("shows file");
        assert!(shown.contains("AIST STP2"), "{shown}");

        assert!(run_tech_command(&args(&["show", "missing.toml"])).is_err());
        assert!(run_tech_command(&args(&["bogus"])).is_err());
        assert!(run_tech_command(&args(&[])).is_err());
    }

    #[test]
    fn tech_dump_round_trips_through_the_loader() {
        let dumped = run_tech_command(&args(&["dump", MIT_LL_SQF5EE])).expect("dumps");
        let loaded = Technology::from_toml(&dumped).expect("dump parses (header is comments)");
        assert_eq!(loaded, Technology::mit_ll_sqf5ee());
        assert!(run_tech_command(&args(&["dump", "no-such-tech"])).is_err());
    }

    /// The acceptance path: dump a built-in, edit one number, run the full
    /// flow on the edited file via `--tech`.
    #[test]
    fn edited_tech_dump_drives_the_full_flow() {
        let dir = std::env::temp_dir().join("superflow_cli_tech_flow");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("tight.toml");
        let dumped = run_tech_command(&args(&["dump", MIT_LL_SQF5EE])).expect("dumps");
        let edited = dumped
            .replace("max_wirelength = 400.0", "max_wirelength = 300.0")
            .replace("name = \"mit-ll-sqf5ee\"", "name = \"mit-ll-tight\"");
        assert_ne!(edited, dumped);
        std::fs::write(&path, &edited).expect("writes");

        let options =
            parse_args(&args(&["--fast", "--quiet", "--tech", path.to_str().unwrap(), "adder8"]))
                .expect("parses");
        match run(&options).expect("flow runs on the edited technology") {
            Outcome::Complete(report) => {
                assert_eq!(report.design_name, "adder8");
                // The tighter W_max forces at least as many buffer lines as
                // the stock process.
                let stock = run(&parse_args(&args(&["--fast", "--quiet", "adder8"])).unwrap())
                    .expect("stock flow runs");
                let Outcome::Complete(stock) = stock else { panic!("no --stop-after") };
                assert!(
                    report.placement.buffer_lines >= stock.placement.buffer_lines,
                    "tighter W_max cannot need fewer buffer lines ({} < {})",
                    report.placement.buffer_lines,
                    stock.placement.buffer_lines
                );
            }
            Outcome::Stopped { .. } => panic!("no --stop-after given"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod lint_cli_tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_lint_command_line() {
        let options = parse_lint_args(&args(&[
            "--tech",
            "aist-stp2",
            "--format",
            "json",
            "--deny",
            "AQFP-W009",
            "--deny",
            "AQFP-W006",
            "--warn",
            "AQFP-E005",
            "--allow",
            "AQFP-W007",
            "--fanout-threshold",
            "8",
            "a.v",
            "b.blif",
        ]))
        .expect("parses");
        assert_eq!(options.inputs, vec!["a.v".to_owned(), "b.blif".to_owned()]);
        assert_eq!(options.tech.as_deref(), Some("aist-stp2"));
        assert!(options.json);
        assert_eq!(options.lint.deny, vec!["AQFP-W009".to_owned(), "AQFP-W006".to_owned()]);
        assert_eq!(options.lint.warn, vec!["AQFP-E005".to_owned()]);
        assert_eq!(options.lint.allow, vec!["AQFP-W007".to_owned()]);
        assert_eq!(options.lint.fanout_threshold, Some(8));
        assert!(!options.rules);
    }

    #[test]
    fn lint_defaults_are_text_format_and_empty_policy() {
        let options = parse_lint_args(&args(&["adder8"])).expect("parses");
        assert!(!options.json);
        assert_eq!(options.lint, LintConfig::default());
        assert!(options.tech.is_none());
    }

    #[test]
    fn lint_usage_errors_are_rejected() {
        assert!(parse_lint_args(&args(&[])).is_err(), "no input");
        assert!(parse_lint_args(&args(&["--format", "xml", "a.v"])).is_err(), "bad format");
        assert!(parse_lint_args(&args(&["--deny"])).is_err(), "missing rule id");
        assert!(
            parse_lint_args(&args(&["--fanout-threshold", "lots", "a.v"])).is_err(),
            "non-numeric threshold"
        );
        assert!(parse_lint_args(&args(&["--frobnicate", "a.v"])).is_err(), "unknown flag");
        assert!(
            parse_lint_args(&args(&["--tech", "a", "--process", "stp2", "a.v"])).is_err(),
            "tech and process conflict"
        );
    }

    #[test]
    fn generate_args_parse_with_defaults_and_overrides() {
        let options = parse_generate_args(&args(&["random_dag"])).expect("parses");
        assert_eq!(options.family, LargeFamily::RandomDag);
        assert_eq!(options.cells, 10_000);
        assert_eq!(options.seed, 0);
        assert!(options.output.is_none());

        let options = parse_generate_args(&args(&[
            "tiled-mul",
            "--cells",
            "50000",
            "--seed",
            "9",
            "-o",
            "big.v",
        ]))
        .expect("parses");
        assert_eq!(options.family, LargeFamily::TiledMultiplier);
        assert_eq!(options.cells, 50_000);
        assert_eq!(options.seed, 9);
        assert_eq!(options.output.as_deref(), Some("big.v"));
    }

    #[test]
    fn generate_usage_errors_are_rejected() {
        assert!(parse_generate_args(&args(&[])).is_err(), "no family");
        assert!(parse_generate_args(&args(&["no_such_family"])).is_err(), "unknown family");
        assert!(parse_generate_args(&args(&["random_dag", "apc_array"])).is_err(), "two families");
        assert!(parse_generate_args(&args(&["random_dag", "--cells", "lots"])).is_err());
        assert!(parse_generate_args(&args(&["random_dag", "--seed"])).is_err(), "missing value");
        assert!(parse_generate_args(&args(&["random_dag", "--frobnicate"])).is_err());
    }

    #[test]
    fn rules_flag_needs_no_input_and_catalog_renders_every_rule() {
        let options = parse_lint_args(&args(&["--rules"])).expect("parses");
        assert!(options.rules);
        let catalog = render_rule_catalog();
        for info in superflow::lint::catalog() {
            assert!(catalog.contains(info.id), "{} missing from:\n{catalog}", info.id);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod predict_cli_tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_predict_command_line() {
        let options = parse_predict_args(&args(&[
            "--tech",
            "aist-stp2",
            "--format",
            "json",
            "--deny",
            "AQFP-P002",
            "--warn",
            "AQFP-P001",
            "--allow",
            "AQFP-P005",
            "a.v",
            "b.blif",
        ]))
        .expect("parses");
        assert_eq!(options.inputs, vec!["a.v".to_owned(), "b.blif".to_owned()]);
        assert_eq!(options.tech.as_deref(), Some("aist-stp2"));
        assert!(options.json);
        assert_eq!(options.lint.deny, vec!["AQFP-P002".to_owned()]);
        assert_eq!(options.lint.warn, vec!["AQFP-P001".to_owned()]);
        assert_eq!(options.lint.allow, vec!["AQFP-P005".to_owned()]);
        assert!(!options.rules);
    }

    #[test]
    fn predict_usage_errors_are_rejected() {
        assert!(parse_predict_args(&args(&[])).is_err(), "no input");
        assert!(parse_predict_args(&args(&["--format", "xml", "a.v"])).is_err(), "bad format");
        assert!(parse_predict_args(&args(&["--deny"])).is_err(), "missing rule id");
        assert!(parse_predict_args(&args(&["--frobnicate", "a.v"])).is_err(), "unknown flag");
        assert!(
            parse_predict_args(&args(&["--tech", "a", "--process", "stp2", "a.v"])).is_err(),
            "tech and process conflict"
        );
    }

    #[test]
    fn predict_rules_catalog_names_every_predict_rule() {
        let options = parse_predict_args(&args(&["--rules"])).expect("parses");
        assert!(options.rules);
        let catalog = render_predict_rule_catalog();
        for info in superflow::predict::catalog() {
            assert!(catalog.contains(info.id), "{} missing from:\n{catalog}", info.id);
        }
    }

    /// The acceptance path: a committed benchmark predicts feasible, with
    /// numeric bounds, without running any stage engine.
    #[test]
    fn a_benchmark_predicts_feasible_with_bounds() {
        let flow = FlowConfig::paper_default();
        let technology = flow.resolve_technology().expect("resolves");
        let report = predict_one("adder8", &technology, &flow).expect("predicts");
        assert_eq!(report.design, "adder8");
        assert!(!report.has_errors(), "{}", report.render());
        let bounds = report.bounds.as_ref().expect("a clean benchmark has bounds");
        assert!(bounds.structure.cells.min >= 1);
        assert!(bounds.cost.total_s() > 0.0);
    }

    /// `--fanout-threshold` reaches the lint gate through `FlowConfig` on
    /// both the main command and the batch driver (the lint subcommand
    /// already wires it through `LintConfig`).
    #[test]
    fn fanout_threshold_flows_into_the_flow_and_batch_configs() {
        let options =
            parse_args(&args(&["--fanout-threshold", "5", "--fast", "adder8"])).expect("parses");
        assert_eq!(build_config(&options).lint.fanout_threshold, Some(5));
        let plain = parse_args(&args(&["adder8"])).expect("parses");
        assert_eq!(build_config(&plain).lint.fanout_threshold, None);

        let batch =
            parse_batch_args(&args(&["--fanout-threshold", "7", "adder8"])).expect("parses");
        assert_eq!(build_batch_config(&batch).flow.lint.fanout_threshold, Some(7));
        assert!(parse_args(&args(&["--fanout-threshold", "lots", "adder8"])).is_err());
        assert!(parse_batch_args(&args(&["--fanout-threshold", "lots", "adder8"])).is_err());
    }

    /// `--no-predict` turns the batch prediction pass off; it is on by
    /// default.
    #[test]
    fn no_predict_disables_the_batch_prediction_pass() {
        let default = parse_batch_args(&args(&["adder8"])).expect("parses");
        assert!(build_batch_config(&default).predict);
        let off = parse_batch_args(&args(&["--no-predict", "adder8"])).expect("parses");
        assert!(!build_batch_config(&off).predict);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod verify_cli_tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_verify_command_line() {
        let options = parse_verify_args(&args(&[
            "--tech",
            "aist-stp2",
            "--fast",
            "--threads",
            "2",
            "--against",
            "gen:random_dag:1000:7",
            "--format",
            "json",
            "--inject-defect",
            "phase",
            "a.gds",
            "b.json",
        ]))
        .expect("parses");
        assert_eq!(options.inputs, vec!["a.gds".to_owned(), "b.json".to_owned()]);
        assert_eq!(options.tech.as_deref(), Some("aist-stp2"));
        assert_eq!(options.threads, Some(2));
        assert!(options.fast && options.json);
        assert_eq!(options.against.as_deref(), Some("gen:random_dag:1000:7"));
        assert_eq!(options.inject, Some(Defect::Phase));
        assert!(!options.rules);
        // The re-derivation config reflects the flags.
        let config = build_verify_config(&options);
        assert_eq!(config.tech, TechSpec::builtin(aqfp_cells::AIST_STP2));
        assert_eq!(config.threads(), 2);
        // The subcommand drives the verifiers itself; the per-stage gates
        // stay off so the re-derivation cannot double-report.
        assert!(!config.verify.enabled);
    }

    #[test]
    fn verify_usage_errors_are_rejected() {
        assert!(parse_verify_args(&args(&[])).is_err(), "no input");
        assert!(parse_verify_args(&args(&["--format", "xml", "a.gds"])).is_err(), "bad format");
        assert!(
            parse_verify_args(&args(&["--inject-defect", "bitflip", "a.gds"])).is_err(),
            "unknown defect"
        );
        assert!(parse_verify_args(&args(&["--against", "a", "--against", "b", "x.gds"])).is_err());
        assert!(parse_verify_args(&args(&["--frobnicate", "a.gds"])).is_err(), "unknown flag");
        assert!(
            parse_verify_args(&args(&["--tech", "a", "--process", "stp2", "a.gds"])).is_err(),
            "tech and process conflict"
        );
        // Inputs that are neither GDS nor checkpoints are rejected at
        // dispatch, with the supported kinds named.
        let options = parse_verify_args(&args(&["design.v"])).expect("parses");
        let error = verify_one("design.v", &options, &build_verify_config(&options))
            .expect_err("not an artifact");
        assert!(error.contains(".gds") && error.contains(".json"), "{error}");
    }

    #[test]
    fn verify_rules_catalog_names_every_verify_rule() {
        let options = parse_verify_args(&args(&["--rules"])).expect("parses");
        assert!(options.rules);
        let catalog = render_verify_rule_catalog();
        for info in superflow::verify::catalog() {
            assert!(catalog.contains(info.id), "{} missing from:\n{catalog}", info.id);
        }
    }

    #[test]
    fn verify_flag_gates_the_flow_and_batch_configs() {
        let options = parse_args(&args(&["--verify", "--fast", "adder8"])).expect("parses");
        assert!(build_config(&options).verify.enabled);
        let plain = parse_args(&args(&["adder8"])).expect("parses");
        assert!(!build_config(&plain).verify.enabled);
        let batch = parse_batch_args(&args(&["--verify", "adder8"])).expect("parses");
        assert!(build_batch_config(&batch).flow.verify.enabled);
    }

    /// The acceptance path: write a GDS with the flow, verify it clean,
    /// then prove an injected defect is caught with its catalogued rule.
    #[test]
    fn a_fresh_gds_verifies_clean_and_an_injected_defect_is_caught() {
        let dir = std::env::temp_dir().join("superflow_cli_verify_gds");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("adder8.gds");
        let flow = Flow::with_config(FlowConfig::fast());
        let report =
            flow.run_benchmark(aqfp_netlist::generators::Benchmark::Adder8).expect("flow runs");
        std::fs::write(&path, report.layout.to_gds_bytes()).expect("writes");
        let path = path.to_str().expect("utf-8 path");

        let options = parse_verify_args(&args(&["--fast", path])).expect("parses");
        let config = build_verify_config(&options);
        let clean = verify_one(path, &options, &config).expect("verifies");
        assert!(clean.ran("lec") && clean.ran("phase") && clean.ran("lvs"), "{:?}", clean.checks);
        assert!(!clean.has_errors(), "{}", clean.render());

        for defect in [Defect::Wire, Defect::Cell, Defect::Phase] {
            let injected =
                parse_verify_args(&args(&["--fast", "--inject-defect", defect.name(), path]))
                    .expect("parses");
            let report = verify_one(path, &injected, &config).expect("verifies");
            assert!(
                report.mentions(defect.expected_rule()),
                "{} defect must trip {}:\n{}",
                defect.name(),
                defect.expected_rule(),
                report.render()
            );
            assert!(report.has_errors());
        }
    }

    /// Stage checkpoints verify with the checks applicable to their stage.
    #[test]
    fn a_placement_checkpoint_verifies_with_phase_and_lec() {
        let dir = std::env::temp_dir().join("superflow_cli_verify_ckpt");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("adder8_placed.json");
        let options = parse_args(&args(&[
            "--fast",
            "--quiet",
            "--stop-after",
            "place",
            "--report",
            "unused.json",
            "adder8",
        ]))
        .expect("parses");
        let Outcome::Stopped { checkpoint: Some(json), .. } = run(&options).expect("flow runs")
        else {
            panic!("--stop-after placement must yield a checkpoint")
        };
        std::fs::write(&path, json).expect("writes");
        let path = path.to_str().expect("utf-8 path");

        let options =
            parse_verify_args(&args(&["--fast", "--against", "adder8", path])).expect("parses");
        let config = build_verify_config(&options);
        let report = verify_one(path, &options, &config).expect("verifies");
        assert!(report.ran("phase") && report.ran("lec"), "{:?}", report.checks);
        assert!(!report.ran("lvs"), "no layout exists before the check stage");
        assert!(!report.has_errors(), "{}", report.render());
    }
}
