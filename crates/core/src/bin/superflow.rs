//! `superflow` command-line interface.
//!
//! Runs the complete RTL-to-GDS flow on a structural-Verilog or BLIF file,
//! or on one of the built-in benchmark circuits, and writes the resulting
//! GDSII (and optionally an SVG rendering).
//!
//! ```text
//! superflow [OPTIONS] <input>
//!
//!   <input>                 path to a .v / .blif file, or a benchmark name
//!                           (adder8, apc32, apc128, decoder, sorter32,
//!                            c432, c499, c1355, c1908)
//!   --placer <name>         superflow | gordian | taas        [superflow]
//!   --process <name>        mit-ll | stp2                     [mit-ll]
//!   --output <file.gds>     GDSII output path                 [<design>.gds]
//!   --svg <file.svg>        also write an SVG rendering
//!   --fast                  use the reduced-effort placement configuration
//!   --quiet                 print only the one-line summary
//! ```

use std::process::ExitCode;

use aqfp_cells::{EnergyModel, Process};
use aqfp_layout::{render_svg, SvgOptions};
use aqfp_netlist::generators::Benchmark;
use aqfp_place::PlacerKind;
use superflow::{Flow, FlowConfig, FlowReport};

struct CliOptions {
    input: String,
    placer: PlacerKind,
    process: Process,
    output: Option<String>,
    svg: Option<String>,
    fast: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        input: String::new(),
        placer: PlacerKind::SuperFlow,
        process: Process::MitLl,
        output: None,
        svg: None,
        fast: false,
        quiet: false,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--placer" => {
                let value = iter.next().ok_or("--placer needs a value")?;
                options.placer = match value.as_str() {
                    "superflow" => PlacerKind::SuperFlow,
                    "gordian" => PlacerKind::GordianBased,
                    "taas" => PlacerKind::Taas,
                    other => return Err(format!("unknown placer `{other}`")),
                };
            }
            "--process" => {
                let value = iter.next().ok_or("--process needs a value")?;
                options.process = match value.as_str() {
                    "mit-ll" | "mitll" => Process::MitLl,
                    "stp2" => Process::Stp2,
                    other => return Err(format!("unknown process `{other}`")),
                };
            }
            "--output" => {
                options.output = Some(iter.next().ok_or("--output needs a value")?.clone())
            }
            "--svg" => options.svg = Some(iter.next().ok_or("--svg needs a value")?.clone()),
            "--fast" => options.fast = true,
            "--quiet" => options.quiet = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if !options.input.is_empty() {
                    return Err("more than one input given".to_owned());
                }
                options.input = other.to_owned();
            }
        }
    }
    if options.input.is_empty() {
        return Err("no input given".to_owned());
    }
    Ok(options)
}

fn usage() -> &'static str {
    "usage: superflow [--placer superflow|gordian|taas] [--process mit-ll|stp2] \
     [--output out.gds] [--svg out.svg] [--fast] [--quiet] <input.v|input.blif|benchmark>"
}

fn run(options: &CliOptions) -> Result<FlowReport, String> {
    let mut config = if options.fast { FlowConfig::fast() } else { FlowConfig::paper_default() };
    config.process = options.process;
    config.placer = options.placer;
    let flow = Flow::with_config(config);

    if let Some(benchmark) = Benchmark::ALL.into_iter().find(|b| b.name() == options.input) {
        return flow.run_benchmark(benchmark).map_err(|e| e.to_string());
    }
    let source = std::fs::read_to_string(&options.input)
        .map_err(|e| format!("cannot read `{}`: {e}", options.input))?;
    if options.input.ends_with(".blif") {
        flow.run_blif(&source).map_err(|e| e.to_string())
    } else {
        flow.run_verilog(&source).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let report = match run(&options) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let gds_path = options.output.clone().unwrap_or_else(|| format!("{}.gds", report.design_name));
    if let Err(e) = std::fs::write(&gds_path, report.layout.to_gds_bytes()) {
        eprintln!("error: cannot write `{gds_path}`: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(svg_path) = &options.svg {
        let svg = render_svg(&report.placement.design, &report.routing, &SvgOptions::default());
        if let Err(e) = std::fs::write(svg_path, svg) {
            eprintln!("error: cannot write `{svg_path}`: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("{}", report.summary());
    if !options.quiet {
        let energy = EnergyModel::default();
        println!("placer            : {}", report.placement.placer);
        println!("clock phases      : {}", report.synthesis_stats.delay);
        println!("JJs after routing : {}", report.jj_after_routing());
        println!(
            "energy estimate   : {:.1} aJ/cycle ({:.2} nW at 5 GHz)",
            report.cycle_energy_aj(&energy),
            report.average_power_nw(&energy, aqfp_cells::FourPhaseClock::PAPER_DEFAULT),
        );
        println!("GDS written to    : {gds_path}");
        if let Some(svg_path) = &options.svg {
            println!("SVG written to    : {svg_path}");
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let options = parse_args(&args(&[
            "--placer",
            "taas",
            "--process",
            "stp2",
            "--output",
            "out.gds",
            "--svg",
            "out.svg",
            "--fast",
            "--quiet",
            "adder8",
        ]))
        .expect("parses");
        assert_eq!(options.placer, PlacerKind::Taas);
        assert_eq!(options.process, Process::Stp2);
        assert_eq!(options.output.as_deref(), Some("out.gds"));
        assert_eq!(options.svg.as_deref(), Some("out.svg"));
        assert!(options.fast && options.quiet);
        assert_eq!(options.input, "adder8");
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--placer"])).is_err());
        assert!(parse_args(&args(&["--placer", "magic", "adder8"])).is_err());
        assert!(parse_args(&args(&["--frobnicate", "adder8"])).is_err());
        assert!(parse_args(&args(&["a.v", "b.v"])).is_err());
    }

    #[test]
    fn benchmark_names_resolve_without_touching_the_filesystem() {
        let options = parse_args(&args(&["--fast", "adder8"])).expect("parses");
        let report = run(&options).expect("flow runs");
        assert_eq!(report.design_name, "adder8");
    }
}
