//! `superflow` command-line interface.
//!
//! Runs the RTL-to-GDS flow on a structural-Verilog or BLIF file, or on one
//! of the built-in benchmark circuits, and writes the resulting GDSII (and
//! optionally an SVG rendering, a JSON report, or a resumable stage
//! checkpoint).
//!
//! ```text
//! superflow [OPTIONS] <input>
//!
//!   <input>                 path to a .v / .sv / .blif file, or a benchmark
//!                           name (adder8, apc32, apc128, decoder, sorter32,
//!                            c432, c499, c1355, c1908)
//!   --placer <name>         superflow | gordian | taas        [superflow]
//!   --process <name>        mit-ll | stp2                     [mit-ll]
//!   --threads <n>           worker threads for parallel stages; 0 = all
//!                           cores                             [0]
//!   --stop-after <stage>    stop after synthesis | placement | routing |
//!                           check and (with --report) write that stage's
//!                           resumable JSON checkpoint instead of a GDS
//!   --report <file.json>    write the full flow report — or, with
//!                           --stop-after, the stage checkpoint — as JSON
//!   --output <file.gds>     GDSII output path                 [<design>.gds]
//!   --svg <file.svg>        also write an SVG rendering
//!   --fast                  use the reduced-effort placement configuration
//!   --quiet                 print only the one-line summary
//! ```

use std::process::ExitCode;

use aqfp_cells::{EnergyModel, Process};
use aqfp_layout::{render_svg, DrcReport, SvgOptions};
use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
use aqfp_netlist::parsers::{parse_blif, parse_verilog};
use aqfp_netlist::Netlist;
use aqfp_place::PlacerKind;
use superflow::{Flow, FlowConfig, FlowObserver, FlowReport, FlowStage, RepairScope};

#[derive(Debug)]
struct CliOptions {
    input: String,
    placer: PlacerKind,
    process: Process,
    threads: Option<usize>,
    stop_after: Option<FlowStage>,
    report: Option<String>,
    output: Option<String>,
    svg: Option<String>,
    fast: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        input: String::new(),
        placer: PlacerKind::SuperFlow,
        process: Process::MitLl,
        threads: None,
        stop_after: None,
        report: None,
        output: None,
        svg: None,
        fast: false,
        quiet: false,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--placer" => {
                let value = iter.next().ok_or("--placer needs a value")?;
                options.placer = match value.as_str() {
                    "superflow" => PlacerKind::SuperFlow,
                    "gordian" => PlacerKind::GordianBased,
                    "taas" => PlacerKind::Taas,
                    other => return Err(format!("unknown placer `{other}`")),
                };
            }
            "--process" => {
                let value = iter.next().ok_or("--process needs a value")?;
                options.process = match value.as_str() {
                    "mit-ll" | "mitll" => Process::MitLl,
                    "stp2" => Process::Stp2,
                    other => return Err(format!("unknown process `{other}`")),
                };
            }
            "--threads" => {
                let value = iter.next().ok_or("--threads needs a value")?;
                options.threads = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("--threads needs a number, got `{value}`"))?,
                );
            }
            "--stop-after" => {
                let value = iter.next().ok_or("--stop-after needs a value")?;
                options.stop_after = Some(match value.as_str() {
                    "synthesis" | "synth" => FlowStage::Synthesis,
                    "placement" | "place" => FlowStage::Placement,
                    "routing" | "route" => FlowStage::Routing,
                    "check" | "drc" => FlowStage::Check,
                    other => return Err(format!("unknown stage `{other}`")),
                });
            }
            "--report" => {
                options.report = Some(iter.next().ok_or("--report needs a value")?.clone())
            }
            "--output" => {
                options.output = Some(iter.next().ok_or("--output needs a value")?.clone())
            }
            "--svg" => options.svg = Some(iter.next().ok_or("--svg needs a value")?.clone()),
            "--fast" => options.fast = true,
            "--quiet" => options.quiet = true,
            "--help" | "-h" => return Err("help".to_owned()),
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if !options.input.is_empty() {
                    return Err("more than one input given".to_owned());
                }
                options.input = other.to_owned();
            }
        }
    }
    if options.input.is_empty() {
        return Err("no input given".to_owned());
    }
    if options.stop_after.is_some() && (options.output.is_some() || options.svg.is_some()) {
        return Err("--output/--svg write final layout artifacts, which --stop-after skips; \
             drop --stop-after (or use --report to keep that stage's checkpoint)"
            .to_owned());
    }
    Ok(options)
}

fn usage() -> &'static str {
    "usage: superflow [--placer superflow|gordian|taas] [--process mit-ll|stp2] \
     [--threads n] [--stop-after synthesis|placement|routing|check] \
     [--report out.json] [--output out.gds] [--svg out.svg] [--fast] [--quiet] \
     <input.v|input.sv|input.blif|benchmark>"
}

/// The flow configuration the command line selects, assembled through the
/// `FlowConfig` builders.
fn build_config(options: &CliOptions) -> FlowConfig {
    let config = if options.fast { FlowConfig::fast() } else { FlowConfig::paper_default() };
    let config = config.with_process(options.process).with_placer(options.placer);
    match options.threads {
        Some(threads) => config.with_threads(threads),
        None => config,
    }
}

/// Loads the input netlist: benchmark names resolve to generated circuits,
/// file paths dispatch on their extension.
fn load_netlist(input: &str) -> Result<Netlist, String> {
    if let Some(benchmark) = Benchmark::ALL.into_iter().find(|b| b.name() == input) {
        return Ok(benchmark_circuit(benchmark));
    }
    let extension = std::path::Path::new(input)
        .extension()
        .and_then(|extension| extension.to_str())
        .unwrap_or("");
    let parse: fn(&str) -> Result<Netlist, aqfp_netlist::parsers::ParseNetlistError> =
        match extension {
            "v" | "sv" => parse_verilog,
            "blif" => parse_blif,
            _ => {
                return Err(format!(
                    "cannot tell the format of `{input}` from its extension: expected a .v/.sv \
                     (structural Verilog) or .blif file, or one of the benchmark names ({})",
                    Benchmark::ALL.map(|b| b.name()).join(", ")
                ))
            }
        };
    let source =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    parse(&source).map_err(|e| e.to_string())
}

/// Prints stage progress unless `--quiet` is given.
struct StageLog;

impl FlowObserver for StageLog {
    fn stage_finished(&mut self, stage: FlowStage, elapsed_s: f64) {
        println!("[{:<9}] finished in {elapsed_s:.2}s", stage.name());
    }

    fn drc_iteration(&mut self, iteration: usize, report: &DrcReport, scope: RepairScope<'_>) {
        println!(
            "[{:<9}] repair iteration {iteration}: {} violation(s), {scope}",
            "check",
            report.violations.len(),
        );
    }
}

/// What a CLI invocation produced.
enum Outcome {
    /// The whole pipeline ran.
    Complete(Box<FlowReport>),
    /// `--stop-after` ended the run early; the checkpoint JSON is only
    /// rendered when `--report` asks for it.
    Stopped { stage: FlowStage, summary: String, checkpoint: Option<String> },
}

fn run(options: &CliOptions) -> Result<Outcome, String> {
    let netlist = load_netlist(&options.input)?;
    let flow = Flow::with_config(build_config(options));
    let mut session = flow.session();
    if !options.quiet {
        session.add_observer(Box::new(StageLog));
    }
    let want_checkpoint = options.report.is_some();
    let checkpoint_of =
        |json: Result<String, superflow::FlowError>| json.map_err(|e| e.to_string()).map(Some);

    let synthesized = session.synthesize(&netlist).map_err(|e| e.to_string())?;
    if options.stop_after == Some(FlowStage::Synthesis) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Synthesis,
            summary: format!(
                "{}: {} JJs / {} nets / {} phases after synthesis",
                synthesized.design_name,
                synthesized.stats().jj_count,
                synthesized.stats().net_count,
                synthesized.stats().delay
            ),
            checkpoint: if want_checkpoint { checkpoint_of(synthesized.to_json())? } else { None },
        });
    }

    let placed = session.place(synthesized);
    if options.stop_after == Some(FlowStage::Placement) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Placement,
            summary: format!(
                "{}: HPWL {:.0} µm, {} buffer lines, WNS {}",
                placed.synthesized.design_name,
                placed.placement.hpwl_um,
                placed.placement.buffer_lines,
                placed.placement.wns_display()
            ),
            checkpoint: if want_checkpoint { checkpoint_of(placed.to_json())? } else { None },
        });
    }

    let routed = session.route(placed);
    if options.stop_after == Some(FlowStage::Routing) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Routing,
            summary: format!(
                "{}: routed {} nets, {:.0} µm, {} vias",
                routed.placed.synthesized.design_name,
                routed.routing.stats.nets_routed,
                routed.routing.stats.total_wirelength_um,
                routed.routing.stats.total_vias
            ),
            checkpoint: if want_checkpoint { checkpoint_of(routed.to_json())? } else { None },
        });
    }

    let checked = session.check(routed);
    if options.stop_after == Some(FlowStage::Check) {
        return Ok(Outcome::Stopped {
            stage: FlowStage::Check,
            summary: format!(
                "{}: DRC {} after {} repair iteration(s)",
                checked.routed.placed.synthesized.design_name,
                if checked.drc.is_clean() {
                    "clean".to_owned()
                } else {
                    format!("{} violations", checked.drc.violations.len())
                },
                checked.drc_iterations
            ),
            checkpoint: if want_checkpoint { checkpoint_of(checked.to_json())? } else { None },
        });
    }

    Ok(Outcome::Complete(Box::new(session.finish(checked))))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let report = match run(&options) {
        Ok(Outcome::Complete(report)) => report,
        Ok(Outcome::Stopped { stage, summary, checkpoint }) => {
            println!("{summary}");
            match (&options.report, checkpoint) {
                (Some(path), Some(json)) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("error: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("stopped after {stage}; checkpoint written to {path}");
                }
                _ => println!("stopped after {stage} (pass --report to keep a checkpoint)"),
            }
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &options.report {
        let json = match serde_json::to_string_pretty(&*report) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("error: cannot serialize report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }

    let gds_path = options.output.clone().unwrap_or_else(|| format!("{}.gds", report.design_name));
    if let Err(e) = std::fs::write(&gds_path, report.layout.to_gds_bytes()) {
        eprintln!("error: cannot write `{gds_path}`: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(svg_path) = &options.svg {
        let svg = render_svg(&report.placement.design, &report.routing, &SvgOptions::default());
        if let Err(e) = std::fs::write(svg_path, svg) {
            eprintln!("error: cannot write `{svg_path}`: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("{}", report.summary());
    if !options.quiet {
        let energy = EnergyModel::default();
        let timings = report.stage_timings;
        println!("placer            : {}", report.placement.placer);
        println!("clock phases      : {}", report.synthesis_stats.delay);
        println!("JJs after routing : {}", report.jj_after_routing());
        println!(
            "energy estimate   : {:.1} aJ/cycle ({:.2} nW at 5 GHz)",
            report.cycle_energy_aj(&energy),
            report.average_power_nw(&energy, aqfp_cells::FourPhaseClock::PAPER_DEFAULT),
        );
        println!(
            "stage timings     : synth {:.2}s / place {:.2}s / route {:.2}s / check {:.2}s",
            timings.synthesis_s, timings.placement_s, timings.routing_s, timings.check_s,
        );
        if let Some(path) = &options.report {
            println!("report written to : {path}");
        }
        println!("GDS written to    : {gds_path}");
        if let Some(svg_path) = &options.svg {
            println!("SVG written to    : {svg_path}");
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let options = parse_args(&args(&[
            "--placer",
            "taas",
            "--process",
            "stp2",
            "--threads",
            "3",
            "--report",
            "out.json",
            "--output",
            "out.gds",
            "--svg",
            "out.svg",
            "--fast",
            "--quiet",
            "adder8",
        ]))
        .expect("parses");
        assert_eq!(options.placer, PlacerKind::Taas);
        assert_eq!(options.process, Process::Stp2);
        assert_eq!(options.threads, Some(3));
        assert_eq!(options.report.as_deref(), Some("out.json"));
        assert_eq!(options.output.as_deref(), Some("out.gds"));
        assert_eq!(options.svg.as_deref(), Some("out.svg"));
        assert!(options.fast && options.quiet);
        assert_eq!(options.input, "adder8");
        // --stop-after composes with --report (the checkpoint sink).
        let stopped = parse_args(&args(&["--stop-after", "routing", "--report", "r.json", "a.v"]))
            .expect("parses");
        assert_eq!(stopped.stop_after, Some(FlowStage::Routing));
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--placer"])).is_err());
        assert!(parse_args(&args(&["--placer", "magic", "adder8"])).is_err());
        assert!(parse_args(&args(&["--threads", "many", "adder8"])).is_err());
        assert!(parse_args(&args(&["--stop-after", "teardown", "adder8"])).is_err());
        assert!(parse_args(&args(&["--frobnicate", "adder8"])).is_err());
        assert!(parse_args(&args(&["a.v", "b.v"])).is_err());
        // --stop-after skips the layout outputs, so combining it with
        // --output/--svg is a contradiction, not a silent no-op.
        let error = parse_args(&args(&["--stop-after", "route", "--output", "o.gds", "adder8"]))
            .expect_err("contradictory flags");
        assert!(error.contains("--stop-after"), "unhelpful message: {error}");
        assert!(parse_args(&args(&["--stop-after", "route", "--svg", "o.svg", "adder8"])).is_err());
    }

    #[test]
    fn config_builders_reflect_the_flags() {
        let options =
            parse_args(&args(&["--process", "stp2", "--threads", "2", "--fast", "adder8"]))
                .expect("parses");
        let config = build_config(&options);
        assert_eq!(config.process, Process::Stp2);
        assert_eq!(config.threads(), 2);
        // --fast lowers the placement effort.
        assert!(
            config.placement.global.iterations
                < FlowConfig::paper_default().placement.global.iterations
        );
    }

    #[test]
    fn benchmark_names_resolve_without_touching_the_filesystem() {
        let options = parse_args(&args(&["--fast", "--quiet", "adder8"])).expect("parses");
        match run(&options).expect("flow runs") {
            Outcome::Complete(report) => assert_eq!(report.design_name, "adder8"),
            Outcome::Stopped { .. } => panic!("no --stop-after given"),
        }
    }

    #[test]
    fn stop_after_produces_a_resumable_checkpoint() {
        let options = parse_args(&args(&[
            "--fast",
            "--quiet",
            "--stop-after",
            "place",
            "--report",
            "unused.json",
            "adder8",
        ]))
        .expect("parses");
        match run(&options).expect("flow runs") {
            Outcome::Stopped { stage, checkpoint, .. } => {
                assert_eq!(stage, FlowStage::Placement);
                let json = checkpoint.expect("--report requests a checkpoint");
                let placed = superflow::Placed::from_json(&json).expect("checkpoint parses");
                assert_eq!(placed.synthesized.design_name, "adder8");
            }
            Outcome::Complete(_) => panic!("--stop-after placement must stop early"),
        }
    }

    #[test]
    fn unknown_extensions_get_a_clear_error() {
        let error = load_netlist("design.vhdl").expect_err("vhdl is unsupported");
        assert!(error.contains("extension"), "unhelpful message: {error}");
        assert!(error.contains(".blif"), "should name the supported formats: {error}");
        // Benchmark names keep working without a file.
        assert!(load_netlist("adder8").is_ok());
        // A supported extension on a missing file reports the I/O problem,
        // not a parse failure.
        let missing = load_netlist("no_such_file.v").expect_err("missing file");
        assert!(missing.contains("cannot read"), "unhelpful message: {missing}");
    }
}
