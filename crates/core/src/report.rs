//! The end-to-end flow report.

use aqfp_cells::{EnergyModel, FourPhaseClock};
use aqfp_layout::{DrcReport, Layout};
use aqfp_netlist::NetlistStats;
use aqfp_place::PlacementResult;
use aqfp_route::RoutingResult;
use aqfp_synth::SynthesizedNetlist;
use serde::{Deserialize, Serialize};

use crate::session::FlowStage;

/// Wall-clock seconds spent in each stage of a flow run, collected by the
/// session and reported in [`FlowReport::stage_timings`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Seconds spent in logic synthesis.
    pub synthesis_s: f64,
    /// Seconds spent in placement (including buffer rows).
    pub placement_s: f64,
    /// Seconds spent in the initial routing.
    pub routing_s: f64,
    /// Seconds spent in layout generation, DRC and the repair loop
    /// (including incremental reroutes).
    pub check_s: f64,
}

impl StageTimings {
    /// Adds `seconds` to the accumulator of `stage`.
    pub fn record(&mut self, stage: FlowStage, seconds: f64) {
        *self.slot(stage) += seconds;
    }

    /// Seconds accumulated for `stage`.
    pub fn get(&self, stage: FlowStage) -> f64 {
        match stage {
            FlowStage::Synthesis => self.synthesis_s,
            FlowStage::Placement => self.placement_s,
            FlowStage::Routing => self.routing_s,
            FlowStage::Check => self.check_s,
        }
    }

    /// Total seconds across all stages.
    pub fn total_s(&self) -> f64 {
        self.synthesis_s + self.placement_s + self.routing_s + self.check_s
    }

    fn slot(&mut self, stage: FlowStage) -> &mut f64 {
        match stage {
            FlowStage::Synthesis => &mut self.synthesis_s,
            FlowStage::Placement => &mut self.placement_s,
            FlowStage::Routing => &mut self.routing_s,
            FlowStage::Check => &mut self.check_s,
        }
    }
}

/// Everything a complete RTL-to-GDS run produces: per-stage results plus the
/// final layout. The fields map directly onto the paper's tables — synthesis
/// statistics (Table II), placement quality (Table III) and routing results
/// (Table IV).
///
/// The report serializes to JSON (`serde_json::to_string_pretty`) for
/// machine consumption — the CLI's `--report` flag writes exactly that.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowReport {
    /// Design name.
    pub design_name: String,
    /// The synthesized (majority-converted, buffered, path-balanced)
    /// netlist.
    pub synthesis: SynthesizedNetlist,
    /// Synthesis statistics: #JJs, #Nets, #Delay (Table II).
    pub synthesis_stats: NetlistStats,
    /// Placement result: HPWL, buffer lines, WNS, runtime (Table III).
    pub placement: PlacementResult,
    /// Routing result: routed wirelength, vias, per-channel reports
    /// (Table IV).
    pub routing: RoutingResult,
    /// Design-rule-check report after the final layout generation.
    pub drc: DrcReport,
    /// Number of DRC-fix iterations the flow executed.
    pub drc_iterations: usize,
    /// The generated GDSII layout.
    pub layout: Layout,
    /// Wall-clock seconds per stage, as collected by the session.
    pub stage_timings: StageTimings,
    /// Total wall-clock runtime of the flow in seconds (the sum of the
    /// stage timings).
    pub runtime_s: f64,
}

impl FlowReport {
    /// JJ count after routing (the Table IV column): every placed cell,
    /// including buffers added by placement, counted with its library cost.
    pub fn jj_after_routing(&self) -> usize {
        self.routing.jj_count
    }

    /// First-order energy estimate of the routed design over one clock
    /// cycle, in attojoules, using `model`.
    pub fn cycle_energy_aj(&self, model: &EnergyModel) -> f64 {
        model.cycle_energy_aj(self.jj_after_routing())
    }

    /// First-order average power of the routed design at `clock`, in
    /// nanowatts, using `model`.
    pub fn average_power_nw(&self, model: &EnergyModel, clock: FourPhaseClock) -> f64 {
        model.average_power_nw(self.jj_after_routing(), clock)
    }

    /// A compact human-readable summary of the run.
    pub fn summary(&self) -> String {
        format!(
            "{name}: {jjs} JJs / {nets} nets / {delay} phases after synthesis; \
             HPWL {hpwl:.0} µm, {buffers} buffer lines, WNS {wns}; \
             routed {routed} nets, {wl:.0} µm, {vias} vias; \
             DRC {drc}; {runtime:.1}s",
            name = self.design_name,
            jjs = self.synthesis_stats.jj_count,
            nets = self.synthesis_stats.net_count,
            delay = self.synthesis_stats.delay,
            hpwl = self.placement.hpwl_um,
            buffers = self.placement.buffer_lines,
            wns = self.placement.wns_display(),
            routed = self.routing.stats.nets_routed,
            wl = self.routing.stats.total_wirelength_um,
            vias = self.routing.stats.total_vias,
            drc = if self.drc.is_clean() {
                "clean".to_owned()
            } else {
                format!("{} violations", self.drc.violations.len())
            },
            runtime = self.runtime_s,
        )
    }
}
