//! Fault-isolated multi-design batch driver.
//!
//! [`BatchRunner`] pushes N designs through the full RTL-to-GDS flow on M
//! worker threads, sharing one resolved [`Technology`] across every design.
//! What distinguishes it from a shell loop over `superflow <design>` is the
//! *fault boundary* drawn around each design:
//!
//! - **Panic isolation.** Every stage call runs under
//!   [`std::panic::catch_unwind`], so a placer assertion or an injected
//!   panic in one design becomes a classified [`DesignStatus::Failed`]
//!   entry in the [`BatchReport`] while the remaining designs keep running.
//! - **Deadlines.** An optional per-stage wall-clock budget is enforced
//!   through the cooperative [`CancelToken`] threaded into the hot loops of
//!   the placers, the router and the DRC-repair loop — a stage that blows
//!   its budget actually stops working (at its next loop boundary), rather
//!   than being abandoned on a zombie thread. With prediction enabled (the
//!   default), `--stage-timeout` is a *ceiling*, not a flat budget: each
//!   stage's deadline is its predicted wall-clock times a safety margin,
//!   clamped between a tenth of the configured timeout (the floor) and the
//!   timeout itself — so a 5-minute ceiling does not let a design predicted
//!   to place in 2 s burn 5 minutes in a pathological placer loop.
//! - **Prediction-driven scheduling.** Before any worker starts, the
//!   predictive feasibility analysis ([`aqfp_predict`]) runs over every
//!   design (static bounds only — no stage engines), and the work queue is
//!   ordered longest-predicted-first so the slowest design starts first and
//!   the batch's wall-clock approaches `max` rather than `sum` shape. The
//!   per-design forecast and the measured reality land side by side in the
//!   report ([`DesignReport::predicted_stage_s`] /
//!   [`DesignReport::actual_stage_s`]), making the cost model auditable
//!   from CI. `--no-predict` (or [`BatchConfig::predict`] = false) restores
//!   flat deadlines and submission order.
//! - **Degraded retry.** A failed or timed-out design is re-run once under
//!   [`FlowConfig::degraded`] (strictly serial stages, doubled DRC-repair
//!   budget) before it is classified `Failed`; a design rescued this way is
//!   classified [`DesignStatus::Degraded`].
//! - **Crash-safe resume.** With a journal directory configured, every
//!   completed stage checkpoints its artifact JSON atomically
//!   (write-to-temp, then rename) under `<journal>/<design>/<stage>.json`.
//!   A killed batch re-run over the same journal resumes each design from
//!   its newest intact checkpoint, and the flow's determinism makes the
//!   resumed GDS byte-identical to an uninterrupted run. A checkpoint that
//!   is truncated, corrupt, or from a different technology fails that
//!   design loudly ([`FlowError::Checkpoint`] /
//!   [`FlowError::TechnologyMismatch`] with the file path) instead of
//!   silently recomputing or — worse — resuming garbage; the degraded
//!   retry, which always starts from scratch, can still rescue it.
//!
//! # Fault model
//!
//! The failure modes the boundary is designed around, and how each is
//! surfaced:
//!
//! | fault                        | detection                        | classification |
//! |------------------------------|----------------------------------|----------------|
//! | stage panic                  | `catch_unwind` per stage         | `Failed` (stage, panic message) |
//! | stage over deadline          | `CancelToken` deadline           | `Failed` (stage, deadline error) |
//! | corrupt / truncated journal  | strict checkpoint validation     | `Failed` (checkpoint stage, path + cause) |
//! | journal from another PDK     | technology fingerprint check     | `Failed` (`TechnologyMismatch`) |
//! | unreadable input / bad parse | typed [`crate::input`] errors    | `Failed` (no stage, error chain) |
//! | infeasible design            | pre-flight lint (stage 0)        | `Failed` (stage [`LINT_STAGE`], rule ids); no degraded retry |
//! | corrupt stage artifact       | post-stage verification          | `Failed` (stage [`VERIFY_STAGE`], rule ids); no degraded retry |
//!
//! Each of these is reproducible on demand through the [`FaultPlan`]
//! injection hook — `panic:adder8:placement` panics at the placement stage
//! of `adder8`, `deadline:c432:routing` arms a zero-second deadline,
//! `truncate:apc32:synthesis` truncates the synthesis checkpoint after it
//! is written (so the *next* run over the journal hits a torn file), and
//! `corrupt:adder8:routing` damages the routing artifact *after* the stage
//! completed so the post-stage verifier — not the stage's own gate — must
//! catch it. Injected faults fire on the first attempt only, which is what
//! makes the degraded-retry path testable: the retry runs fault-free and
//! rescues the design.
//!
//! With [`FlowConfig::verify`] enabled, every stage boundary additionally
//! re-verifies its artifact (LEC, phase-legality, LVS-lite — the
//! `aqfp-verify` crate); findings classify the design as failed at the
//! [`VERIFY_STAGE`] with the rule ids in the error. Verification failures
//! are deterministic — retrying with fewer threads cannot fix a
//! non-equivalent netlist — so, like lint rejections, they skip the
//! degraded retry.
//!
//! ```no_run
//! use superflow::{BatchConfig, BatchJob, BatchRunner, FlowConfig};
//!
//! let config = BatchConfig::new(FlowConfig::fast())
//!     .with_journal_dir("runs/nightly")
//!     .with_stage_timeout_s(120.0);
//! let jobs = [BatchJob::from_input("adder8"), BatchJob::from_input("designs/alu.v")];
//! let report = BatchRunner::new(config).run(&jobs)?;
//! println!("{}", report.render());
//! assert!(report.failed() == 0);
//! # Ok::<(), superflow::FlowError>(())
//! ```

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use aqfp_cells::{CancelToken, Technology};
use aqfp_place::ThreadBudget;
use serde::{Deserialize, Serialize};

use crate::config::FlowConfig;
use crate::error::FlowError;
use crate::input::{design_name, load_design};
use crate::report::{FlowReport, StageTimings};
use crate::session::{Checked, FlowSession, FlowStage, Placed, Routed, Synthesized};

/// One design in a batch: a display name and the input it loads from (a
/// benchmark name or a netlist file path — see [`crate::input`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJob {
    /// Display name; also the journal subdirectory and GDS file stem.
    pub name: String,
    /// The input spec passed to [`load_design`].
    pub input: String,
}

impl BatchJob {
    /// A job named after its input (`designs/alu.v` → `alu`).
    pub fn from_input(input: impl Into<String>) -> Self {
        let input = input.into();
        BatchJob { name: design_name(&input), input }
    }
}

/// What an injected fault does. See the [module docs](self) for the fault
/// model each kind exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the start of the stage (exercises `catch_unwind`
    /// isolation).
    Panic,
    /// Arm a zero-second deadline for the stage (exercises cooperative
    /// cancellation; the stage aborts at its first token poll).
    ZeroDeadline,
    /// Truncate the stage's checkpoint file to half its bytes after it is
    /// written (exercises strict resume validation on the *next* run).
    TruncateCheckpoint,
    /// Corrupt the stage's in-memory artifact *after* the stage (and its
    /// own verification gate) completed, then re-verify it (exercises the
    /// post-stage verifiers: the damage must be classified at
    /// [`VERIFY_STAGE`], not slip into the next stage).
    CorruptArtifact,
}

impl FaultKind {
    fn parse(text: &str) -> Option<FaultKind> {
        match text {
            "panic" => Some(FaultKind::Panic),
            "deadline" => Some(FaultKind::ZeroDeadline),
            "truncate" => Some(FaultKind::TruncateCheckpoint),
            "corrupt" => Some(FaultKind::CorruptArtifact),
            _ => None,
        }
    }
}

/// One deterministic injected fault: `kind` fires at `stage` of the design
/// named `design`, on the first attempt only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The [`BatchJob::name`] the fault targets.
    pub design: String,
    /// The stage the fault fires at.
    pub stage: FlowStage,
    /// What the fault does.
    pub kind: FaultKind,
}

impl Fault {
    /// Parses a `kind:design:stage` spec, e.g. `panic:adder8:placement`,
    /// `deadline:c432:routing`, `truncate:apc32:synthesis`.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the malformed part.
    pub fn parse(spec: &str) -> Result<Fault, String> {
        let mut parts = spec.splitn(3, ':');
        let (kind, design, stage) = match (parts.next(), parts.next(), parts.next()) {
            (Some(kind), Some(design), Some(stage)) => (kind, design, stage),
            _ => {
                return Err(format!(
                    "fault spec `{spec}` is not of the form kind:design:stage \
                     (e.g. panic:adder8:placement)"
                ))
            }
        };
        let kind = FaultKind::parse(kind).ok_or_else(|| {
            format!(
                "unknown fault kind `{kind}` in `{spec}`: expected panic, deadline, truncate or \
                 corrupt"
            )
        })?;
        let stage = FlowStage::parse(stage).ok_or_else(|| {
            format!(
                "unknown stage `{stage}` in `{spec}`: expected {}",
                FlowStage::ALL.map(|s| s.name()).join(", ")
            )
        })?;
        Ok(Fault { design: design.to_owned(), stage, kind })
    }
}

/// A deterministic fault-injection plan: the set of [`Fault`]s a batch run
/// fires on first attempts. Empty by default (production runs inject
/// nothing); built from CLI `--fault` specs or directly in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether a fault of `kind` is planned for `stage` of `design`.
    pub fn matches(&self, design: &str, stage: FlowStage, kind: FaultKind) -> bool {
        self.faults.iter().any(|f| f.design == design && f.stage == stage && f.kind == kind)
    }
}

/// Configuration of a batch run; start from [`BatchConfig::new`] and chain
/// the builders.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// The per-design flow configuration (technology, placer, stage
    /// options). When the batch runs more than one worker and this config
    /// leaves the stage thread count on auto (`0`), the machine's core
    /// budget is divided evenly among the workers (8 cores / 4 workers = 2
    /// stage threads per design) so designs parallelize across workers
    /// without oversubscribing every core per design.
    pub flow: FlowConfig,
    /// Worker threads pulling designs off the shared queue; `0` uses every
    /// available core (capped at the job count).
    pub workers: usize,
    /// Per-stage wall-clock budget; `None` runs without deadlines.
    pub stage_timeout: Option<Duration>,
    /// Re-run a failed design once under [`FlowConfig::degraded`] before
    /// classifying it [`DesignStatus::Failed`]. On by default.
    pub retry_degraded: bool,
    /// Journal directory for per-design stage checkpoints; `None` disables
    /// journaling (and therefore resume).
    pub journal_dir: Option<PathBuf>,
    /// Directory final GDS files are written to (`<name>.gds`); `None`
    /// keeps the layouts in memory only.
    pub output_dir: Option<PathBuf>,
    /// Deterministic fault injection (testing hook); empty in production.
    pub faults: FaultPlan,
    /// Run the predictive feasibility analysis over every design before the
    /// workers start, order the queue longest-predicted-first, and scale
    /// each stage's deadline from its predicted cost (see the
    /// [module docs](self)). On by default; `false` restores submission
    /// order and flat per-stage deadlines.
    pub predict: bool,
}

impl BatchConfig {
    /// A batch configuration around a flow configuration: auto worker
    /// count, no deadlines, degraded retry on, no journal, no GDS output,
    /// no faults.
    pub fn new(flow: FlowConfig) -> Self {
        BatchConfig {
            flow,
            workers: 0,
            stage_timeout: None,
            retry_degraded: true,
            journal_dir: None,
            output_dir: None,
            faults: FaultPlan::none(),
            predict: true,
        }
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-stage wall-clock budget in seconds.
    pub fn with_stage_timeout_s(mut self, seconds: f64) -> Self {
        self.stage_timeout = Some(Duration::from_secs_f64(seconds.max(0.0)));
        self
    }

    /// Enables or disables the degraded retry.
    pub fn with_retry_degraded(mut self, retry: bool) -> Self {
        self.retry_degraded = retry;
        self
    }

    /// Sets the journal directory for stage checkpoints and resume.
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Sets the directory final GDS files are written to.
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables or disables the predictive scheduling pass.
    pub fn with_predict(mut self, predict: bool) -> Self {
        self.predict = predict;
        self
    }
}

/// How one design ended up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DesignStatus {
    /// The flow completed on the first attempt.
    Succeeded,
    /// The first attempt failed, but the degraded retry completed.
    Degraded,
    /// Every attempt failed.
    Failed {
        /// The failure, rendered with its full `source()` chain. When the
        /// degraded retry also failed, both failures are included.
        error: String,
        /// The [`FlowStage::name`] the failure is attributed to; `None`
        /// when it struck outside any stage (e.g. loading the input).
        stage: Option<String>,
        /// How many attempts were made (1, or 2 with degraded retry).
        attempts: usize,
    },
}

impl DesignStatus {
    /// Short lowercase label (`succeeded` / `degraded` / `failed`).
    pub fn label(&self) -> &'static str {
        match self {
            DesignStatus::Succeeded => "succeeded",
            DesignStatus::Degraded => "degraded",
            DesignStatus::Failed { .. } => "failed",
        }
    }
}

/// One design's row in the [`BatchReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// The design ([`BatchJob::name`]).
    pub name: String,
    /// How it ended up.
    pub status: DesignStatus,
    /// Attempts made (1, or 2 when the degraded retry ran).
    pub attempts: usize,
    /// Wall-clock seconds spent on this design across all attempts.
    pub wall_s: f64,
    /// The [`FlowStage::name`] of the newest journal checkpoint the design
    /// resumed from; `None` when it ran from the netlist.
    pub resumed_from: Option<String>,
    /// Stages skipped thanks to journal checkpoints (0–4).
    pub checkpoint_hits: usize,
    /// Per-stage wall-clock the predictive analysis forecast before any
    /// engine ran; `None` when prediction was disabled or the design could
    /// not be analysed (e.g. it failed to load).
    pub predicted_stage_s: Option<StageTimings>,
    /// Per-stage wall-clock the design actually took on its successful
    /// attempt (stages resumed from the journal contribute 0); `None` when
    /// every attempt failed.
    pub actual_stage_s: Option<StageTimings>,
}

/// The structured result of a batch run. Serde round-trippable
/// ([`BatchReport::to_json`] / [`BatchReport::from_json`]), so CI and
/// scripts can assert on classifications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Per-design outcomes, in job order (independent of which worker
    /// finished first).
    pub designs: Vec<DesignReport>,
    /// Worker threads the batch ran with.
    pub workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// Total stages skipped thanks to journal checkpoints.
    pub checkpoint_hits: usize,
}

impl BatchReport {
    /// Designs that completed on the first attempt.
    pub fn succeeded(&self) -> usize {
        self.designs.iter().filter(|d| d.status == DesignStatus::Succeeded).count()
    }

    /// Designs rescued by the degraded retry.
    pub fn degraded(&self) -> usize {
        self.designs.iter().filter(|d| d.status == DesignStatus::Degraded).count()
    }

    /// Designs that failed every attempt.
    pub fn failed(&self) -> usize {
        self.designs.iter().filter(|d| matches!(d.status, DesignStatus::Failed { .. })).count()
    }

    /// Serializes the report to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] when serialization fails.
    pub fn to_json(&self) -> Result<String, FlowError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| FlowError::Checkpoint(format!("cannot serialize batch report: {e}")))
    }

    /// Restores a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] when the text does not parse.
    pub fn from_json(text: &str) -> Result<Self, FlowError> {
        serde_json::from_str(text)
            .map_err(|e| FlowError::Checkpoint(format!("cannot parse batch report: {e}")))
    }

    /// Renders the report as the human-readable table the CLI prints.
    pub fn render(&self) -> String {
        let width = self.designs.iter().map(|d| d.name.len()).max().unwrap_or(4).max(4);
        let mut out = format!(
            "batch: {} design(s) on {} worker(s) in {:.1}s — {} succeeded, {} degraded, {} \
             failed, {} checkpoint hit(s)\n",
            self.designs.len(),
            self.workers,
            self.wall_s,
            self.succeeded(),
            self.degraded(),
            self.failed(),
            self.checkpoint_hits,
        );
        for design in &self.designs {
            let resumed = match &design.resumed_from {
                Some(stage) => format!(", resumed from {stage}"),
                None => String::new(),
            };
            let forecast = match (&design.predicted_stage_s, &design.actual_stage_s) {
                (Some(predicted), Some(actual)) => {
                    format!(
                        ", predicted {:.1}s / measured {:.1}s",
                        predicted.total_s(),
                        actual.total_s()
                    )
                }
                (Some(predicted), None) => format!(", predicted {:.1}s", predicted.total_s()),
                _ => String::new(),
            };
            out.push_str(&format!(
                "  {:<width$}  {:<9}  {} attempt(s), {:.1}s{resumed}{forecast}\n",
                design.name,
                design.status.label(),
                design.attempts,
                design.wall_s,
            ));
            if let DesignStatus::Failed { error, stage, .. } = &design.status {
                // Pre-flight lint rejections are called out distinctly from
                // runtime stage failures: the design never entered the flow,
                // so there is no partial work, no journal, and no point in a
                // degraded retry — fix the netlist and resubmit.
                let at = match stage.as_deref() {
                    Some(LINT_STAGE) => " (rejected by pre-flight lint, flow not started)".into(),
                    Some(VERIFY_STAGE) => {
                        " (stage artifact rejected by post-stage verification)".into()
                    }
                    Some(stage) => format!(" at {stage}"),
                    None => String::new(),
                };
                out.push_str(&format!("  {:<width$}  error{at}: {error}\n", ""));
            }
        }
        out
    }
}

/// Renders an error with its full `source()` chain, one `caused by:` hop
/// per line-less segment. Shared by the batch classifier and the CLI.
pub fn error_chain(error: &dyn std::error::Error) -> String {
    let mut out = error.to_string();
    let mut source = error.source();
    while let Some(cause) = source {
        out.push_str(&format!("; caused by: {cause}"));
        source = cause.source();
    }
    out
}

/// The stage label under which pre-flight lint rejections are classified.
/// Lint is "stage 0": it runs after the netlist is loaded but before any
/// stage engine, so a rejected design fails in milliseconds instead of
/// entering synthesis.
pub const LINT_STAGE: &str = "lint";

/// The stage label under which post-stage verification failures are
/// classified: a stage engine completed, but its artifact failed LEC,
/// phase-legality or LVS-lite re-verification. Like [`LINT_STAGE`]
/// failures, these are deterministic and skip the degraded retry.
pub const VERIFY_STAGE: &str = "verify";

/// A failure inside one attempt, attributed to a stage when one was
/// running. The stage is a label rather than a [`FlowStage`] because the
/// pre-flight lint gate ([`LINT_STAGE`]) fails designs before any engine
/// stage exists.
#[derive(Debug, Clone)]
struct StageFailure {
    stage: Option<String>,
    error: String,
}

impl StageFailure {
    /// A failure attributed to an engine stage.
    fn at(stage: FlowStage, error: String) -> Self {
        Self { stage: Some(stage.name().to_owned()), error }
    }

    /// A failure with no stage attribution (input loading, output writing).
    fn unattributed(error: String) -> Self {
        Self { stage: None, error }
    }
}

/// What a successful attempt reports back.
struct AttemptSuccess {
    resumed_from: Option<FlowStage>,
    checkpoint_hits: usize,
    /// Measured per-stage wall-clock of this attempt, from the session's
    /// accumulators (stages resumed from the journal contribute 0).
    timings: StageTimings,
}

/// The newest intact journal checkpoint a design resumes from.
enum Resume {
    None,
    Synthesized(Synthesized),
    Placed(Placed),
    Routed(Routed),
    Checked(Checked),
}

thread_local! {
    /// Set while an expected (fault-boundary) `catch_unwind` region runs on
    /// this worker, so the panic hook stays quiet: the payload is captured
    /// and classified in the report instead of spamming stderr mid-batch.
    static SILENT_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace for panics the batch fault boundary is about to catch,
/// chaining to the previous hook for every other panic.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SILENT_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` under `catch_unwind`, returning the panic payload as a string.
fn catch_stage_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_panic_hook();
    SILENT_PANICS.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SILENT_PANICS.with(|s| s.set(false));
    result.map_err(|payload| {
        if let Some(message) = payload.downcast_ref::<&str>() {
            (*message).to_owned()
        } else if let Some(message) = payload.downcast_ref::<String>() {
            message.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    })
}

/// The checkpoint file name of a stage artifact.
fn checkpoint_file(stage: FlowStage) -> String {
    format!("{}.json", stage.name())
}

/// Writes `text` to `path` atomically: to a temporary sibling first, then
/// renamed into place, so a crash mid-write can never leave a half-written
/// checkpoint under the final name.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), FlowError> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| FlowError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    std::fs::write(&tmp, bytes).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Executes [`BatchConfig`] over a slice of [`BatchJob`]s; see the
/// [module docs](self) for the fault boundary it maintains around each
/// design.
#[derive(Debug)]
pub struct BatchRunner {
    config: BatchConfig,
}

impl BatchRunner {
    /// Creates a runner for a batch configuration.
    pub fn new(config: BatchConfig) -> Self {
        BatchRunner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Runs every job to a classification. Designs are pulled off a shared
    /// work-stealing queue by `workers` threads over one shared resolved
    /// technology; a design failing (panic, deadline, corrupt checkpoint,
    /// bad input) never stops the others.
    ///
    /// # Errors
    ///
    /// Returns an error only for batch-level problems that make every
    /// design unrunnable: an unresolvable technology
    /// ([`FlowError::Technology`]) or an uncreatable journal/output
    /// directory ([`FlowError::Io`]). Per-design failures are
    /// classifications in the report, not errors.
    pub fn run(&self, jobs: &[BatchJob]) -> Result<BatchReport, FlowError> {
        let start = Instant::now();
        let technology = self.config.flow.resolve_technology()?;
        let workers = effective_workers(self.config.workers, jobs.len());
        for dir in [&self.config.journal_dir, &self.config.output_dir].into_iter().flatten() {
            std::fs::create_dir_all(dir).map_err(|e| FlowError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
        }
        // With several designs in flight and the stage knob on auto, each
        // design gets an equal slice of the core budget: the batch
        // parallelizes across designs first, and N workers × all-cores
        // stage threads would oversubscribe every core.
        let flow = if workers > 1 && self.config.flow.threads() == 0 {
            self.config.flow.clone().with_threads(ThreadBudget::machine().share(workers))
        } else {
            self.config.flow.clone()
        };

        // Predictive pass: static bounds only — no stage engine runs — so
        // it costs O(gates) per design. A design that fails to load or
        // analyse stays unpredicted (`None`); its own attempt will classify
        // the error.
        let predictions: Vec<Option<StageTimings>> = if self.config.predict {
            jobs.iter().map(|job| predict_stages(job, &flow, &technology)).collect()
        } else {
            vec![None; jobs.len()]
        };
        let order = schedule_order(&predictions);

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<DesignReport>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = order.get(next) else { break };
                    let report =
                        self.run_design(&jobs[index], &flow, &technology, predictions[index]);
                    *slots[index].lock().expect("slot lock") = Some(report);
                });
            }
        });
        let designs: Vec<DesignReport> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock").expect("every job slot is filled"))
            .collect();
        let checkpoint_hits = designs.iter().map(|d| d.checkpoint_hits).sum();
        Ok(BatchReport { designs, workers, wall_s: start.elapsed().as_secs_f64(), checkpoint_hits })
    }

    /// Runs one design to a classification: attempt 1 (faults armed,
    /// journal resume), then — if that failed and retry is on — the
    /// degraded attempt 2 (fault-free, from scratch).
    fn run_design(
        &self,
        job: &BatchJob,
        flow: &FlowConfig,
        technology: &Arc<Technology>,
        predicted: Option<StageTimings>,
    ) -> DesignReport {
        let start = Instant::now();
        let first = self.run_attempt(job, flow.clone(), technology, 1, predicted.as_ref());
        let (status, attempts, resumed_from, checkpoint_hits, actual) = match first {
            Ok(success) => (
                DesignStatus::Succeeded,
                1,
                success.resumed_from,
                success.checkpoint_hits,
                Some(success.timings),
            ),
            // Lint rejections and verification failures are deterministic —
            // the degraded retry changes thread counts and repair budgets,
            // not the netlist or the verifier's verdict — so retrying would
            // waste a full flow attempt on a design that fails the same
            // check again.
            Err(failure)
                if self.config.retry_degraded
                    && failure.stage.as_deref() != Some(LINT_STAGE)
                    && failure.stage.as_deref() != Some(VERIFY_STAGE) =>
            {
                match self.run_attempt(
                    job,
                    flow.clone().degraded(),
                    technology,
                    2,
                    predicted.as_ref(),
                ) {
                    Ok(success) => (DesignStatus::Degraded, 2, None, 0, Some(success.timings)),
                    Err(retry_failure) => (
                        DesignStatus::Failed {
                            error: format!(
                                "{}; degraded retry also failed: {}",
                                failure.error, retry_failure.error
                            ),
                            stage: failure.stage,
                            attempts: 2,
                        },
                        2,
                        None,
                        0,
                        None,
                    ),
                }
            }
            Err(failure) => (
                DesignStatus::Failed { error: failure.error, stage: failure.stage, attempts: 1 },
                1,
                None,
                0,
                None,
            ),
        };
        DesignReport {
            name: job.name.clone(),
            status,
            attempts,
            wall_s: start.elapsed().as_secs_f64(),
            resumed_from: resumed_from.map(|s| s.name().to_owned()),
            checkpoint_hits,
            predicted_stage_s: predicted,
            actual_stage_s: actual,
        }
    }

    /// One attempt at one design: resume from the newest intact journal
    /// checkpoint (attempt 1 only), run the remaining stages inside the
    /// fault boundary, checkpoint each, and write the final GDS.
    fn run_attempt(
        &self,
        job: &BatchJob,
        flow: FlowConfig,
        technology: &Arc<Technology>,
        attempt: usize,
        predicted: Option<&StageTimings>,
    ) -> Result<AttemptSuccess, StageFailure> {
        let mut session = FlowSession::with_technology(flow, Arc::clone(technology));
        let journal = self.config.journal_dir.as_ref().map(|dir| dir.join(&job.name));
        if let Some(dir) = &journal {
            std::fs::create_dir_all(dir).map_err(|e| {
                StageFailure::unattributed(format!(
                    "cannot create journal directory `{}`: {e}",
                    dir.display()
                ))
            })?;
        }
        // The degraded retry diagnoses "did the *flow* fail" — it always
        // recomputes from scratch rather than resuming the journal that may
        // itself be the problem (it still refreshes the checkpoints it
        // passes).
        let resume = if attempt == 1 {
            self.load_resume(journal.as_deref(), &session)?
        } else {
            Resume::None
        };
        let mut resumed_from = None;
        let mut checkpoint_hits = 0;

        let checked = match resume {
            Resume::Checked(checked) => {
                resumed_from = Some(FlowStage::Check);
                checkpoint_hits = 4;
                checked
            }
            resume => {
                let routed = match resume {
                    Resume::Routed(routed) => {
                        resumed_from = Some(FlowStage::Routing);
                        checkpoint_hits = 3;
                        routed
                    }
                    resume => {
                        let placed = match resume {
                            Resume::Placed(placed) => {
                                resumed_from = Some(FlowStage::Placement);
                                checkpoint_hits = 2;
                                placed
                            }
                            resume => {
                                let synthesized = match resume {
                                    Resume::Synthesized(synthesized) => {
                                        resumed_from = Some(FlowStage::Synthesis);
                                        checkpoint_hits = 1;
                                        synthesized
                                    }
                                    _ => {
                                        let design = load_design(&job.input).map_err(|e| {
                                            StageFailure::unattributed(error_chain(&e))
                                        })?;
                                        let netlist = design.netlist;
                                        // Stage 0: pre-flight lint. An
                                        // infeasible design is rejected here
                                        // in milliseconds, before any stage
                                        // engine runs.
                                        let lint = session.lint(&netlist);
                                        if lint.has_errors() {
                                            return Err(StageFailure {
                                                stage: Some(LINT_STAGE.to_owned()),
                                                error: error_chain(&FlowError::Lint(lint)),
                                            });
                                        }
                                        let mut synthesized = self.run_stage(
                                            &mut session,
                                            &job.name,
                                            FlowStage::Synthesis,
                                            attempt,
                                            predicted,
                                            |session| session.synthesize(&netlist),
                                        )?;
                                        if self.corrupt_fault_armed(
                                            &job.name,
                                            FlowStage::Synthesis,
                                            attempt,
                                        ) {
                                            aqfp_verify::mutate::corrupt_netlist_gate(
                                                &mut synthesized.synthesis.netlist,
                                            );
                                            self.corrupt_gate(
                                                FlowStage::Synthesis,
                                                session.verify_synthesized(&netlist, &synthesized),
                                            )?;
                                        }
                                        self.write_checkpoint(
                                            journal.as_deref(),
                                            &job.name,
                                            FlowStage::Synthesis,
                                            attempt,
                                            synthesized.to_json(),
                                        )?;
                                        synthesized
                                    }
                                };
                                let mut placed = self.run_stage(
                                    &mut session,
                                    &job.name,
                                    FlowStage::Placement,
                                    attempt,
                                    predicted,
                                    |session| session.place(synthesized),
                                )?;
                                if self.corrupt_fault_armed(
                                    &job.name,
                                    FlowStage::Placement,
                                    attempt,
                                ) {
                                    aqfp_verify::mutate::corrupt_design_phase(
                                        &mut placed.placement.design,
                                    );
                                    self.corrupt_gate(
                                        FlowStage::Placement,
                                        session.verify_placed(&placed),
                                    )?;
                                }
                                self.write_checkpoint(
                                    journal.as_deref(),
                                    &job.name,
                                    FlowStage::Placement,
                                    attempt,
                                    placed.to_json(),
                                )?;
                                placed
                            }
                        };
                        let mut routed = self.run_stage(
                            &mut session,
                            &job.name,
                            FlowStage::Routing,
                            attempt,
                            predicted,
                            |session| session.route(placed),
                        )?;
                        if self.corrupt_fault_armed(&job.name, FlowStage::Routing, attempt) {
                            aqfp_verify::mutate::corrupt_routing(&mut routed.routing);
                            self.corrupt_gate(FlowStage::Routing, session.verify_routed(&routed))?;
                        }
                        self.write_checkpoint(
                            journal.as_deref(),
                            &job.name,
                            FlowStage::Routing,
                            attempt,
                            routed.to_json(),
                        )?;
                        routed
                    }
                };
                let mut checked = self.run_stage(
                    &mut session,
                    &job.name,
                    FlowStage::Check,
                    attempt,
                    predicted,
                    |session| session.check(routed),
                )?;
                if self.corrupt_fault_armed(&job.name, FlowStage::Check, attempt) {
                    aqfp_verify::mutate::corrupt_layout(&mut checked.layout);
                    self.corrupt_gate(FlowStage::Check, session.verify_checked(&checked))?;
                }
                self.write_checkpoint(
                    journal.as_deref(),
                    &job.name,
                    FlowStage::Check,
                    attempt,
                    checked.to_json(),
                )?;
                checked
            }
        };
        session.set_cancel_token(CancelToken::none());
        let report = session.finish(checked);
        self.write_gds(&job.name, &report)?;
        Ok(AttemptSuccess { resumed_from, checkpoint_hits, timings: report.stage_timings })
    }

    /// The cancellation token a stage runs under: an injected zero
    /// deadline, the prediction-scaled slice of the configured stage
    /// budget, the flat budget when there is no forecast, or none. Without
    /// a configured `stage_timeout` a prediction never introduces a
    /// deadline on its own.
    fn stage_token(
        &self,
        design: &str,
        stage: FlowStage,
        attempt: usize,
        predicted: Option<&StageTimings>,
    ) -> CancelToken {
        if attempt == 1 && self.config.faults.matches(design, stage, FaultKind::ZeroDeadline) {
            return CancelToken::with_deadline(Duration::ZERO);
        }
        match self.config.stage_timeout {
            Some(ceiling) => match predicted {
                Some(timings) => {
                    CancelToken::with_deadline(scaled_budget(ceiling, timings.get(stage)))
                }
                None => CancelToken::with_deadline(ceiling),
            },
            None => CancelToken::none(),
        }
    }

    /// Runs one stage inside the fault boundary: deadline armed, injected
    /// panic fired, and any unwind caught and attributed to the stage.
    fn run_stage<T>(
        &self,
        session: &mut FlowSession,
        design: &str,
        stage: FlowStage,
        attempt: usize,
        predicted: Option<&StageTimings>,
        body: impl FnOnce(&mut FlowSession) -> Result<T, FlowError>,
    ) -> Result<T, StageFailure> {
        session.set_cancel_token(self.stage_token(design, stage, attempt, predicted));
        let inject_panic =
            attempt == 1 && self.config.faults.matches(design, stage, FaultKind::Panic);
        let result = catch_stage_panic(move || {
            if inject_panic {
                panic!("injected fault: panic at the {stage} stage");
            }
            body(session)
        });
        match result {
            Ok(Ok(artifact)) => Ok(artifact),
            // The stage engine finished; it was the artifact that failed
            // re-verification. Classify at the verify stage so the report
            // (and the retry policy) can tell "the placer crashed" apart
            // from "the placer produced an illegal design".
            Ok(Err(error @ FlowError::Verify(_))) => Err(StageFailure {
                stage: Some(VERIFY_STAGE.to_owned()),
                error: error_chain(&error),
            }),
            Ok(Err(error)) => Err(StageFailure::at(stage, error_chain(&error))),
            Err(panic_message) => {
                Err(StageFailure::at(stage, format!("stage panicked: {panic_message}")))
            }
        }
    }

    /// Whether an artifact-corruption fault is planned here.
    fn corrupt_fault_armed(&self, design: &str, stage: FlowStage, attempt: usize) -> bool {
        attempt == 1 && self.config.faults.matches(design, stage, FaultKind::CorruptArtifact)
    }

    /// Fails at [`VERIFY_STAGE`] when a post-corruption verification report
    /// carries errors. An injected corruption the verifier *misses* is also
    /// a failure — a corrupt fault exists to prove the verifier catches it.
    fn corrupt_gate(
        &self,
        stage: FlowStage,
        report: aqfp_verify::VerifyReport,
    ) -> Result<(), StageFailure> {
        if report.has_errors() {
            Err(StageFailure {
                stage: Some(VERIFY_STAGE.to_owned()),
                error: error_chain(&FlowError::Verify(report)),
            })
        } else {
            Err(StageFailure {
                stage: Some(VERIFY_STAGE.to_owned()),
                error: format!(
                    "injected corrupt fault at the {stage} stage was not detected by \
                     post-stage verification"
                ),
            })
        }
    }

    /// Journals a stage artifact (atomically), applying the truncation
    /// fault when one is planned.
    fn write_checkpoint(
        &self,
        journal: Option<&Path>,
        design: &str,
        stage: FlowStage,
        attempt: usize,
        json: Result<String, FlowError>,
    ) -> Result<(), StageFailure> {
        let Some(dir) = journal else { return Ok(()) };
        let attribute = |error: String| StageFailure::at(stage, error);
        let json = json.map_err(|e| attribute(error_chain(&e)))?;
        let path = dir.join(checkpoint_file(stage));
        write_atomic(&path, json.as_bytes()).map_err(|e| attribute(error_chain(&e)))?;
        if attempt == 1 && self.config.faults.matches(design, stage, FaultKind::TruncateCheckpoint)
        {
            // Simulate a torn write (the atomic rename protocol prevents
            // real ones): the *next* run over this journal must detect the
            // damage instead of resuming garbage.
            let half = json.len() / 2;
            write_atomic(&path, &json.as_bytes()[..half])
                .map_err(|e| attribute(error_chain(&e)))?;
        }
        Ok(())
    }

    /// Writes the final GDS to the output directory (atomically), when one
    /// is configured.
    fn write_gds(&self, design: &str, report: &FlowReport) -> Result<(), StageFailure> {
        let Some(dir) = &self.config.output_dir else { return Ok(()) };
        let path = dir.join(format!("{design}.gds"));
        write_atomic(&path, &report.layout.to_gds_bytes())
            .map_err(|e| StageFailure::unattributed(error_chain(&e)))
    }

    /// Finds the newest intact checkpoint in a design's journal. A
    /// checkpoint that exists but fails to read, parse, validate, or match
    /// the session's technology fails the attempt — resuming a damaged
    /// journal silently would defeat the byte-identity guarantee.
    fn load_resume(
        &self,
        journal: Option<&Path>,
        session: &FlowSession,
    ) -> Result<Resume, StageFailure> {
        let Some(dir) = journal else { return Ok(Resume::None) };
        for stage in
            [FlowStage::Check, FlowStage::Routing, FlowStage::Placement, FlowStage::Synthesis]
        {
            let path = dir.join(checkpoint_file(stage));
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    return Err(StageFailure::at(
                        stage,
                        format!("cannot read checkpoint `{}`: {e}", path.display()),
                    ))
                }
            };
            let located = |e: FlowError| {
                StageFailure::at(stage, format!("`{}`: {}", path.display(), error_chain(&e)))
            };
            let resume = match stage {
                FlowStage::Synthesis => {
                    Resume::Synthesized(Synthesized::from_json(&text).map_err(located)?)
                }
                FlowStage::Placement => Resume::Placed(Placed::from_json(&text).map_err(located)?),
                FlowStage::Routing => Resume::Routed(Routed::from_json(&text).map_err(located)?),
                FlowStage::Check => {
                    let checked = Checked::from_json(&text).map_err(located)?;
                    // Later stages verify fingerprints themselves when they
                    // consume an artifact; a check-stage resume runs no
                    // further stage, so the mismatch must be caught here.
                    if checked.tech_fingerprint() != session.tech_fingerprint() {
                        return Err(located(FlowError::TechnologyMismatch {
                            expected: session.tech_fingerprint().to_owned(),
                            found: checked.tech_fingerprint().to_owned(),
                        }));
                    }
                    Resume::Checked(checked)
                }
            };
            return Ok(resume);
        }
        Ok(Resume::None)
    }
}

/// Safety margin a predicted stage time is multiplied by to become that
/// stage's deadline: the forecast is a power-law estimate, and host load,
/// shared-core worker splits and DRC-repair iterations all stretch the
/// real run past it.
const BUDGET_MARGIN: f64 = 8.0;

/// Constant slack added on top of the margined prediction, so sub-second
/// forecasts still leave room for journaling and thread spin-up.
const BUDGET_SLACK_S: f64 = 2.0;

/// A prediction-scaled deadline never drops below this fraction of the
/// configured `--stage-timeout` ceiling, bounding the damage of a forecast
/// that is badly low.
const BUDGET_FLOOR: f64 = 0.1;

/// The prediction-scaled deadline for one stage: the forecast times
/// [`BUDGET_MARGIN`] plus [`BUDGET_SLACK_S`], clamped between
/// [`BUDGET_FLOOR`] of the configured ceiling and the ceiling itself — the
/// configured `--stage-timeout` remains a hard upper bound in every case.
fn scaled_budget(ceiling: Duration, predicted_s: f64) -> Duration {
    let ceiling_s = ceiling.as_secs_f64();
    let raw = predicted_s.max(0.0) * BUDGET_MARGIN + BUDGET_SLACK_S;
    Duration::from_secs_f64(raw.clamp(ceiling_s * BUDGET_FLOOR, ceiling_s))
}

/// The per-stage wall-clock forecast for one job: loads the design (a
/// parse, no engine) and maps the predictor's calibrated cost model onto
/// [`StageTimings`]. Any failure — unreadable input, cyclic netlist —
/// yields `None`, leaving the design unscheduled-by-cost; its own attempt
/// will classify the error.
fn predict_stages(
    job: &BatchJob,
    flow: &FlowConfig,
    technology: &Technology,
) -> Option<StageTimings> {
    let design = load_design(&job.input).ok()?;
    let report =
        aqfp_predict::predict(&job.name, &design.netlist, technology, &flow.predict_options());
    let cost = &report.bounds.as_ref()?.cost;
    Some(StageTimings {
        synthesis_s: cost.synthesis_s,
        placement_s: cost.placement_s,
        routing_s: cost.routing_s,
        check_s: cost.check_s,
    })
}

/// The order workers pull jobs in: indices sorted longest-predicted-first.
/// The sort is stable, so designs with equal forecasts keep submission
/// order and unpredicted designs run last, also in submission order.
fn schedule_order(predictions: &[Option<StageTimings>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..predictions.len()).collect();
    order.sort_by(|&a, &b| {
        let total =
            |i: usize| predictions[i].as_ref().map(|t| t.total_s()).unwrap_or(f64::NEG_INFINITY);
        total(b).partial_cmp(&total(a)).unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

/// The worker count a batch actually runs with: the request (or every
/// available core for `0`), capped at the job count, floor 1.
fn effective_workers(requested: usize, jobs: usize) -> usize {
    let auto = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let requested = if requested == 0 { auto } else { requested };
    requested.clamp(1, jobs.max(1))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_parse_and_reject_malformed_input() {
        let fault = Fault::parse("panic:adder8:placement").expect("valid spec");
        assert_eq!(
            fault,
            Fault {
                design: "adder8".to_owned(),
                stage: FlowStage::Placement,
                kind: FaultKind::Panic
            }
        );
        assert_eq!(
            Fault::parse("deadline:c432:routing").expect("valid").kind,
            FaultKind::ZeroDeadline
        );
        assert_eq!(
            Fault::parse("truncate:apc32:synthesis").expect("valid").kind,
            FaultKind::TruncateCheckpoint
        );
        assert_eq!(
            Fault::parse("corrupt:adder8:routing").expect("valid").kind,
            FaultKind::CorruptArtifact
        );
        assert!(Fault::parse("panic:adder8").expect_err("missing stage").contains("kind:design"));
        assert!(Fault::parse("explode:adder8:check").expect_err("bad kind").contains("explode"));
        assert!(Fault::parse("panic:adder8:teardown").expect_err("bad stage").contains("teardown"));
    }

    #[test]
    fn fault_plans_match_exactly() {
        let plan = FaultPlan::none().with(Fault::parse("panic:adder8:placement").unwrap());
        assert!(plan.matches("adder8", FlowStage::Placement, FaultKind::Panic));
        assert!(!plan.matches("adder8", FlowStage::Placement, FaultKind::ZeroDeadline));
        assert!(!plan.matches("adder8", FlowStage::Routing, FaultKind::Panic));
        assert!(!plan.matches("c432", FlowStage::Placement, FaultKind::Panic));
    }

    #[test]
    fn jobs_take_their_name_from_the_input() {
        assert_eq!(BatchJob::from_input("adder8").name, "adder8");
        assert_eq!(BatchJob::from_input("designs/alu.v").name, "alu");
    }

    #[test]
    fn batch_reports_round_trip_through_json() {
        let report = BatchReport {
            designs: vec![
                DesignReport {
                    name: "adder8".to_owned(),
                    status: DesignStatus::Succeeded,
                    attempts: 1,
                    wall_s: 1.25,
                    resumed_from: Some("routing".to_owned()),
                    checkpoint_hits: 3,
                    predicted_stage_s: Some(StageTimings {
                        synthesis_s: 0.05,
                        placement_s: 0.4,
                        routing_s: 0.2,
                        check_s: 0.1,
                    }),
                    actual_stage_s: Some(StageTimings {
                        synthesis_s: 0.04,
                        placement_s: 0.6,
                        routing_s: 0.3,
                        check_s: 0.05,
                    }),
                },
                DesignReport {
                    name: "c432".to_owned(),
                    status: DesignStatus::Degraded,
                    attempts: 2,
                    wall_s: 4.0,
                    resumed_from: None,
                    checkpoint_hits: 0,
                    predicted_stage_s: None,
                    actual_stage_s: Some(StageTimings::default()),
                },
                DesignReport {
                    name: "apc32".to_owned(),
                    status: DesignStatus::Failed {
                        error: "stage panicked: injected".to_owned(),
                        stage: Some("placement".to_owned()),
                        attempts: 1,
                    },
                    attempts: 1,
                    wall_s: 0.5,
                    resumed_from: None,
                    checkpoint_hits: 0,
                    predicted_stage_s: Some(StageTimings {
                        synthesis_s: 0.1,
                        placement_s: 1.0,
                        routing_s: 0.5,
                        check_s: 0.2,
                    }),
                    actual_stage_s: None,
                },
            ],
            workers: 2,
            wall_s: 5.75,
            checkpoint_hits: 3,
        };
        let json = report.to_json().expect("serializes");
        let back = BatchReport::from_json(&json).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.succeeded(), 1);
        assert_eq!(back.degraded(), 1);
        assert_eq!(back.failed(), 1);
        // The predicted-vs-actual pair survives the round trip.
        let first = &back.designs[0];
        assert_eq!(first.predicted_stage_s.map(|t| t.total_s()), Some(0.75));
        assert_eq!(first.actual_stage_s.map(|t| t.placement_s), Some(0.6));
        assert!(BatchReport::from_json("{\"designs\": [").is_err());
    }

    #[test]
    fn scaled_budgets_clamp_between_floor_and_ceiling() {
        let ceiling = Duration::from_secs(100);
        // A tiny forecast gets the floor (a tenth of the ceiling), not the
        // raw 2-second slack.
        assert_eq!(scaled_budget(ceiling, 0.0), Duration::from_secs(10));
        // A mid-range forecast gets margin × prediction + slack.
        assert_eq!(scaled_budget(ceiling, 5.0), Duration::from_secs(42));
        // A huge forecast is capped at the configured ceiling.
        assert_eq!(scaled_budget(ceiling, 50.0), ceiling);
        // A zero ceiling stays a zero deadline (the ZeroDeadline fault
        // semantics are preserved under scaling).
        assert_eq!(scaled_budget(Duration::ZERO, 5.0), Duration::ZERO);
    }

    #[test]
    fn schedule_orders_longest_predicted_first_with_unpredicted_last() {
        let stage = |s: f64| StageTimings { synthesis_s: s, ..StageTimings::default() };
        let predictions = vec![
            Some(stage(1.0)),  // 0
            None,              // 1 — unpredicted, must run last
            Some(stage(10.0)), // 2 — longest, must run first
            Some(stage(1.0)),  // 3 — tie with 0, submission order preserved
            None,              // 4 — unpredicted, after 1
        ];
        assert_eq!(schedule_order(&predictions), vec![2, 0, 3, 1, 4]);
        // Without predictions the queue is submission order.
        assert_eq!(schedule_order(&[None, None, None]), vec![0, 1, 2]);
    }

    #[test]
    fn predict_stages_maps_the_cost_forecast_onto_stage_timings() {
        let flow = FlowConfig::fast();
        let technology = flow.resolve_technology().expect("resolves");
        let job = BatchJob::from_input("adder8");
        let predicted = predict_stages(&job, &flow, &technology).expect("benchmark predicts");
        assert!(predicted.total_s() > 0.0);
        assert!(predicted.placement_s > 0.0);
        // An unloadable input yields no forecast instead of an error.
        let missing = BatchJob::from_input("/no/such/design.v");
        assert!(predict_stages(&missing, &flow, &technology).is_none());
    }

    #[test]
    fn reports_render_the_predicted_vs_measured_pair() {
        let report = BatchReport {
            designs: vec![DesignReport {
                name: "adder8".to_owned(),
                status: DesignStatus::Succeeded,
                attempts: 1,
                wall_s: 1.0,
                resumed_from: None,
                checkpoint_hits: 0,
                predicted_stage_s: Some(StageTimings {
                    synthesis_s: 0.5,
                    ..StageTimings::default()
                }),
                actual_stage_s: Some(StageTimings { placement_s: 0.25, ..StageTimings::default() }),
            }],
            workers: 1,
            wall_s: 1.0,
            checkpoint_hits: 0,
        };
        let rendered = report.render();
        assert!(rendered.contains("predicted 0.5s / measured 0.2s"), "{rendered}");
    }

    #[test]
    fn reports_render_failures_with_their_stage() {
        let report = BatchReport {
            designs: vec![DesignReport {
                name: "apc32".to_owned(),
                status: DesignStatus::Failed {
                    error: "stage panicked: injected".to_owned(),
                    stage: Some("placement".to_owned()),
                    attempts: 1,
                },
                attempts: 1,
                wall_s: 0.5,
                resumed_from: None,
                checkpoint_hits: 0,
                predicted_stage_s: None,
                actual_stage_s: None,
            }],
            workers: 1,
            wall_s: 0.5,
            checkpoint_hits: 0,
        };
        let rendered = report.render();
        assert!(rendered.contains("apc32"), "{rendered}");
        assert!(rendered.contains("failed"), "{rendered}");
        assert!(rendered.contains("at placement"), "{rendered}");
        assert!(rendered.contains("1 failed"), "{rendered}");
    }

    #[test]
    fn error_chains_render_every_source_hop() {
        let error = FlowError::from(aqfp_netlist::parsers::ParseNetlistError {
            line: 7,
            column: 0,
            message: "bad token".to_owned(),
        });
        let chain = error_chain(&error);
        assert!(chain.contains("failed to parse"), "{chain}");
        assert!(chain.contains("caused by:"), "{chain}");
        assert!(chain.contains("bad token"), "{chain}");
    }

    #[test]
    fn worker_counts_are_clamped_to_the_job_count() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 3), 2);
        assert_eq!(effective_workers(1, 0), 1);
        assert!(effective_workers(0, 64) >= 1);
    }
}
