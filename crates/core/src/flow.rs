//! The flow driver: RTL in, GDSII out.

use std::time::Instant;

use aqfp_cells::CellLibrary;
use aqfp_layout::{DrcChecker, DrcViolationKind, LayoutGenerator};
use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
use aqfp_netlist::parsers::{parse_blif, parse_verilog};
use aqfp_netlist::Netlist;
use aqfp_place::buffer_rows::insert_buffer_rows;
use aqfp_place::detailed::detailed_place;
use aqfp_place::legalize::legalize;
use aqfp_place::PlacementEngine;
use aqfp_route::Router;
use aqfp_synth::Synthesizer;

use crate::config::FlowConfig;
use crate::error::FlowError;
use crate::report::FlowReport;

/// The SuperFlow RTL-to-GDS driver (Fig. 3 of the paper).
///
/// A [`Flow`] owns the cell library and the per-stage configuration; every
/// `run_*` method executes the whole pipeline — synthesis, placement,
/// routing, layout generation and DRC with automatic violation repair — and
/// returns a [`FlowReport`].
#[derive(Debug, Clone)]
pub struct Flow {
    library: CellLibrary,
    config: FlowConfig,
}

impl Flow {
    /// Creates a flow with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(FlowConfig::paper_default())
    }

    /// Creates a flow from an explicit configuration.
    pub fn with_config(config: FlowConfig) -> Self {
        Self { library: config.library(), config }
    }

    /// The cell library the flow targets.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The flow configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the flow on a structural-Verilog module (the RTL entry point of
    /// Fig. 3, substituting for the Yosys front-end).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Parse`] for unsupported Verilog and the same
    /// errors as [`Flow::run`] afterwards.
    pub fn run_verilog(&self, source: &str) -> Result<FlowReport, FlowError> {
        let netlist = parse_verilog(source)?;
        self.run(&netlist)
    }

    /// Runs the flow on a gate-level BLIF description.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Parse`] for malformed BLIF and the same errors
    /// as [`Flow::run`] afterwards.
    pub fn run_blif(&self, source: &str) -> Result<FlowReport, FlowError> {
        let netlist = parse_blif(source)?;
        self.run(&netlist)
    }

    /// Runs the flow on one of the paper's benchmark circuits.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Flow::run`]; benchmark generation itself
    /// cannot fail.
    pub fn run_benchmark(&self, benchmark: Benchmark) -> Result<FlowReport, FlowError> {
        self.run(&benchmark_circuit(benchmark))
    }

    /// Runs the complete flow on a gate-level netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidNetlist`] if the input fails validation
    /// and [`FlowError::Synthesis`] if the synthesis stage rejects it.
    pub fn run(&self, netlist: &Netlist) -> Result<FlowReport, FlowError> {
        let start = Instant::now();
        netlist.validate()?;

        // 1. Majority-based logic synthesis, splitter and buffer insertion.
        let synthesizer = Synthesizer::with_options(self.library.clone(), self.config.synthesis);
        let synthesis = synthesizer.run(netlist)?;
        let synthesis_stats = synthesis.stats.clone();

        // 2. Placement (global, legalization, detailed) + buffer rows.
        let engine = PlacementEngine::with_options(self.library.clone(), self.config.placement);
        let mut placement = engine.place(&synthesis, self.config.placer);

        // 3. Layer-wise routing with space expansion.
        let router = Router::with_config(self.library.clone(), self.config.router);
        let mut routing = router.route(&placement.design);

        // 4. Layout generation + DRC, with automatic repair of violations:
        //    spacing problems are fixed by re-legalization, max-wirelength
        //    problems by another round of buffer rows, and both trigger a
        //    reroute before the layout is regenerated.
        let generator = LayoutGenerator::new(self.library.clone());
        let checker = DrcChecker::new(self.library.rules().clone());
        let mut layout = generator.generate(&placement.design, &routing);
        let mut drc = checker.check(&placement.design, &routing);
        let mut drc_iterations = 0;
        while !drc.is_clean() && drc_iterations < self.config.max_drc_iterations {
            drc_iterations += 1;
            if drc.count(DrcViolationKind::CellSpacing) > 0 {
                legalize(&mut placement.design);
            }
            if drc.count(DrcViolationKind::MaxWirelength) > 0 {
                // Split over-long connections with buffer rows, then let the
                // detailed placer pull the new buffers toward their nets so
                // each hop actually fits within the limit.
                insert_buffer_rows(&mut placement.design, &self.library);
                legalize(&mut placement.design);
                detailed_place(&mut placement.design, &self.config.placement.detailed);
            }
            // Unrouted nets and zigzag violations are addressed by rerouting
            // (the router's space expansion kicks in with a fresh channel).
            routing = router.route(&placement.design);
            layout = generator.generate(&placement.design, &routing);
            drc = checker.check(&placement.design, &routing);
        }

        // Refresh the placement metrics in case DRC repair moved cells.
        placement.hpwl_um = placement.design.hpwl();

        Ok(FlowReport {
            design_name: netlist.name().to_owned(),
            synthesis,
            synthesis_stats,
            placement,
            routing,
            drc,
            drc_iterations,
            layout,
            runtime_s: start.elapsed().as_secs_f64(),
        })
    }
}

impl Default for Flow {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_place::PlacerKind;

    fn fast_flow() -> Flow {
        Flow::with_config(FlowConfig::fast())
    }

    #[test]
    fn adder8_runs_end_to_end() {
        let report = fast_flow().run_benchmark(Benchmark::Adder8).expect("flow succeeds");
        assert_eq!(report.design_name, "adder8");
        assert!(report.synthesis_stats.jj_count > 0);
        assert!(report.placement.hpwl_um > 0.0);
        assert!(report.routing.stats.nets_routed > 0);
        assert_eq!(report.routing.stats.failed_nets, 0);
        assert!(report.layout.cell_instances > 0);
        // Geometric rules must be clean after the automatic repair loop.
        // Residual max-wirelength findings can remain when the inserted
        // buffer rows run out of horizontal capacity; they are reported, not
        // hidden.
        for kind in [
            DrcViolationKind::CellSpacing,
            DrcViolationKind::ZigzagSpacing,
            DrcViolationKind::Unrouted,
            DrcViolationKind::MetalDensity,
        ] {
            assert_eq!(report.drc.count(kind), 0, "unexpected {kind:?} violations");
        }
        assert!(!report.summary().is_empty());
        assert!(report.jj_after_routing() >= report.synthesis_stats.jj_count);
    }

    #[test]
    fn verilog_entry_point_works() {
        let source = r#"
            module majority_vote(a, b, c, y);
              input a, b, c;
              output y;
              wire ab, bc, ca, t;
              and g1(ab, a, b);
              and g2(bc, b, c);
              and g3(ca, c, a);
              or g4(t, ab, bc);
              or g5(y, t, ca);
            endmodule
        "#;
        let report = fast_flow().run_verilog(source).expect("flow succeeds");
        assert_eq!(report.design_name, "majority_vote");
        assert!(report.drc.is_clean(), "violations: {:?}", report.drc.violations);
        assert!(report.layout.to_gds_bytes().len() > 100);
    }

    #[test]
    fn blif_entry_point_works() {
        let source = ".model tiny\n.inputs a b\n.outputs y\n.gate AND2 a=a b=b O=y\n.end\n";
        let report = fast_flow().run_blif(source).expect("flow succeeds");
        assert_eq!(report.design_name, "tiny");
        assert!(report.routing.stats.nets_routed > 0);
    }

    #[test]
    fn invalid_verilog_is_rejected() {
        let err = fast_flow().run_verilog("module m(a); input a; flipflop f(a); endmodule");
        assert!(matches!(err, Err(FlowError::Parse(_))));
    }

    #[test]
    fn baseline_placers_run_through_the_same_flow() {
        for placer in [PlacerKind::GordianBased, PlacerKind::Taas] {
            let flow = Flow::with_config(FlowConfig::fast().with_placer(placer));
            let report = flow.run_benchmark(Benchmark::Adder8).expect("flow succeeds");
            assert_eq!(report.placement.placer, placer);
            assert!(report.placement.hpwl_um > 0.0);
        }
    }
}
