//! The flow driver: RTL in, GDSII out.
//!
//! [`Flow`] is the push-button wrapper around the staged
//! [`FlowSession`] API: every `run_*` method opens a
//! session, drives all five stages and returns the final report. Use a
//! session directly to inspect or checkpoint intermediate artifacts, attach
//! observers, or stop after a specific stage.

use std::sync::Arc;

use aqfp_cells::Technology;
use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
use aqfp_netlist::parsers::{parse_blif, parse_verilog};
use aqfp_netlist::Netlist;

use crate::config::FlowConfig;
use crate::error::FlowError;
use crate::report::FlowReport;
use crate::session::FlowSession;

/// The SuperFlow RTL-to-GDS driver (Fig. 3 of the paper).
///
/// A [`Flow`] owns the per-stage configuration, including the technology
/// spec ([`FlowConfig::tech`]); every `run_*` method executes the whole
/// pipeline — synthesis, placement, routing, layout generation and DRC with
/// automatic violation repair — and returns a [`FlowReport`]. Each run is a
/// [`FlowSession`] under the hood, sharing one resolved [`Technology`] by
/// `Arc` across stages and sessions.
#[derive(Debug, Clone)]
pub struct Flow {
    config: FlowConfig,
}

impl Flow {
    /// Creates a flow with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(FlowConfig::paper_default())
    }

    /// Creates a flow from an explicit configuration.
    ///
    /// Construction is infallible: the technology spec is resolved lazily —
    /// each [`Flow::session`] / `run_*` call resolves it afresh (so a
    /// `TechSpec::File` is re-read, and edits to the file take effect on
    /// the next run), and an unresolvable spec (e.g. a missing file) errors
    /// from those calls rather than here.
    pub fn with_config(config: FlowConfig) -> Self {
        Self { config }
    }

    /// Resolves the technology the flow targets.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Technology`] when [`FlowConfig::tech`] cannot
    /// be resolved.
    pub fn technology(&self) -> Result<Arc<Technology>, FlowError> {
        self.config.resolve_technology()
    }

    /// The flow configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Opens a staged session over this flow's configuration and shared
    /// technology, for callers that want to drive (or stop after, or
    /// checkpoint) individual stages.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Technology`] when the technology spec cannot be
    /// resolved.
    pub fn session(&self) -> Result<FlowSession, FlowError> {
        Ok(FlowSession::with_technology(self.config.clone(), self.technology()?))
    }

    /// Runs the flow on a structural-Verilog module (the RTL entry point of
    /// Fig. 3, substituting for the Yosys front-end).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Parse`] for unsupported Verilog and the same
    /// errors as [`Flow::run`] afterwards.
    pub fn run_verilog(&self, source: &str) -> Result<FlowReport, FlowError> {
        let netlist = parse_verilog(source)?;
        self.run(&netlist)
    }

    /// Runs the flow on a gate-level BLIF description.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Parse`] for malformed BLIF and the same errors
    /// as [`Flow::run`] afterwards.
    pub fn run_blif(&self, source: &str) -> Result<FlowReport, FlowError> {
        let netlist = parse_blif(source)?;
        self.run(&netlist)
    }

    /// Runs the flow on one of the paper's benchmark circuits.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Flow::run`]; benchmark generation itself
    /// cannot fail.
    pub fn run_benchmark(&self, benchmark: Benchmark) -> Result<FlowReport, FlowError> {
        self.run(&benchmark_circuit(benchmark))
    }

    /// Runs the complete flow on a gate-level netlist.
    ///
    /// Equivalent to driving a fresh [`FlowSession`] through all of its
    /// stages: synthesize → place → route → check → finish.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Technology`] if the technology spec cannot be
    /// resolved, [`FlowError::InvalidNetlist`] if the input fails validation
    /// and [`FlowError::Synthesis`] if the synthesis stage rejects it.
    pub fn run(&self, netlist: &Netlist) -> Result<FlowReport, FlowError> {
        let mut session = self.session()?;
        let synthesized = session.synthesize(netlist)?;
        let placed = session.place(synthesized)?;
        let routed = session.route(placed)?;
        let checked = session.check(routed)?;
        Ok(session.finish(checked))
    }
}

impl Default for Flow {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::TechSpec;
    use aqfp_layout::DrcViolationKind;
    use aqfp_place::PlacerKind;

    fn fast_flow() -> Flow {
        Flow::with_config(FlowConfig::fast())
    }

    #[test]
    fn adder8_runs_end_to_end() {
        let report = fast_flow().run_benchmark(Benchmark::Adder8).expect("flow succeeds");
        assert_eq!(report.design_name, "adder8");
        assert!(report.synthesis_stats.jj_count > 0);
        assert!(report.placement.hpwl_um > 0.0);
        assert!(report.routing.stats.nets_routed > 0);
        assert_eq!(report.routing.stats.failed_nets, 0);
        assert!(report.layout.cell_instances > 0);
        // Geometric rules must be clean after the automatic repair loop.
        // Residual max-wirelength findings can remain when the inserted
        // buffer rows run out of horizontal capacity; they are reported, not
        // hidden.
        for kind in [
            DrcViolationKind::CellSpacing,
            DrcViolationKind::ZigzagSpacing,
            DrcViolationKind::Unrouted,
            DrcViolationKind::MetalDensity,
        ] {
            assert_eq!(report.drc.count(kind), 0, "unexpected {kind:?} violations");
        }
        assert!(!report.summary().is_empty());
        assert!(report.jj_after_routing() >= report.synthesis_stats.jj_count);
    }

    #[test]
    fn verilog_entry_point_works() {
        let source = r#"
            module majority_vote(a, b, c, y);
              input a, b, c;
              output y;
              wire ab, bc, ca, t;
              and g1(ab, a, b);
              and g2(bc, b, c);
              and g3(ca, c, a);
              or g4(t, ab, bc);
              or g5(y, t, ca);
            endmodule
        "#;
        let report = fast_flow().run_verilog(source).expect("flow succeeds");
        assert_eq!(report.design_name, "majority_vote");
        assert!(report.drc.is_clean(), "violations: {:?}", report.drc.violations);
        assert!(report.layout.to_gds_bytes().len() > 100);
    }

    #[test]
    fn blif_entry_point_works() {
        let source = ".model tiny\n.inputs a b\n.outputs y\n.gate AND2 a=a b=b O=y\n.end\n";
        let report = fast_flow().run_blif(source).expect("flow succeeds");
        assert_eq!(report.design_name, "tiny");
        assert!(report.routing.stats.nets_routed > 0);
    }

    #[test]
    fn invalid_verilog_is_rejected() {
        let err = fast_flow().run_verilog("module m(a); input a; flipflop f(a); endmodule");
        assert!(matches!(err, Err(FlowError::Parse(_))));
    }

    #[test]
    fn baseline_placers_run_through_the_same_flow() {
        for placer in [PlacerKind::GordianBased, PlacerKind::Taas] {
            let flow = Flow::with_config(FlowConfig::fast().with_placer(placer));
            let report = flow.run_benchmark(Benchmark::Adder8).expect("flow succeeds");
            assert_eq!(report.placement.placer, placer);
            assert!(report.placement.hpwl_um > 0.0);
        }
    }

    #[test]
    fn unresolvable_tech_specs_error_at_run_time_not_construction() {
        let config = FlowConfig::fast().with_tech(TechSpec::file("/no/such/tech.toml"));
        let flow = Flow::with_config(config); // infallible
        let err = flow.run_benchmark(Benchmark::Adder8).expect_err("missing tech file");
        assert!(matches!(err, FlowError::Technology(_)), "{err}");
        assert!(flow.session().is_err());
    }
}
