//! The staged flow driver: one session, four inspectable stages.
//!
//! [`FlowSession`] decomposes the push-button [`Flow`](crate::Flow) pipeline
//! (Fig. 3 of the paper) into explicit, resumable stages:
//!
//! ```text
//! synthesize() → Synthesized
//!     place()  → Placed
//!     route()  → Routed
//!     check()  → Checked       (DRC + incremental violation repair)
//!     finish() → FlowReport
//! ```
//!
//! Each stage returns a typed artifact that is **inspectable** (public
//! fields), **serializable** (`to_json`/`from_json` checkpoints) and
//! **resumable**: a deserialized artifact continues through the remaining
//! stages of any session with the same configuration and produces the same
//! final GDS. Every artifact embeds the fingerprint of the technology it
//! was produced under, and the stage methods refuse (with
//! [`FlowError::TechnologyMismatch`]) to resume an artifact into a session
//! targeting a different technology — a checkpoint can never silently mix
//! process data. Stage options may be edited between stages through
//! [`FlowSession::config_mut`].
//!
//! The session shares one [`Technology`] across all stages via `Arc`
//! (instead of cloning it per stage) and repairs DRC violations
//! *incrementally*: legalization and detailed placement report which cells
//! they displaced, buffer-row insertion returns a structured
//! [`DesignEdit`](aqfp_place::DesignEdit) describing its row renumbering,
//! and the session hands both to [`Router::route_partial`], which routes
//! only the affected channels and re-keys every clean one — the result is
//! byte-identical to a from-scratch reroute even across buffer-row
//! insertions. Timing follows the same discipline: the repair loop
//! maintains one structure-of-arrays [`TimingBatch`], appending the nets an
//! edit created and refreshing only the slots it rewrote plus those
//! incident to moved cells, and the final placement report carries the
//! post-repair timing.
//!
//! # Examples
//!
//! ```
//! use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
//! use superflow::{FlowConfig, FlowSession};
//!
//! let mut session = FlowSession::new(FlowConfig::fast())?;
//! let synthesized = session.synthesize(&benchmark_circuit(Benchmark::Adder8))?;
//! println!("{} JJs after synthesis", synthesized.stats().jj_count);
//!
//! let placed = session.place(synthesized)?;
//! let checkpoint = placed.to_json()?; // resumable JSON snapshot
//!
//! let routed = session.route(placed)?;
//! let checked = session.check(routed)?;
//! let report = session.finish(checked);
//! assert!(report.stage_timings.total_s() > 0.0);
//! # let _ = checkpoint;
//! # Ok::<(), superflow::FlowError>(())
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use aqfp_cells::{CancelReason, CancelToken, Technology};
use aqfp_layout::{DrcChecker, DrcReport, DrcViolationKind, Layout, LayoutGenerator};
use aqfp_netlist::{Netlist, NetlistStats};
use aqfp_place::buffer_rows::repair_buffer_rows;
use aqfp_place::legalize::legalize;
use aqfp_place::{
    DetailedPlacementConfig, NetIncidence, PlacedDesign, PlacementEngine, PlacementResult,
};
use aqfp_route::{Router, RoutingResult};
use aqfp_synth::{SynthesizedNetlist, Synthesizer};
use aqfp_timing::{TimingAnalyzer, TimingBatch};
use aqfp_verify::VerifyReport;
use serde::{Deserialize, Serialize};

use crate::config::FlowConfig;
use crate::error::FlowError;
use crate::report::{FlowReport, StageTimings};

/// The stages of the RTL-to-GDS pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowStage {
    /// Majority-based logic synthesis, splitter and buffer insertion.
    Synthesis,
    /// Placement (global, legalization, detailed) plus buffer rows.
    Placement,
    /// Layer-wise channel routing with space expansion.
    Routing,
    /// Layout generation and DRC with automatic violation repair.
    Check,
}

impl FlowStage {
    /// All stages in execution order.
    pub const ALL: [FlowStage; 4] =
        [FlowStage::Synthesis, FlowStage::Placement, FlowStage::Routing, FlowStage::Check];

    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Synthesis => "synthesis",
            FlowStage::Placement => "placement",
            FlowStage::Routing => "routing",
            FlowStage::Check => "check",
        }
    }

    /// Parses a stage from its [`name`](FlowStage::name); the inverse of
    /// `name`, used by the CLI (`--stop-after`, `--fault` specs).
    pub fn parse(name: &str) -> Option<FlowStage> {
        FlowStage::ALL.into_iter().find(|stage| stage.name() == name)
    }
}

/// Runs the full pre-flight static analysis for one design: the lint rules
/// over the netlist plus the predictive feasibility rules (`AQFP-P0xx`) over
/// the bounds [`aqfp_predict::predict`] derives, merged into one
/// severity-ordered report under the shared policy in
/// [`FlowConfig::lint`]. This is the report [`FlowSession::lint`] returns
/// and the `superflow lint` CLI prints.
pub fn lint_design(
    design: &str,
    netlist: &Netlist,
    technology: &Technology,
    config: &FlowConfig,
) -> aqfp_lint::LintReport {
    let mut report =
        aqfp_lint::lint(design, netlist, technology, &config.lint_settings(), &config.lint);
    let prediction = aqfp_predict::predict(design, netlist, technology, &config.predict_options());
    report.diagnostics.extend(prediction.diagnostics);
    report.normalize();
    report
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a DRC-repair iteration brings the routing back in sync with the
/// repaired placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairScope<'a> {
    /// Every channel reroutes from scratch. The built-in repair loop no
    /// longer produces this scope — buffer-row insertion is rerouted
    /// incrementally through its `DesignEdit` — but the variant remains for
    /// observers of external drivers that invalidate the whole routing.
    Full,
    /// Only these channel rows route fresh; every other channel's wires are
    /// reused — verbatim, or re-keyed onto their renumbered rows when a
    /// buffer-row edit shifted them.
    Channels(&'a [usize]),
    /// The repair moved no cells; the previous routing is reused verbatim.
    Unchanged,
}

impl fmt::Display for RepairScope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairScope::Full => f.write_str("full reroute"),
            RepairScope::Channels(rows) => {
                write!(f, "rerouting {} dirty channel(s)", rows.len())
            }
            RepairScope::Unchanged => f.write_str("routing unchanged"),
        }
    }
}

/// Observes a [`FlowSession`]'s progress.
///
/// All methods have empty default bodies, so an observer implements only the
/// events it cares about. Observers are invoked synchronously from the
/// session's stage methods, in registration order.
pub trait FlowObserver {
    /// A stage is about to run.
    fn stage_started(&mut self, _stage: FlowStage) {}

    /// A stage finished after `elapsed_s` seconds of wall-clock time.
    fn stage_finished(&mut self, _stage: FlowStage, _elapsed_s: f64) {}

    /// The DRC-repair loop begins iteration `iteration` (1-based) to fix
    /// `report`; `scope` says how much of the design will be rerouted
    /// afterwards.
    fn drc_iteration(&mut self, _iteration: usize, _report: &DrcReport, _scope: RepairScope<'_>) {}
}

/// Serializes a stage artifact to its JSON checkpoint; `what` names the
/// artifact in the error context.
fn checkpoint_to_json<T: Serialize>(artifact: &T, what: &str) -> Result<String, FlowError> {
    serde_json::to_string_pretty(artifact)
        .map_err(|e| FlowError::Checkpoint(format!("cannot serialize {what} artifact: {e}")))
}

/// Restores a stage artifact from its JSON checkpoint; `what` names the
/// artifact in the error context. Truncated, corrupt or garbage input is a
/// typed [`FlowError::Checkpoint`], never a panic.
fn checkpoint_from_json<T: Deserialize>(text: &str, what: &str) -> Result<T, FlowError> {
    serde_json::from_str(text)
        .map_err(|e| FlowError::Checkpoint(format!("cannot parse {what} checkpoint: {e}")))
}

/// Wraps a [`PlacedDesign::validate_consistent`] failure into the
/// checkpoint error of artifact `what`. JSON that *parses* but carries
/// out-of-bounds indices would otherwise panic deep inside the engines.
fn checkpoint_design_valid(design: &PlacedDesign, what: &str) -> Result<(), FlowError> {
    design.validate_consistent().map_err(|cause| {
        FlowError::Checkpoint(format!("{what} checkpoint is inconsistent: {cause}"))
    })
}

/// The synthesis-stage artifact: the AQFP-legal netlist and its statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Synthesized {
    /// Design name (propagated from the input netlist).
    pub design_name: String,
    /// Fingerprint of the technology the artifact was produced under
    /// ([`Technology::fingerprint`]); later stages refuse to consume the
    /// artifact under a different technology.
    pub tech_fingerprint: String,
    /// The synthesized (majority-converted, buffered, path-balanced)
    /// netlist.
    pub synthesis: SynthesizedNetlist,
}

impl Synthesized {
    /// The stage this artifact completes.
    pub fn stage(&self) -> FlowStage {
        FlowStage::Synthesis
    }

    /// Synthesis statistics: #JJs, #Nets, #Delay (Table II).
    pub fn stats(&self) -> &NetlistStats {
        &self.synthesis.stats
    }

    /// Serializes the artifact to a resumable JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] if serialization fails.
    pub fn to_json(&self) -> Result<String, FlowError> {
        checkpoint_to_json(self, "synthesis")
    }

    /// Restores an artifact from a JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] for malformed (truncated, corrupt
    /// or semantically inconsistent) checkpoints.
    pub fn from_json(text: &str) -> Result<Self, FlowError> {
        let artifact: Self = checkpoint_from_json(text, "synthesis")?;
        artifact.synthesis.netlist.validate().map_err(|e| {
            FlowError::Checkpoint(format!("synthesis checkpoint is inconsistent: {e}"))
        })?;
        if artifact.synthesis.levels.len() != artifact.synthesis.netlist.gate_count() {
            return Err(FlowError::Checkpoint(format!(
                "synthesis checkpoint is inconsistent: {} level entries for {} gates",
                artifact.synthesis.levels.len(),
                artifact.synthesis.netlist.gate_count()
            )));
        }
        Ok(artifact)
    }
}

/// The placement-stage artifact: the synthesis artifact plus the placed
/// design and its quality metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placed {
    /// The synthesis artifact this placement was built from.
    pub synthesized: Synthesized,
    /// Placement result: HPWL, buffer lines, WNS, runtime (Table III).
    pub placement: PlacementResult,
}

impl Placed {
    /// The stage this artifact completes.
    pub fn stage(&self) -> FlowStage {
        FlowStage::Placement
    }

    /// Fingerprint of the technology the artifact was produced under.
    pub fn tech_fingerprint(&self) -> &str {
        &self.synthesized.tech_fingerprint
    }

    /// The placed physical design.
    pub fn design(&self) -> &PlacedDesign {
        &self.placement.design
    }

    /// Serializes the artifact to a resumable JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] if serialization fails.
    pub fn to_json(&self) -> Result<String, FlowError> {
        checkpoint_to_json(self, "placement")
    }

    /// Restores an artifact from a JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] for malformed (truncated, corrupt
    /// or semantically inconsistent) checkpoints.
    pub fn from_json(text: &str) -> Result<Self, FlowError> {
        let artifact: Self = checkpoint_from_json(text, "placement")?;
        checkpoint_design_valid(&artifact.placement.design, "placement")?;
        Ok(artifact)
    }
}

/// The routing-stage artifact: placement plus the routed wires, and the set
/// of channels whose placement has changed since routing.
///
/// The dirty-channel set is what makes DRC repair incremental: when
/// legalization (or a caller editing the placement) moves a cell, only the
/// channels that cell touches are recorded here and rerouted by
/// [`FlowSession::check`]; every clean channel reuses its wires from
/// [`Routed::routing`] byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routed {
    /// The placement artifact this routing was built from.
    pub placed: Placed,
    /// Routing result: routed wirelength, vias, per-channel reports
    /// (Table IV).
    pub routing: RoutingResult,
    /// Channel rows whose placement changed after `routing` was computed
    /// (sorted, deduplicated). [`FlowSession::check`] reroutes exactly these
    /// channels before running DRC.
    pub dirty_channels: Vec<usize>,
}

impl Routed {
    /// The stage this artifact completes.
    pub fn stage(&self) -> FlowStage {
        FlowStage::Routing
    }

    /// Fingerprint of the technology the artifact was produced under.
    pub fn tech_fingerprint(&self) -> &str {
        self.placed.tech_fingerprint()
    }

    /// The placed physical design the wires were routed on.
    pub fn design(&self) -> &PlacedDesign {
        &self.placed.placement.design
    }

    /// Whether any channel needs rerouting before the routing matches the
    /// placement again.
    pub fn is_dirty(&self) -> bool {
        !self.dirty_channels.is_empty()
    }

    /// Records that the placement of `cell` changed, marking the (at most
    /// two) channels the cell touches — the channel above its row, which
    /// carries its driven nets, and the one below, which carries the nets it
    /// sinks — as needing a reroute.
    pub fn mark_cell_moved(&mut self, cell: usize) {
        let row = self.placed.placement.design.cells[cell].row;
        self.mark_channel_dirty(row);
        if row > 0 {
            self.mark_channel_dirty(row - 1);
        }
    }

    /// Marks the channel with driver row `row` as needing a reroute.
    pub fn mark_channel_dirty(&mut self, row: usize) {
        if let Err(position) = self.dirty_channels.binary_search(&row) {
            self.dirty_channels.insert(position, row);
        }
    }

    /// Serializes the artifact to a resumable JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] if serialization fails.
    pub fn to_json(&self) -> Result<String, FlowError> {
        checkpoint_to_json(self, "routing")
    }

    /// Restores an artifact from a JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] for malformed (truncated, corrupt
    /// or semantically inconsistent) checkpoints.
    pub fn from_json(text: &str) -> Result<Self, FlowError> {
        let artifact: Self = checkpoint_from_json(text, "routing")?;
        validate_routed(&artifact, "routing")?;
        Ok(artifact)
    }
}

/// Shared semantic validation of a [`Routed`] artifact (also reused by the
/// check-stage loader): the embedded design must be consistent and every
/// wire and dirty-channel entry must reference it in bounds.
fn validate_routed(routed: &Routed, what: &str) -> Result<(), FlowError> {
    checkpoint_design_valid(routed.design(), what)?;
    let nets = routed.design().net_count();
    for wire in &routed.routing.wires {
        if wire.net >= nets {
            return Err(FlowError::Checkpoint(format!(
                "{what} checkpoint is inconsistent: wire references net {} of {nets}",
                wire.net
            )));
        }
    }
    let rows = routed.design().rows.len();
    for &row in &routed.dirty_channels {
        if row >= rows {
            return Err(FlowError::Checkpoint(format!(
                "{what} checkpoint is inconsistent: dirty channel {row} of {rows} rows"
            )));
        }
    }
    Ok(())
}

/// The check-stage artifact: the (possibly repaired) routed design plus the
/// generated layout and the final DRC report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checked {
    /// The routed artifact after DRC repair (placement and routing reflect
    /// every fix the repair loop applied; the dirty-channel set is empty).
    pub routed: Routed,
    /// The generated GDSII layout.
    pub layout: Layout,
    /// Design-rule-check report after the final layout generation.
    pub drc: DrcReport,
    /// Number of DRC-fix iterations the repair loop executed.
    pub drc_iterations: usize,
}

impl Checked {
    /// The stage this artifact completes.
    pub fn stage(&self) -> FlowStage {
        FlowStage::Check
    }

    /// Fingerprint of the technology the artifact was produced under.
    pub fn tech_fingerprint(&self) -> &str {
        self.routed.tech_fingerprint()
    }

    /// Serializes the artifact to a resumable JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] if serialization fails.
    pub fn to_json(&self) -> Result<String, FlowError> {
        checkpoint_to_json(self, "check")
    }

    /// Restores an artifact from a JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Checkpoint`] for malformed (truncated, corrupt
    /// or semantically inconsistent) checkpoints.
    pub fn from_json(text: &str) -> Result<Self, FlowError> {
        let artifact: Self = checkpoint_from_json(text, "check")?;
        validate_routed(&artifact.routed, "check")?;
        Ok(artifact)
    }
}

/// A staged RTL-to-GDS run: drives the pipeline one stage at a time, shares
/// the technology across stages, notifies observers and collects per-stage
/// timings.
///
/// See the [module documentation](self) for the stage sequence and a full
/// example; [`Flow`](crate::Flow) wraps a session into the original
/// push-button API.
pub struct FlowSession {
    technology: Arc<Technology>,
    /// Cached [`Technology::fingerprint`], stamped into every artifact.
    fingerprint: String,
    config: FlowConfig,
    observers: Vec<Box<dyn FlowObserver>>,
    timings: StageTimings,
    /// Cooperative cancellation: threaded into every engine and polled at
    /// the stage boundaries; see [`FlowSession::set_cancel_token`].
    cancel: CancelToken,
}

impl fmt::Debug for FlowSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowSession")
            .field("config", &self.config)
            .field("observers", &self.observers.len())
            .field("timings", &self.timings)
            .finish()
    }
}

impl FlowSession {
    /// Creates a session, resolving the technology the configuration
    /// selects ([`FlowConfig::tech`]).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Technology`] when the technology spec cannot be
    /// resolved (unknown builtin name, unreadable or invalid file), and
    /// [`FlowError::Lint`] when the setup lint rules (technology geometry,
    /// flow-configuration sanity) find error-severity defects — a bad
    /// configuration is rejected here, before any design is loaded.
    pub fn new(config: FlowConfig) -> Result<Self, FlowError> {
        let technology = config.resolve_technology()?;
        let report =
            aqfp_lint::lint_setup("flow-setup", &technology, &config.lint_settings(), &config.lint);
        if report.has_errors() {
            return Err(FlowError::Lint(report));
        }
        Ok(Self::with_technology(config, technology))
    }

    /// Creates a session around an existing shared technology (so several
    /// sessions — or a [`Flow`](crate::Flow) and its sessions — reuse one
    /// allocation).
    pub fn with_technology(config: FlowConfig, technology: Arc<Technology>) -> Self {
        let fingerprint = technology.fingerprint();
        Self {
            technology,
            fingerprint,
            config,
            observers: Vec::new(),
            timings: StageTimings::default(),
            cancel: CancelToken::none(),
        }
    }

    /// Installs a cooperative [`CancelToken`] for the *following* stage
    /// calls. The token is threaded into the hot loops of the placers, the
    /// router and the DRC checker, and polled at the stage boundaries: when
    /// it fires, the running stage bails out early, its partial result is
    /// discarded, and the stage method returns [`FlowError::Cancelled`] or
    /// [`FlowError::DeadlineExceeded`] depending on the token's reason.
    ///
    /// Typical use is one deadline token per stage
    /// (`session.set_cancel_token(CancelToken::with_deadline(budget))`
    /// before each stage call); [`BatchRunner`](crate::batch::BatchRunner)
    /// does exactly that. Passing [`CancelToken::none`] removes the
    /// deadline.
    pub fn set_cancel_token(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The session's current cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Maps a fired token to the stage error to report; `Ok(())` while the
    /// token is live.
    fn ensure_not_cancelled(&self, stage: FlowStage) -> Result<(), FlowError> {
        match self.cancel.reason() {
            None => Ok(()),
            Some(CancelReason::Cancelled) => Err(FlowError::Cancelled { stage }),
            Some(CancelReason::DeadlineExceeded) => Err(FlowError::DeadlineExceeded { stage }),
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Mutable access to the configuration, for editing stage options
    /// between stages (the next stage call picks up the changes).
    ///
    /// Note that [`FlowConfig::tech`] is fixed once the session exists —
    /// the technology was resolved from it — so only the per-stage options
    /// are meaningful to edit here.
    pub fn config_mut(&mut self) -> &mut FlowConfig {
        &mut self.config
    }

    /// The shared technology all stages target.
    pub fn technology(&self) -> &Arc<Technology> {
        &self.technology
    }

    /// Fingerprint of the session's technology — the value stamped into
    /// every artifact this session produces.
    pub fn tech_fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The detailed-placement configuration the session's repair loop runs
    /// with: the configured options with the technology's timing
    /// coefficients injected, mirroring
    /// `PlacementEngine::effective_detailed`.
    fn effective_detailed(&self) -> DetailedPlacementConfig {
        DetailedPlacementConfig { timing: self.technology.timing, ..self.config.placement.detailed }
    }

    /// Fails with [`FlowError::TechnologyMismatch`] when an artifact from a
    /// different technology is resumed into this session.
    fn ensure_same_technology(&self, found: &str) -> Result<(), FlowError> {
        if found == self.fingerprint {
            Ok(())
        } else {
            Err(FlowError::TechnologyMismatch {
                expected: self.fingerprint.clone(),
                found: found.to_owned(),
            })
        }
    }

    /// Registers an observer for stage and DRC-repair events.
    pub fn add_observer(&mut self, observer: Box<dyn FlowObserver>) {
        self.observers.push(observer);
    }

    /// Per-stage wall-clock timings accumulated so far in this session.
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    /// Runs the full pre-flight static analysis over `netlist` with this
    /// session's technology and policy: the lint rules plus the predictive
    /// feasibility rules (`AQFP-P0xx`), merged into one report. This is the
    /// same check [`FlowSession::synthesize`] gates on; call it directly to
    /// inspect warnings (the gate only refuses on errors).
    pub fn lint(&self, netlist: &Netlist) -> aqfp_lint::LintReport {
        lint_design(netlist.name(), netlist, &self.technology, &self.config)
    }

    /// Fails with [`FlowError::Lint`] when pre-flight lint reports
    /// error-severity findings.
    fn lint_gate(&self, netlist: &Netlist) -> Result<(), FlowError> {
        let report = self.lint(netlist);
        if report.has_errors() {
            Err(FlowError::Lint(report))
        } else {
            Ok(())
        }
    }

    /// Runs logic equivalence checking between the flow's input netlist and
    /// a synthesis artifact. This is the check the synthesis stage gates on
    /// when [`FlowConfig::verify`] is enabled; call it directly to verify a
    /// checkpoint against its original input.
    pub fn verify_synthesized(&self, input: &Netlist, synthesized: &Synthesized) -> VerifyReport {
        let mut report = VerifyReport::clean(synthesized.design_name.clone());
        report.record_check("lec");
        report.extend(aqfp_verify::check_equivalence(
            input,
            &synthesized.synthesis.netlist,
            &self.config.verify,
        ));
        report.normalize();
        report
    }

    /// Re-verifies AQFP phase legality (clocking, fan-out, net coverage) of
    /// a placement artifact from the raw cell/net data.
    pub fn verify_placed(&self, placed: &Placed) -> VerifyReport {
        let mut report = VerifyReport::clean(placed.synthesized.design_name.clone());
        report.record_check("phase");
        report.extend(aqfp_verify::check_placed(
            placed.design(),
            self.config.synthesis.max_splitter_arity,
        ));
        report.normalize();
        report
    }

    /// Re-verifies phase legality plus wire coverage and geometry of a
    /// routing artifact.
    pub fn verify_routed(&self, routed: &Routed) -> VerifyReport {
        let mut report = self.verify_placed(&routed.placed);
        report.extend(aqfp_verify::check_routed(
            routed.design(),
            &routed.routing,
            self.config.router.grid_step_um,
        ));
        report.normalize();
        report
    }

    /// Full post-layout verification of a check artifact: phase legality of
    /// the repaired design and routing, then LVS-lite extraction of the
    /// emitted GDS byte stream against them.
    pub fn verify_checked(&self, checked: &Checked) -> VerifyReport {
        let mut report = self.verify_routed(&checked.routed);
        report.record_check("lvs");
        report.extend(aqfp_verify::check_gds(
            &checked.layout.to_gds_bytes(),
            checked.routed.design(),
            &checked.routed.routing,
            &self.technology,
        ));
        report.normalize();
        report
    }

    /// Fails with [`FlowError::Verify`] when a stage-boundary verification
    /// report carries errors; a no-op when verification is disabled (the
    /// caller checks `enabled` before producing the report).
    fn verify_gate(&self, report: VerifyReport) -> Result<(), FlowError> {
        if report.has_errors() {
            Err(FlowError::Verify(report))
        } else {
            Ok(())
        }
    }

    fn stage_started(&mut self, stage: FlowStage) {
        for observer in &mut self.observers {
            observer.stage_started(stage);
        }
    }

    fn stage_finished(&mut self, stage: FlowStage, elapsed_s: f64) {
        self.timings.record(stage, elapsed_s);
        for observer in &mut self.observers {
            observer.stage_finished(stage, elapsed_s);
        }
    }

    /// Runs logic synthesis (majority conversion, splitter and buffer
    /// insertion, path balancing) on a gate-level netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Lint`] if pre-flight lint finds error-severity
    /// defects (combinational loops, undriven nets, unmappable cell kinds,
    /// ...), [`FlowError::InvalidNetlist`] if the input fails the structural
    /// validation lint does not cover, and [`FlowError::Synthesis`] if the
    /// synthesis stage rejects it.
    pub fn synthesize(&mut self, netlist: &Netlist) -> Result<Synthesized, FlowError> {
        self.ensure_not_cancelled(FlowStage::Synthesis)?;
        self.stage_started(FlowStage::Synthesis);
        let start = Instant::now();
        self.lint_gate(netlist)?;
        netlist.validate()?;
        let synthesizer =
            Synthesizer::with_options(Arc::clone(&self.technology), self.config.synthesis);
        let synthesis = synthesizer.run(netlist)?;
        // Synthesis is not internally cancellable (it is the cheapest
        // stage); a deadline that fired while it ran is still honored here,
        // discarding the result.
        self.ensure_not_cancelled(FlowStage::Synthesis)?;
        self.stage_finished(FlowStage::Synthesis, start.elapsed().as_secs_f64());
        let synthesized = Synthesized {
            design_name: netlist.name().to_owned(),
            tech_fingerprint: self.fingerprint.clone(),
            synthesis,
        };
        if self.config.verify.enabled {
            self.verify_gate(self.verify_synthesized(netlist, &synthesized))?;
        }
        Ok(synthesized)
    }

    /// Runs placement (global, legalization, detailed, buffer rows) with the
    /// placer selected by [`FlowConfig::placer`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::TechnologyMismatch`] when `synthesized` was
    /// produced (or checkpointed) under a different technology.
    pub fn place(&mut self, synthesized: Synthesized) -> Result<Placed, FlowError> {
        self.ensure_same_technology(&synthesized.tech_fingerprint)?;
        self.ensure_not_cancelled(FlowStage::Placement)?;
        self.stage_started(FlowStage::Placement);
        let start = Instant::now();
        let engine =
            PlacementEngine::with_options(Arc::clone(&self.technology), self.config.placement)
                .with_cancel(self.cancel.clone());
        let placement = engine.place(&synthesized.synthesis, self.config.placer);
        // A fired token means `placement` is a partial refinement; discard
        // it instead of letting a half-optimized design masquerade as a
        // stage result.
        self.ensure_not_cancelled(FlowStage::Placement)?;
        self.stage_finished(FlowStage::Placement, start.elapsed().as_secs_f64());
        let placed = Placed { synthesized, placement };
        if self.config.verify.enabled {
            self.verify_gate(self.verify_placed(&placed))?;
        }
        Ok(placed)
    }

    /// Routes every net of the placed design, channel by channel.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::TechnologyMismatch`] when `placed` was produced
    /// (or checkpointed) under a different technology.
    pub fn route(&mut self, placed: Placed) -> Result<Routed, FlowError> {
        self.ensure_same_technology(placed.tech_fingerprint())?;
        self.ensure_not_cancelled(FlowStage::Routing)?;
        self.stage_started(FlowStage::Routing);
        let start = Instant::now();
        let router = Router::with_config(Arc::clone(&self.technology), self.config.router)
            .with_cancel(self.cancel.clone());
        let routing = router.route(&placed.placement.design);
        self.ensure_not_cancelled(FlowStage::Routing)?;
        self.stage_finished(FlowStage::Routing, start.elapsed().as_secs_f64());
        let routed = Routed { placed, routing, dirty_channels: Vec::new() };
        if self.config.verify.enabled {
            self.verify_gate(self.verify_routed(&routed))?;
        }
        Ok(routed)
    }

    /// Generates the layout and runs DRC, repairing violations in place:
    /// spacing problems are fixed by re-legalization, max-wirelength
    /// problems by another round of buffer rows, and both trigger a reroute
    /// before the layout is regenerated.
    ///
    /// Every repair — including buffer-row insertion — is *incremental*.
    /// A spacing fix reroutes only the channels touched by the cells
    /// legalization displaced. A buffer-row fix hands the
    /// [`DesignEdit`](aqfp_place::DesignEdit) that `insert_buffer_rows`
    /// returns to [`Router::route_partial`], which re-keys every clean
    /// channel onto its renumbered row and routes only the channels the
    /// edit created plus those touched by cells the post-insertion
    /// legalization/detailed-placement moved; there is no from-scratch
    /// reroute fallback left in the loop. Either way the routing is
    /// byte-identical to rerouting the repaired design from scratch.
    ///
    /// Timing bookkeeping follows the same discipline: the session keeps
    /// one structure-of-arrays [`TimingBatch`] alive across the repair
    /// loop; a buffer-row edit appends the new nets and refreshes the split
    /// and renumbered slots in place
    /// (`PlacedDesign::extend_timing_batch_for_edit`), and moved cells
    /// refresh just their incident nets over the (rebuilt-on-edit)
    /// incidence map. The final [`PlacementResult::timing`] therefore
    /// reflects the *repaired* placement — bit-identical to a from-scratch
    /// scalar analysis of the final design — instead of going stale the
    /// moment the repair loop moves a cell.
    /// # Errors
    ///
    /// Returns [`FlowError::TechnologyMismatch`] when `routed` was produced
    /// (or checkpointed) under a different technology.
    pub fn check(&mut self, routed: Routed) -> Result<Checked, FlowError> {
        self.ensure_same_technology(routed.tech_fingerprint())?;
        self.ensure_not_cancelled(FlowStage::Check)?;
        self.stage_started(FlowStage::Check);
        let start = Instant::now();
        let Routed { mut placed, mut routing, mut dirty_channels } = routed;
        let generator = LayoutGenerator::new(Arc::clone(&self.technology));
        let checker = DrcChecker::for_technology(&self.technology).with_cancel(self.cancel.clone());
        let router = Router::with_config(Arc::clone(&self.technology), self.config.router)
            .with_cancel(self.cancel.clone());

        // The batched timing state survives the whole repair loop: the SoA
        // batch is refreshed in place (incrementally where possible) instead
        // of re-allocating a `Vec<PlacedNet>` per iteration.
        let analyzer = TimingAnalyzer::for_technology(&self.technology);
        let mut timing_batch = TimingBatch::with_capacity(placed.placement.design.net_count());
        placed.placement.design.fill_timing_batch(&mut timing_batch);
        let mut incidence = NetIncidence::build(&placed.placement.design);

        // The caller may have edited the placement since routing (that is
        // what the dirty-channel set records); bring the routing up to date
        // before checking anything.
        if !dirty_channels.is_empty() {
            routing =
                router.route_partial(&placed.placement.design, &routing, &dirty_channels, None);
            dirty_channels.clear();
        }

        let mut layout = generator.generate(&placed.placement.design, &routing);
        let mut drc = checker.check(&placed.placement.design, &routing);
        let mut drc_iterations = 0;
        while !drc.is_clean() && drc_iterations < self.config.max_drc_iterations {
            // The repair loop is the flow's classic runaway: each iteration
            // legalizes, re-places, reroutes and re-checks, so this is where
            // a deadline must be able to step in between iterations.
            self.ensure_not_cancelled(FlowStage::Check)?;
            drc_iterations += 1;
            let design = &mut placed.placement.design;
            let mut moved_cells: Vec<usize> = Vec::new();
            if drc.count(DrcViolationKind::CellSpacing) > 0 {
                // Spacing problems are fixed by re-legalization; only the
                // channels the displaced cells touch need rerouting.
                moved_cells.extend(legalize(design).moved_cells);
            }
            let mut edit: Option<aqfp_place::DesignEdit> = None;
            if drc.count(DrcViolationKind::MaxWirelength) > 0 {
                // Split over-long connections with buffer rows, re-legalize,
                // and let a *scoped* detailed-placement pass pull the new
                // buffers toward their nets so each hop actually fits within
                // the limit — only the inserted rows and the gap-boundary
                // rows are swept, so the already-optimized rest of the
                // design stays put and the dirty-channel set below stays
                // bounded by the edit. The returned `DesignEdit` records
                // the row renumbering and the appended cells/nets, and the
                // moved-cell list covers both follow-up passes, so the
                // reroute and the timing refresh below stay incremental.
                let (_, buffer_edit, repair_moved) =
                    repair_buffer_rows(design, &self.technology, &self.effective_detailed());
                moved_cells.extend(repair_moved);
                if !buffer_edit.is_noop() {
                    edit = Some(buffer_edit);
                }
            }
            moved_cells.sort_unstable();
            moved_cells.dedup();
            // Keep the timing batch in sync with the repaired placement: a
            // buffer-row edit appends the new nets and refreshes the split
            // and renumbered slots in place (the incidence map is rebuilt —
            // cell/net indices grew), then the moved cells refresh just
            // their incident nets.
            if let Some(edit) = &edit {
                design.extend_timing_batch_for_edit(&mut timing_batch, edit);
                incidence = NetIncidence::build(design);
            }
            if !moved_cells.is_empty() {
                design.refresh_timing_batch(&mut timing_batch, &incidence, &moved_cells);
            }
            // Dirty channels: the ones the buffer edit created or rewrote
            // plus the (at most two) channels each moved cell touches. Cell
            // rows are read *after* every repair of this iteration, so the
            // set is in the current row numbering either way.
            let mut dirty_rows: BTreeSet<usize> = BTreeSet::new();
            if let Some(edit) = &edit {
                dirty_rows.extend(edit.edited_channel_rows());
            }
            for &cell in &moved_cells {
                let row = design.cells[cell].row;
                dirty_rows.insert(row);
                if row > 0 {
                    dirty_rows.insert(row - 1);
                }
            }
            let dirty: Vec<usize> = dirty_rows.into_iter().collect();
            let scope = if dirty.is_empty() {
                RepairScope::Unchanged
            } else {
                RepairScope::Channels(&dirty)
            };
            for observer in &mut self.observers {
                observer.drc_iteration(drc_iterations, &drc, scope);
            }
            if scope == RepairScope::Unchanged {
                // The repair moved nothing: rerouting, layout and DRC would
                // all reproduce themselves exactly (routing is
                // deterministic), so the loop has reached a fixed point and
                // further iterations cannot make progress. The remaining
                // violations are reported, not hidden.
                break;
            }
            // Unrouted nets and zigzag violations are addressed by
            // rerouting (the router's space expansion kicks in with a fresh
            // channel); untouched channels are reused verbatim — re-keyed
            // onto their renumbered rows when the edit shifted them.
            routing =
                router.route_partial(&placed.placement.design, &routing, &dirty, edit.as_ref());
            layout = generator.generate(&placed.placement.design, &routing);
            drc = checker.check(&placed.placement.design, &routing);
        }

        // Refresh the placement metrics in case DRC repair moved cells. The
        // timing report re-runs on the incrementally maintained batch, so it
        // matches the repaired design exactly without rebuilding the net
        // view.
        placed.placement.hpwl_um = placed.placement.design.hpwl();
        placed.placement.timing =
            analyzer.analyze_batch(&timing_batch, placed.placement.design.layer_width().max(1.0));

        self.ensure_not_cancelled(FlowStage::Check)?;
        self.stage_finished(FlowStage::Check, start.elapsed().as_secs_f64());
        let checked = Checked {
            routed: Routed { placed, routing, dirty_channels },
            layout,
            drc,
            drc_iterations,
        };
        if self.config.verify.enabled {
            self.verify_gate(self.verify_checked(&checked))?;
        }
        Ok(checked)
    }

    /// Assembles the final [`FlowReport`] from the check-stage artifact,
    /// folding in the per-stage timings this session collected. The timing
    /// accumulators reset afterwards, so a session reused for another run
    /// starts timing from zero.
    ///
    /// When a session resumes from a deserialized checkpoint, the timings
    /// cover only the stages this session actually executed.
    pub fn finish(&mut self, checked: Checked) -> FlowReport {
        let Checked { routed, layout, drc, drc_iterations } = checked;
        let Routed { placed, routing, .. } = routed;
        let Placed { synthesized, placement } = placed;
        let stage_timings = std::mem::take(&mut self.timings);
        FlowReport {
            design_name: synthesized.design_name,
            synthesis_stats: synthesized.synthesis.stats.clone(),
            synthesis: synthesized.synthesis,
            placement,
            routing,
            drc,
            drc_iterations,
            layout,
            stage_timings,
            runtime_s: stage_timings.total_s(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_netlist::generators::{benchmark_circuit, Benchmark};

    /// Records every observer event as a string, for order assertions.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl FlowObserver for Recorder {
        fn stage_started(&mut self, stage: FlowStage) {
            self.events.push(format!("start:{stage}"));
        }
        fn stage_finished(&mut self, stage: FlowStage, elapsed_s: f64) {
            assert!(elapsed_s >= 0.0);
            self.events.push(format!("finish:{stage}"));
        }
        fn drc_iteration(&mut self, iteration: usize, report: &DrcReport, scope: RepairScope<'_>) {
            self.events.push(format!(
                "drc:{iteration}:{violations}:{scope}",
                violations = report.violations.len(),
            ));
        }
    }

    /// An observer shim sharing the recorder through a cell so the test can
    /// read the events after the session consumed the box.
    struct SharedRecorder(std::rc::Rc<std::cell::RefCell<Recorder>>);

    impl FlowObserver for SharedRecorder {
        fn stage_started(&mut self, stage: FlowStage) {
            self.0.borrow_mut().stage_started(stage);
        }
        fn stage_finished(&mut self, stage: FlowStage, elapsed_s: f64) {
            self.0.borrow_mut().stage_finished(stage, elapsed_s);
        }
        fn drc_iteration(&mut self, iteration: usize, report: &DrcReport, scope: RepairScope<'_>) {
            self.0.borrow_mut().drc_iteration(iteration, report, scope);
        }
    }

    #[test]
    fn stages_run_in_order_and_notify_observers() {
        let recorder = std::rc::Rc::new(std::cell::RefCell::new(Recorder::default()));
        let mut session = FlowSession::new(FlowConfig::fast()).expect("session opens");
        session.add_observer(Box::new(SharedRecorder(std::rc::Rc::clone(&recorder))));

        let netlist = benchmark_circuit(Benchmark::Adder8);
        let synthesized = session.synthesize(&netlist).expect("synthesis succeeds");
        assert_eq!(synthesized.stage(), FlowStage::Synthesis);
        let placed = session.place(synthesized).expect("placement succeeds");
        assert!(placed.design().cell_count() > 0);
        let routed = session.route(placed).expect("routing succeeds");
        assert!(!routed.is_dirty());
        let checked = session.check(routed).expect("check succeeds");
        assert_eq!(checked.stage(), FlowStage::Check);
        let report = session.finish(checked);
        assert_eq!(report.design_name, "adder8");
        assert!(report.stage_timings.total_s() > 0.0);
        assert!((report.runtime_s - report.stage_timings.total_s()).abs() < 1e-12);

        let events = recorder.borrow().events.clone();
        let stage_events: Vec<&String> = events.iter().filter(|e| !e.starts_with("drc:")).collect();
        assert_eq!(
            stage_events,
            vec![
                "start:synthesis",
                "finish:synthesis",
                "start:placement",
                "finish:placement",
                "start:routing",
                "finish:routing",
                "start:check",
                "finish:check"
            ]
        );
    }

    #[test]
    fn session_report_matches_the_push_button_flow() {
        let netlist = benchmark_circuit(Benchmark::Adder8);
        let push_button =
            crate::Flow::with_config(FlowConfig::fast()).run(&netlist).expect("flow runs");

        let mut session = FlowSession::new(FlowConfig::fast()).expect("session opens");
        let synthesized = session.synthesize(&netlist).expect("synthesis succeeds");
        let placed = session.place(synthesized).expect("placement succeeds");
        let routed = session.route(placed).expect("routing succeeds");
        let checked = session.check(routed).expect("check succeeds");
        let staged = session.finish(checked);

        assert_eq!(push_button.layout.to_gds_bytes(), staged.layout.to_gds_bytes());
        assert_eq!(push_button.routing, staged.routing);
        assert_eq!(push_button.drc, staged.drc);
        assert_eq!(push_button.drc_iterations, staged.drc_iterations);
    }

    #[test]
    fn options_can_change_between_stages() {
        let mut session = FlowSession::new(FlowConfig::fast()).expect("session opens");
        let synthesized = session.synthesize(&benchmark_circuit(Benchmark::Adder8)).expect("ok");
        // Force strictly serial routing from this point on; the routed
        // result must be identical either way.
        session.config_mut().router.threads = 1;
        let placed = session.place(synthesized).expect("placement succeeds");
        let routed = session.route(placed).expect("routing succeeds");
        assert_eq!(routed.routing.stats.failed_nets, 0);
    }

    #[test]
    fn post_check_timing_matches_a_fresh_scalar_analysis() {
        let mut session = FlowSession::new(FlowConfig::fast()).expect("session opens");
        let synthesized = session.synthesize(&benchmark_circuit(Benchmark::Adder8)).expect("ok");
        let placed = session.place(synthesized).expect("placement succeeds");
        let routed = session.route(placed).expect("routing succeeds");
        let checked = session.check(routed).expect("check succeeds");

        let design = &checked.routed.placed.placement.design;
        let analyzer = TimingAnalyzer::for_technology(session.technology());
        let fresh = analyzer.analyze(&design.to_placed_nets(), design.layer_width().max(1.0));
        let incremental = &checked.routed.placed.placement.timing;
        assert_eq!(
            fresh.wns_ps.to_bits(),
            incremental.wns_ps.to_bits(),
            "incrementally maintained timing must be bit-identical to a rebuild"
        );
        assert_eq!(&fresh, incremental);
    }

    #[test]
    fn a_verified_session_passes_every_stage_gate() {
        let config = FlowConfig::fast()
            .with_verify(aqfp_verify::VerifyConfig { enabled: true, ..Default::default() });
        let mut session = FlowSession::new(config).expect("session opens");
        let netlist = benchmark_circuit(Benchmark::Adder8);
        let synthesized = session.synthesize(&netlist).expect("synthesis verifies");
        let placed = session.place(synthesized).expect("placement verifies");
        let routed = session.route(placed).expect("routing verifies");
        let checked = session.check(routed).expect("check verifies");
        // The public verify methods agree with the gates.
        let report = session.verify_checked(&checked);
        assert!(!report.has_errors(), "{}", report.render());
        assert!(report.ran("phase") && report.ran("lvs"));
    }

    #[test]
    fn a_corrupted_artifact_fails_its_stage_gate_with_verify() {
        let config = FlowConfig::fast()
            .with_verify(aqfp_verify::VerifyConfig { enabled: true, ..Default::default() });
        let mut session = FlowSession::new(config).expect("session opens");
        let netlist = benchmark_circuit(Benchmark::Adder8);
        let synthesized = session.synthesize(&netlist).expect("synthesis verifies");
        let mut placed = session.place(synthesized).expect("placement verifies");
        let corrupted = aqfp_verify::mutate::corrupt_design_phase(&mut placed.placement.design)
            .expect("adder has a net to corrupt");
        let error = session.route(placed).expect_err("phase defect must fail routing gate");
        match error {
            FlowError::Verify(report) => {
                assert!(
                    report.mentions(aqfp_verify::phase::RULE_PHASE_SKEW),
                    "{}",
                    report.render()
                );
                assert!(
                    report.diagnostics.iter().any(|d| d.message.contains(&format!("n{corrupted}"))),
                    "finding names the corrupted net: {}",
                    report.render()
                );
            }
            other => panic!("expected FlowError::Verify, got {other:?}"),
        }
    }

    #[test]
    fn marking_a_moved_cell_dirties_its_two_channels() {
        let mut session = FlowSession::new(FlowConfig::fast()).expect("session opens");
        let synthesized = session.synthesize(&benchmark_circuit(Benchmark::Adder8)).expect("ok");
        let placed = session.place(synthesized).expect("placement succeeds");
        let mut routed = session.route(placed).expect("routing succeeds");
        let cell = routed.design().rows[3][0];
        routed.mark_cell_moved(cell);
        assert_eq!(routed.dirty_channels, vec![2, 3]);
        // Marking again is idempotent.
        routed.mark_cell_moved(cell);
        assert_eq!(routed.dirty_channels, vec![2, 3]);
    }
}
