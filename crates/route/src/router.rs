//! The channel-by-channel router with space expansion (Algorithm 1).
//!
//! # Performance
//!
//! The hot loop is engineered around three ideas (see the crate docs for the
//! full design notes):
//!
//! 1. **Zero-allocation search** — every A* runs inside a per-worker
//!    [`SearchScratch`] arena, so the search itself performs no heap
//!    allocation; routed paths are appended to a pre-reserved per-channel
//!    point arena and referenced by span (arena growth only occurs under
//!    heavy rip-up churn, never per routed net).
//! 2. **Incremental space expansion** — when a channel runs out of capacity
//!    the grid grows by one track and already-routed nets are *kept*: their
//!    sink-side terminals are extended by one vertical step instead of
//!    throwing the whole channel away and rerouting it from scratch. Before
//!    expanding, the router first tries rip-up-and-reroute: a penalty-mode
//!    A* finds the cheapest path through occupied edges, the (few) blocking
//!    nets are ripped up, the failed net takes the freed path, and the
//!    blockers are rerouted.
//! 3. **Parallel channels** — inter-phase channels share no routing
//!    resources, so they are distributed over a worker pool
//!    ([`RouterConfig::threads`]) and merged in row order. Each channel is
//!    routed by the same sequential procedure regardless of the thread
//!    count, so serial and parallel runs produce identical results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use aqfp_cells::{CancelToken, Point, Technology};
use aqfp_place::parallel::effective_threads;
use aqfp_place::{DesignEdit, PlacedDesign};
use serde::{Deserialize, Serialize};

use crate::grid::{ChannelGrid, GridPoint, SearchScratch};

/// Upper bound on how many nets one rip-up event may displace; pricier
/// conflicts fall through to space expansion instead.
const MAX_RIP_UP_BLOCKERS: usize = 8;

/// Once this many nets have failed in one routing round, further rip-up
/// attempts are skipped for the round: the congestion is structural and the
/// penalty searches would only burn time before the inevitable expansion.
const MAX_RIP_UP_ROUND_FAILURES: usize = 4;

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Routing grid pitch in µm; wires only turn on this grid (the paper's
    /// dynamic step size, equal to the process minimum spacing).
    pub grid_step_um: f64,
    /// Initial number of routing tracks per channel (derived from the row
    /// pitch when 0).
    pub initial_tracks: usize,
    /// Maximum space expansions per channel before giving up.
    pub max_expansions: usize,
    /// Worker threads for channel-level parallel routing. `0` uses every
    /// available core; `1` routes strictly serially. The routed result is
    /// identical for every thread count.
    pub threads: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { grid_step_um: 10.0, initial_tracks: 0, max_expansions: 64, threads: 0 }
    }
}

/// One routed net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedWire {
    /// Index of the net in [`PlacedDesign::nets`].
    pub net: usize,
    /// The wire path in absolute layout coordinates (µm), including both
    /// pin endpoints.
    pub path: Vec<Point>,
    /// Total routed length in µm.
    pub length_um: f64,
    /// Number of vias (direction changes between the two wiring layers).
    pub via_count: usize,
}

/// Per-channel routing report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelReport {
    /// The driver row of the channel (nets go from this row to the next).
    pub row: usize,
    /// Nets routed through the channel.
    pub nets: usize,
    /// Space expansions applied before the channel became routable.
    pub expansions: usize,
    /// Final number of tracks in the channel.
    pub tracks: usize,
    /// Fraction of horizontal-layer capacity in use after routing.
    pub utilization: f64,
}

/// Aggregate routing statistics (the quantities Table IV reports, except the
/// JJ count which is a property of the placed cells).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Nets successfully routed.
    pub nets_routed: usize,
    /// Nets that could not be routed within the expansion limit.
    pub failed_nets: usize,
    /// Total routed wirelength in µm.
    pub total_wirelength_um: f64,
    /// Total via count.
    pub total_vias: usize,
    /// Total space expansions across all channels.
    pub space_expansions: usize,
}

/// The result of routing a placed design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingResult {
    /// Every routed wire.
    pub wires: Vec<RoutedWire>,
    /// Aggregate statistics.
    pub stats: RoutingStats,
    /// Per-channel reports.
    pub channels: Vec<ChannelReport>,
    /// Josephson junctions in the routed design (all placed cells, including
    /// buffers added by synthesis and placement).
    pub jj_count: usize,
    /// Width of the routing grid (in columns) the result was routed on.
    /// [`Router::route_partial`] reuses a channel's wires only while the
    /// grid the new design derives still has this column count.
    pub grid_columns: i64,
}

/// A net assigned to a channel, with its resolved pin columns.
#[derive(Debug, Clone, Copy)]
struct ChannelNet {
    /// Index into [`PlacedDesign::nets`].
    net: usize,
    /// Driver pin column on track 0.
    start_col: i64,
    /// Sink pin column on the top track.
    goal_col: i64,
}

/// One channel's routing work item.
#[derive(Debug, Clone)]
struct ChannelJob {
    row: usize,
    y_base: f64,
    nets: Vec<ChannelNet>,
}

/// The result of routing one channel.
#[derive(Debug)]
struct ChannelOutcome {
    report: ChannelReport,
    wires: Vec<RoutedWire>,
}

/// The layer-wise AQFP router.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone)]
pub struct Router {
    technology: Arc<Technology>,
    config: RouterConfig,
    cancel: CancelToken,
}

impl Router {
    /// Creates a router with default configuration for the given
    /// technology. Accepts either an owned [`Technology`] or a shared
    /// `Arc<Technology>` (the flow driver shares one technology across all
    /// stages).
    pub fn new(technology: impl Into<Arc<Technology>>) -> Self {
        let technology = technology.into();
        let config =
            RouterConfig { grid_step_um: technology.rules().min_spacing, ..Default::default() };
        Self { technology, config, cancel: CancelToken::none() }
    }

    /// Creates a router with an explicit configuration.
    pub fn with_config(technology: impl Into<Arc<Technology>>, config: RouterConfig) -> Self {
        Self { technology: technology.into(), config, cancel: CancelToken::none() }
    }

    /// Attaches a cooperative [`CancelToken`]: it is polled before each
    /// channel job and once per space-expansion round inside a channel.
    /// After it fires, the remaining channels produce empty outcomes (their
    /// nets count as failed), so the router still returns promptly with a
    /// well-formed — but partial — [`RoutingResult`] the caller is expected
    /// to discard.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The technology the router targets.
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// The router configuration.
    pub fn config(&self) -> RouterConfig {
        self.config
    }

    /// Routes every net of a placed design, channel by channel.
    pub fn route(&self, design: &PlacedDesign) -> RoutingResult {
        let (step, columns, initial_tracks, auto_tracks) = self.grid_params(design);
        let jobs = build_channel_jobs(design, step, columns);
        let outcomes = self.route_channels(&jobs, columns, initial_tracks, auto_tracks, step);
        self.assemble(outcomes, design, columns)
    }

    /// Reroutes only the channels whose driver row is in `dirty_rows`,
    /// reusing every other channel's wires and report from `previous`.
    ///
    /// This is the flow's incremental DRC-repair entry point. Two kinds of
    /// repair feed it:
    ///
    /// * **Pure moves** (`edit: None`) — legalization or detailed placement
    ///   displaced cells without touching the row or net numbering. The
    ///   flow maps each moved cell to the (at most two) channels it
    ///   touches; only those channels reroute.
    /// * **Buffer-row edits** (`edit: Some`) — `insert_buffer_rows`
    ///   renumbered rows and appended cells/nets. The edit's row remap
    ///   re-keys every clean channel to its new row index (reports take the
    ///   new row, wires translate vertically onto the channel's new track
    ///   base); only the channels the edit created or rewrote
    ///   ([`DesignEdit::edited_channel_rows`] — callers pass them inside
    ///   `dirty_rows`) and the channels of cells the post-edit
    ///   legalize/detailed-place pass moved are routed fresh.
    ///
    /// Channel routing is deterministic and channels share no routing
    /// state, so the result is byte-identical to a from-scratch
    /// [`Router::route`] of the same design in both modes.
    ///
    /// The byte-identical guarantee requires `dirty_rows` to cover every
    /// channel whose cells moved since `previous` was routed — a channel
    /// wrongly reported clean keeps its stale wires. Grid-shape drift is
    /// handled defensively on top of that: when the column count changed (a
    /// moved or inserted cell widened the layer), the net list changed in a
    /// way the edit does not describe, or a supposedly clean channel
    /// disagrees with its previous report, the affected channels reroute
    /// from scratch.
    pub fn route_partial(
        &self,
        design: &PlacedDesign,
        previous: &RoutingResult,
        dirty_rows: &[usize],
        edit: Option<&DesignEdit>,
    ) -> RoutingResult {
        let (step, columns, initial_tracks, auto_tracks) = self.grid_params(design);
        let previous_nets = previous.stats.nets_routed + previous.stats.failed_nets;
        // The nets `previous` covered must be exactly the pre-edit nets
        // (all of today's nets when there was no edit).
        let expected_nets = edit.map_or(design.net_count(), |edit| edit.first_new_net);
        let rows_consistent = edit.is_none_or(|edit| {
            edit.row_count == design.rows.len()
                && edit.row_remap.last().is_none_or(|&last| last < edit.row_count)
        });
        if columns != previous.grid_columns || previous_nets != expected_nets || !rows_consistent {
            return self.route(design);
        }

        // New row → old row; identity when no edit renumbered the rows.
        let new_to_old: Vec<Option<usize>> = match edit {
            Some(edit) => edit.inverse_row_remap(),
            None => (0..design.rows.len()).map(Some).collect(),
        };

        let mut dirty: std::collections::BTreeSet<usize> = dirty_rows.iter().copied().collect();
        if let Some(edit) = edit {
            // The channels the edit created or rewrote carry new or
            // renumbered nets and can never reuse previous wires; fold them
            // in here so the guarantee does not depend on the caller
            // remembering to.
            dirty.extend(edit.edited_channel_rows());
        }
        // Previous reports keyed by their *old* row index.
        let previous_reports: std::collections::BTreeMap<usize, ChannelReport> =
            previous.channels.iter().map(|report| (report.row, *report)).collect();
        // Previous wires grouped by their *new* channel row, skipping the
        // dirty rows whose wires are about to be replaced anyway. Mapping
        // through the current design is correct in both modes: pure moves
        // never change a driver's row, and under an edit a pre-existing
        // net's driver either kept its cell (row remapped with the channel)
        // or became a buffer in an edited — hence dirty — channel.
        let mut previous_wires: std::collections::BTreeMap<usize, Vec<RoutedWire>> =
            Default::default();
        for wire in &previous.wires {
            let row = design.cells[design.nets[wire.net].driver].row;
            if !dirty.contains(&row) {
                previous_wires.entry(row).or_default().push(wire.clone());
            }
        }

        let jobs = build_channel_jobs(design, step, columns);
        let (dirty_jobs, clean_jobs): (Vec<ChannelJob>, Vec<ChannelJob>) =
            jobs.into_iter().partition(|job| {
                dirty.contains(&job.row)
                    || new_to_old[job.row].is_none()
                    || previous_reports
                        .get(&new_to_old[job.row].expect("checked above"))
                        .is_none_or(|report| report.nets != job.nets.len())
            });

        let mut outcomes =
            self.route_channels(&dirty_jobs, columns, initial_tracks, auto_tracks, step);
        for job in &clean_jobs {
            let old_row = new_to_old[job.row].expect("clean channels map to a previous row");
            let mut report = previous_reports[&old_row];
            report.row = job.row;
            let wires = previous_wires.remove(&job.row).unwrap_or_default();
            outcomes.push(ChannelOutcome { report, wires: rekey_wires(wires, job.y_base, step) });
        }
        outcomes.sort_by_key(|outcome| outcome.report.row);
        self.assemble(outcomes, design, columns)
    }

    /// The grid parameters a design derives under this configuration:
    /// `(step, columns, initial_tracks, auto_tracks)`.
    fn grid_params(&self, design: &PlacedDesign) -> (f64, i64, i64, bool) {
        let step = self.config.grid_step_um.max(1.0);
        let columns = ((design.layer_width() / step).ceil() as i64 + 2).max(2);
        let (initial_tracks, auto_tracks) = if self.config.initial_tracks >= 2 {
            (self.config.initial_tracks as i64, false)
        } else {
            (((design.row_pitch / step).round() as i64).max(2), true)
        };
        (step, columns, initial_tracks, auto_tracks)
    }

    /// Merges per-channel outcomes (already in row order, or sorted by the
    /// caller) into the final result.
    fn assemble(
        &self,
        outcomes: Vec<ChannelOutcome>,
        design: &PlacedDesign,
        columns: i64,
    ) -> RoutingResult {
        let mut wires = Vec::with_capacity(design.nets.len());
        let mut channel_reports = Vec::with_capacity(outcomes.len());
        let mut stats = RoutingStats {
            nets_routed: 0,
            failed_nets: 0,
            total_wirelength_um: 0.0,
            total_vias: 0,
            space_expansions: 0,
        };
        // Channels merge in row order, so the output is independent of the
        // worker-pool schedule.
        for outcome in outcomes {
            stats.nets_routed += outcome.wires.len();
            stats.failed_nets += outcome.report.nets - outcome.wires.len();
            stats.space_expansions += outcome.report.expansions;
            for wire in &outcome.wires {
                stats.total_wirelength_um += wire.length_um;
                stats.total_vias += wire.via_count;
            }
            wires.extend(outcome.wires);
            channel_reports.push(outcome.report);
        }

        let jj_count = design.cells.iter().map(|c| self.technology.cell(c.kind).jj_count).sum();
        RoutingResult { wires, stats, channels: channel_reports, jj_count, grid_columns: columns }
    }

    /// Routes every channel job, serially or on a worker pool.
    fn route_channels(
        &self,
        jobs: &[ChannelJob],
        columns: i64,
        initial_tracks: i64,
        auto_tracks: bool,
        step: f64,
    ) -> Vec<ChannelOutcome> {
        let workers = effective_threads(self.config.threads, jobs.len());
        let max_expansions = self.config.max_expansions;
        let cancel = &self.cancel;
        if workers <= 1 {
            let mut scratch = SearchScratch::new();
            return jobs
                .iter()
                .map(|job| {
                    if cancel.is_cancelled() {
                        return cancelled_outcome(job);
                    }
                    route_channel(
                        job,
                        columns,
                        initial_tracks,
                        auto_tracks,
                        max_expansions,
                        step,
                        &mut scratch,
                        cancel,
                    )
                })
                .collect();
        }

        let slots: Vec<Mutex<Option<ChannelOutcome>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Each worker owns one scratch arena for its whole run.
                    let mut scratch = SearchScratch::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        let outcome = if cancel.is_cancelled() {
                            cancelled_outcome(job)
                        } else {
                            route_channel(
                                job,
                                columns,
                                initial_tracks,
                                auto_tracks,
                                max_expansions,
                                step,
                                &mut scratch,
                                cancel,
                            )
                        };
                        *slots[index].lock().expect("no poisoned channel slot") = Some(outcome);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no poisoned channel slot")
                    .expect("every channel job produces an outcome")
            })
            .collect()
    }
}

/// Groups nets by channel (driver row) and assigns every pin a distinct grid
/// column on its side of the channel, spilling to the nearest free column
/// when the preferred one is taken or clamped at the boundary.
fn build_channel_jobs(design: &PlacedDesign, step: f64, columns: i64) -> Vec<ChannelJob> {
    let channel_count = design.rows.len();
    // The first track sits above the tallest cell so wires clear the cell
    // area; computed once per route() call, not per channel.
    let base_offset = channel_base_offset(design);

    let mut nets_by_channel: Vec<Vec<ChannelNet>> = vec![Vec::new(); channel_count];
    let mut start_used: Vec<Vec<bool>> = vec![Vec::new(); channel_count];
    let mut goal_used: Vec<Vec<bool>> = vec![Vec::new(); channel_count];
    let mut driver_counter = vec![0i64; design.cells.len()];
    let mut sink_counter = vec![0i64; design.cells.len()];

    for (net_index, net) in design.nets.iter().enumerate() {
        let driver = &design.cells[net.driver];
        let sink = &design.cells[net.sink];
        let row = driver.row;
        let start_col = pin_column(
            driver.center_x(),
            driver_counter[net.driver],
            step,
            columns,
            &mut start_used[row],
        );
        let goal_col =
            pin_column(sink.center_x(), sink_counter[net.sink], step, columns, &mut goal_used[row]);
        driver_counter[net.driver] += 1;
        sink_counter[net.sink] += 1;
        nets_by_channel[row].push(ChannelNet { net: net_index, start_col, goal_col });
    }

    nets_by_channel
        .into_iter()
        .enumerate()
        .filter(|(_, nets)| !nets.is_empty())
        .map(|(row, nets)| ChannelJob { row, y_base: design.row_y(row) + base_offset, nets })
        .collect()
}

/// The vertical offset of a channel's first track above its driver row: the
/// tallest cell in the library, so tracks clear the cell area.
fn channel_base_offset(design: &PlacedDesign) -> f64 {
    design.cells.iter().map(|c| c.height).fold(30.0, f64::max)
}

/// Grid column of a pin: the cell center plus a per-pin offset so that
/// several pins of the same cell land on distinct columns. When the
/// preferred column is already taken on this side of the channel (which
/// happens when the boundary clamp folds neighbouring pins together), the
/// pin spills to the nearest free column instead of silently overlapping.
fn pin_column(center_x: f64, pin_index: i64, step: f64, columns: i64, used: &mut Vec<bool>) -> i64 {
    if used.is_empty() {
        used.resize(columns as usize, false);
    }
    let base = (center_x / step).round() as i64;
    let preferred = (base + pin_index).clamp(0, columns - 1);
    for distance in 0..columns {
        for candidate in [preferred + distance, preferred - distance] {
            if (0..columns).contains(&candidate) && !used[candidate as usize] {
                used[candidate as usize] = true;
                return candidate;
            }
        }
    }
    // Every column on this side is taken (more nets than columns); fall back
    // to the preferred column and let the router report the conflict.
    preferred
}

/// The classic channel-routing density lower bound: the maximum number of
/// nets whose column intervals overlap at any single column. No assignment
/// of horizontal spans to tracks can use fewer tracks than this, so sizing
/// the channel below it just buys guaranteed expansion rounds.
fn channel_density(nets: &[ChannelNet]) -> i64 {
    let mut events: Vec<(i64, i64)> = Vec::with_capacity(nets.len() * 2);
    for net in nets {
        let low = net.start_col.min(net.goal_col);
        let high = net.start_col.max(net.goal_col);
        events.push((low, 1));
        events.push((high + 1, -1));
    }
    events.sort_unstable();
    let mut current = 0i64;
    let mut max = 0i64;
    for (_, delta) in events {
        current += delta;
        max = max.max(current);
    }
    max
}

/// Routes one channel with incremental space expansion and
/// rip-up-and-reroute. Purely sequential and deterministic; the parallel
/// driver calls this per channel.
/// The outcome of a channel skipped because cancellation fired before it was
/// routed: no wires, every net counted as failed. Only produced under a
/// fired [`CancelToken`], whose contract is that the partial result is
/// discarded by the caller.
fn cancelled_outcome(job: &ChannelJob) -> ChannelOutcome {
    ChannelOutcome {
        report: ChannelReport {
            row: job.row,
            nets: job.nets.len(),
            expansions: 0,
            tracks: 0,
            utilization: 0.0,
        },
        wires: Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn route_channel(
    job: &ChannelJob,
    columns: i64,
    initial_tracks: i64,
    auto_tracks: bool,
    max_expansions: usize,
    step: f64,
    scratch: &mut SearchScratch,
    cancel: &CancelToken,
) -> ChannelOutcome {
    let nets = &job.nets;
    // When the track count is derived (not pinned by the config), start at
    // the density lower bound instead of discovering it one expansion at a
    // time — congested channels would otherwise pay a full failed-search
    // round per missing track.
    let start_tracks =
        if auto_tracks { initial_tracks.max(channel_density(nets) + 2) } else { initial_tracks };
    let mut grid = ChannelGrid::new(columns, start_tracks);

    // Route short nets first; long nets benefit most from the remaining free
    // tracks. `order` holds slot indices into `nets`.
    let mut order: Vec<usize> = (0..nets.len()).collect();
    order.sort_by_key(|&slot| {
        let net = nets[slot];
        ((net.start_col - net.goal_col).abs(), slot)
    });

    // Per-channel path storage: one shared point arena plus a span per slot.
    // Re-committing a net after rip-up appends a fresh span (the old one is
    // abandoned), so reserve room for every net's Manhattan path up front —
    // growth beyond that only happens under heavy rip-up churn.
    let mut arena: Vec<GridPoint> = Vec::with_capacity(
        nets.iter().map(|net| ((net.start_col - net.goal_col).abs() + start_tracks) as usize).sum(),
    );
    let mut spans: Vec<(usize, usize)> = vec![(0, 0); nets.len()];
    let mut routed: Vec<bool> = vec![false; nets.len()];
    // The top track at the time each slot was (last) routed; the difference
    // to the final top is the net's sink-side extension from later
    // expansions.
    let mut top_at_route: Vec<i64> = vec![0; nets.len()];
    let mut rip_blockers: Vec<u32> = Vec::new();

    let mut pending: Vec<usize> = order;
    let mut failed: Vec<usize> = Vec::new();
    let mut expansions = 0usize;

    loop {
        failed.clear();
        for &slot in &pending {
            let net = nets[slot];
            let top = grid.tracks() - 1;
            let start = GridPoint::new(net.start_col, 0);
            let goal = GridPoint::new(net.goal_col, top);
            if grid.a_star_into(start, goal, scratch) {
                commit(slot, &mut grid, scratch.path(), &mut arena, &mut spans, &mut routed);
                top_at_route[slot] = top;
                continue;
            }

            // Rip-up-and-reroute: find the cheapest path through occupied
            // edges; if it displaces only a few nets, take it and reroute
            // the blockers. The penalty makes one crossed edge costlier
            // than any clean detour, so the path crosses a minimal set of
            // nets. Only worth trying while the round is close to clean —
            // once several nets have already failed the congestion is
            // structural and the expansion below is the cheaper fix.
            if failed.len() >= MAX_RIP_UP_ROUND_FAILURES {
                failed.push(slot);
                continue;
            }
            let penalty = (columns + grid.tracks()) as u32;
            if !grid.a_star_with_penalty(start, goal, scratch, penalty)
                || scratch.blockers().is_empty()
                || scratch.blockers().len() > MAX_RIP_UP_BLOCKERS
            {
                failed.push(slot);
                continue;
            }
            rip_blockers.clear();
            rip_blockers.extend_from_slice(scratch.blockers());
            for &blocker in &rip_blockers {
                let blocker = blocker as usize;
                let (span_start, span_end) = spans[blocker];
                grid.rip_up(&arena[span_start..span_end]);
                rip_extension(&mut grid, nets[blocker].goal_col, top_at_route[blocker], top);
                routed[blocker] = false;
            }
            commit(slot, &mut grid, scratch.path(), &mut arena, &mut spans, &mut routed);
            top_at_route[slot] = top;
            // Reroute the displaced nets strictly, in slot order; whatever
            // no longer fits waits for the next expansion.
            for &blocker in &rip_blockers {
                let blocker = blocker as usize;
                let net = nets[blocker];
                let start = GridPoint::new(net.start_col, 0);
                let goal = GridPoint::new(net.goal_col, top);
                if grid.a_star_into(start, goal, scratch) {
                    commit(blocker, &mut grid, scratch.path(), &mut arena, &mut spans, &mut routed);
                    top_at_route[blocker] = top;
                } else {
                    failed.push(blocker);
                }
            }
        }

        if failed.is_empty() || expansions >= max_expansions {
            break;
        }
        // A fired token stops the expansion ladder; whatever routed so far
        // materializes below and the rest stays failed (the caller discards
        // cancelled results anyway).
        if cancel.is_cancelled() {
            break;
        }

        // Space expansion (Algorithm 1, line 21), incrementally: grow the
        // channel and keep every routed net, extending its sink terminal
        // onto the new top track; only the failed nets are rerouted. The
        // growth is proportional to the failure count (one track per four
        // failed nets, at least one) so heavily congested channels converge
        // in a few rounds instead of one round per missing track.
        let budget = max_expansions - expansions;
        let extra = (failed.len().div_ceil(4)).clamp(1, budget) as i64;
        let old_top = grid.tracks() - 1;
        grid.expand(extra);
        expansions += extra as usize;
        let new_top = grid.tracks() - 1;
        for (slot, net) in nets.iter().enumerate() {
            if routed[slot] {
                for track in old_top..new_top {
                    let a = GridPoint::new(net.goal_col, track);
                    let b = GridPoint::new(net.goal_col, track + 1);
                    grid.occupy_path_for(slot as u32, &[a, b]);
                }
            }
        }
        std::mem::swap(&mut pending, &mut failed);
    }

    // Materialize wires in net order (deterministic, independent of the
    // routing order and of rip-up history).
    let final_top = grid.tracks() - 1;
    let mut wires = Vec::with_capacity(nets.len());
    let mut full_path: Vec<GridPoint> = Vec::new();
    for (slot, net) in nets.iter().enumerate() {
        if !routed[slot] {
            continue;
        }
        let (span_start, span_end) = spans[slot];
        full_path.clear();
        full_path.extend_from_slice(&arena[span_start..span_end]);
        for track in top_at_route[slot] + 1..=final_top {
            full_path.push(GridPoint::new(net.goal_col, track));
        }
        wires.push(materialize_wire(net.net, &full_path, step, job.y_base));
    }

    let report = ChannelReport {
        row: job.row,
        nets: nets.len(),
        expansions,
        tracks: grid.tracks() as usize,
        utilization: grid.horizontal_utilization(),
    };
    ChannelOutcome { report, wires }
}

/// Records a found path for `slot`: appends it to the arena, updates the
/// span and marks the path's edges occupied.
fn commit(
    slot: usize,
    grid: &mut ChannelGrid,
    path: &[GridPoint],
    arena: &mut Vec<GridPoint>,
    spans: &mut [(usize, usize)],
    routed: &mut [bool],
) {
    let span_start = arena.len();
    arena.extend_from_slice(path);
    spans[slot] = (span_start, arena.len());
    grid.occupy_path_for(slot as u32, path);
    routed[slot] = true;
}

/// Frees the sink-side extension edges a routed net accumulated through
/// expansions after it was routed.
fn rip_extension(grid: &mut ChannelGrid, goal_col: i64, routed_top: i64, current_top: i64) {
    for track in routed_top..current_top {
        let a = GridPoint::new(goal_col, track);
        let b = GridPoint::new(goal_col, track + 1);
        grid.rip_up(&[a, b]);
    }
}

/// Translates reused channel wires onto their channel's (possibly new)
/// vertical base after a row-renumbering edit.
///
/// A channel wire's y coordinates are `y_base + track × step` with the
/// driver pin on track 0, so the old base is the wire's minimum y and each
/// point's track index is recovered exactly. The new y is then computed by
/// the same expression [`materialize_wire`] uses, which keeps re-keyed wires
/// bit-identical to freshly routed ones; wires whose base did not move are
/// returned untouched.
fn rekey_wires(mut wires: Vec<RoutedWire>, y_base: f64, step: f64) -> Vec<RoutedWire> {
    for wire in &mut wires {
        let old_base = wire.path.iter().map(|point| point.y).fold(f64::INFINITY, f64::min);
        if old_base.to_bits() == y_base.to_bits() {
            continue;
        }
        for point in &mut wire.path {
            let track = ((point.y - old_base) / step).round();
            point.y = y_base + track * step;
        }
    }
    wires
}

/// Converts a grid path into an absolute-coordinate wire with length and via
/// count.
fn materialize_wire(net: usize, path: &[GridPoint], step: f64, y_base: f64) -> RoutedWire {
    let points: Vec<Point> = path
        .iter()
        .map(|p| Point::new(p.column as f64 * step, y_base + p.track as f64 * step))
        .collect();
    let length_um = (path.len().saturating_sub(1)) as f64 * step;
    let mut via_count = 0;
    for window in path.windows(3) {
        let first_horizontal = window[0].track == window[1].track;
        let second_horizontal = window[1].track == window[2].track;
        if first_horizontal != second_horizontal {
            via_count += 1;
        }
    }
    RoutedWire { net, path: points, length_um, via_count }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
    use aqfp_place::{PlacementEngine, PlacerKind};
    use aqfp_synth::Synthesizer;

    fn placed(benchmark: Benchmark) -> (PlacedDesign, Technology) {
        let library = Technology::mit_ll_sqf5ee();
        let synthesized =
            Synthesizer::new(library.clone()).run(&benchmark_circuit(benchmark)).expect("ok");
        let result =
            PlacementEngine::new(library.clone()).place(&synthesized, PlacerKind::SuperFlow);
        (result.design, library)
    }

    #[test]
    fn routes_every_net_of_a_small_benchmark() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        assert_eq!(routing.stats.failed_nets, 0, "every net must route");
        assert_eq!(routing.stats.nets_routed, design.net_count());
        assert_eq!(routing.wires.len(), design.net_count());
        assert!(routing.stats.total_wirelength_um > 0.0);
        assert!(routing.jj_count > 0);
    }

    #[test]
    fn routed_length_is_at_least_the_placed_estimate() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        // Routed wirelength can only be longer than the straight-line
        // estimate used during placement (detours plus pin offsets).
        let estimate: f64 = design.nets.iter().map(|n| design.net_length(n)).sum();
        assert!(
            routing.stats.total_wirelength_um >= estimate * 0.5,
            "routed length {} suspiciously shorter than estimate {}",
            routing.stats.total_wirelength_um,
            estimate
        );
    }

    #[test]
    fn wire_paths_are_grid_aligned_and_connected() {
        let (design, library) = placed(Benchmark::Adder8);
        let config = RouterConfig { grid_step_um: 10.0, ..Default::default() };
        let routing = Router::with_config(library, config).route(&design);
        for wire in routing.wires.iter().take(200) {
            for point in &wire.path {
                assert!((point.x / 10.0).fract().abs() < 1e-9, "x {} off grid", point.x);
            }
            for pair in wire.path.windows(2) {
                let dx = (pair[0].x - pair[1].x).abs();
                let dy = (pair[0].y - pair[1].y).abs();
                assert!(
                    (dx - 10.0).abs() < 1e-9 && dy < 1e-9 || (dy - 10.0).abs() < 1e-9 && dx < 1e-9,
                    "segments advance one grid step at a time"
                );
            }
        }
    }

    #[test]
    fn congested_channels_use_space_expansion() {
        // A deliberately narrow initial channel (2 tracks) forces expansions
        // on any benchmark with more than a couple of nets per channel.
        let (design, library) = placed(Benchmark::Apc32);
        let config =
            RouterConfig { grid_step_um: 10.0, initial_tracks: 2, max_expansions: 64, threads: 0 };
        let routing = Router::with_config(library, config).route(&design);
        assert!(routing.stats.space_expansions > 0, "narrow channels must expand");
        assert_eq!(routing.stats.failed_nets, 0);
    }

    #[test]
    fn expansion_limit_reports_failures_instead_of_hanging() {
        let (design, library) = placed(Benchmark::Adder8);
        let config =
            RouterConfig { grid_step_um: 10.0, initial_tracks: 2, max_expansions: 0, threads: 0 };
        let routing = Router::with_config(library, config).route(&design);
        // With no expansions allowed some channel is very likely to fail;
        // the router must report it rather than loop forever.
        assert_eq!(routing.stats.nets_routed + routing.stats.failed_nets, design.net_count());
    }

    #[test]
    fn via_counts_match_turns() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        for wire in routing.wires.iter().take(100) {
            // A two-pin channel wire needs at most a handful of turns.
            assert!(wire.via_count <= wire.path.len());
        }
        assert!(routing.stats.total_vias > 0);
    }

    #[test]
    fn channel_reports_cover_all_driver_rows_with_nets() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        let rows_with_nets: std::collections::BTreeSet<usize> =
            design.nets.iter().map(|n| design.cells[n.driver].row).collect();
        let reported: std::collections::BTreeSet<usize> =
            routing.channels.iter().map(|c| c.row).collect();
        assert_eq!(rows_with_nets, reported);
    }

    #[test]
    fn pin_columns_are_unique_per_channel_side() {
        let (design, library) = placed(Benchmark::Apc32);
        let routing = Router::new(library).route(&design);
        // With the spill fix, no two wires in the same channel may start or
        // end on the same column: endpoints are pin terminals.
        use std::collections::BTreeSet;
        let mut starts: std::collections::BTreeMap<usize, BTreeSet<i64>> = Default::default();
        let mut goals: std::collections::BTreeMap<usize, BTreeSet<i64>> = Default::default();
        for wire in &routing.wires {
            let row = design.cells[design.nets[wire.net].driver].row;
            let start = wire.path.first().expect("non-empty path");
            let goal = wire.path.last().expect("non-empty path");
            assert!(
                starts.entry(row).or_default().insert(start.x.round() as i64),
                "two driver pins share column {} in channel {row}",
                start.x
            );
            assert!(
                goals.entry(row).or_default().insert(goal.x.round() as i64),
                "two sink pins share column {} in channel {row}",
                goal.x
            );
        }
    }

    #[test]
    fn partial_reroute_with_no_dirty_channels_returns_the_previous_result() {
        let (design, library) = placed(Benchmark::Adder8);
        let router = Router::new(library);
        let before = router.route(&design);
        let rerouted = router.route_partial(&design, &before, &[], None);
        assert_eq!(before, rerouted, "an untouched design must reuse every channel verbatim");
    }

    #[test]
    fn partial_reroute_is_byte_identical_to_from_scratch() {
        let (mut design, library) = placed(Benchmark::Apc32);
        let router = Router::new(library);
        let before = router.route(&design);

        // Nudge the leftmost cell of two rows by one grid step (leftmost so
        // the overall layer width — and with it the grid column count —
        // stays put and the partial path is actually exercised).
        let mut dirty = Vec::new();
        for row in [2usize, 5] {
            let cell = design.rows[row][0];
            design.cells[cell].x += design.rules.grid;
            dirty.push(row);
            if row > 0 {
                dirty.push(row - 1);
            }
        }

        let scratch = router.route(&design);
        let partial = router.route_partial(&design, &before, &dirty, None);
        assert_eq!(scratch, partial, "incremental reroute must match a from-scratch reroute");
        let scratch_json = serde_json::to_string(&scratch).expect("serialize");
        let partial_json = serde_json::to_string(&partial).expect("serialize");
        assert_eq!(scratch_json, partial_json, "… down to the serialized bytes");
        // The nudges must actually have changed something, or the assertion
        // above would hold trivially.
        assert_ne!(before, scratch, "the perturbation must change the routed result");
    }

    /// The tentpole guarantee: after a real buffer-row edit (rows
    /// renumbered, cells and nets appended, originals split), consuming the
    /// [`DesignEdit`] reroutes only the edited/moved channels and is still
    /// byte-identical to a from-scratch route of the edited design.
    #[test]
    fn partial_reroute_consumes_a_buffer_row_edit() {
        use aqfp_place::buffer_rows::insert_buffer_rows;
        use aqfp_place::legalize::legalize;

        let (mut design, library) = placed(Benchmark::Apc32);
        let router = Router::new(library.clone());
        let before = router.route(&design);

        // Stretch one mid-design driver far enough to force buffer rows,
        // then repair exactly like the flow does: insert, re-legalize.
        let victim_row = 13usize;
        let net_index = design
            .nets
            .iter()
            .position(|net| design.cells[net.driver].row == victim_row)
            .expect("a net driven from the victim row");
        let driver = design.nets[net_index].driver;
        design.cells[driver].x = 0.0;
        let sink = design.nets[net_index].sink;
        design.cells[sink].x = design.rules.max_wirelength * 2.5;
        // Keep the perturbation horizontal-only and interior so the routing
        // grid's column count stays put (clamp the sink back inside the
        // layer width).
        let width = design.layer_width();
        if design.cells[sink].right() > width {
            design.cells[sink].x = (width - design.cells[sink].width) - design.rules.grid;
        }
        design.sort_rows_by_x();
        assert!(!design.max_wirelength_violations().is_empty(), "the stretch must violate");

        let (_, edit) = insert_buffer_rows(&mut design, &library);
        assert!(!edit.is_noop(), "the repair must renumber rows");
        let moved = legalize(&mut design).moved_cells;

        // Dirty set: the channels touched by every cell that moved since
        // `before` was routed — the two the test stretched plus whatever
        // the post-insert legalization displaced. (The edit's own channels
        // are folded in by route_partial itself.)
        let mut dirty: Vec<usize> = Vec::new();
        for cell in moved.iter().copied().chain([driver, sink]) {
            let row = design.cells[cell].row;
            dirty.push(row);
            if row > 0 {
                dirty.push(row - 1);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        let scratch = router.route(&design);
        let partial = router.route_partial(&design, &before, &dirty, Some(&edit));
        assert_eq!(
            before.grid_columns, partial.grid_columns,
            "the perturbation must keep the column count so the incremental path is exercised"
        );
        assert_eq!(scratch, partial, "edit-aware reroute must match a from-scratch reroute");
        let scratch_json = serde_json::to_string(&scratch).expect("serialize");
        let partial_json = serde_json::to_string(&partial).expect("serialize");
        assert_eq!(scratch_json, partial_json, "… down to the serialized bytes");
        // The edit must have genuinely moved channels upward, so clean
        // channels were re-keyed rather than reused trivially.
        assert!(design.rows.len() > before.channels.len(), "rows were inserted");
    }

    /// An edit whose description disagrees with the design (stale edit)
    /// falls back to a from-scratch route instead of mixing stale wires in.
    #[test]
    fn partial_reroute_rejects_inconsistent_edits() {
        let (mut design, library) = placed(Benchmark::Adder8);
        let router = Router::new(library);
        let before = router.route(&design);
        // A fabricated edit claiming one more net than the previous result
        // covered: expected nets mismatch => full route.
        let mut edit = aqfp_place::DesignEdit::identity(&design);
        edit.first_new_net -= 1;
        let net = design.nets[0];
        design.nets.push(net);
        let partial = router.route_partial(&design, &before, &[], Some(&edit));
        let scratch = router.route(&design);
        assert_eq!(scratch, partial);
    }

    #[test]
    fn partial_reroute_falls_back_to_full_on_netlist_changes() {
        let (mut design, library) = placed(Benchmark::Adder8);
        let router = Router::new(library);
        let before = router.route(&design);
        // Splice in an extra net: the previous result no longer covers the
        // design, so every channel must reroute regardless of the dirty set.
        let net = design.nets[0];
        design.nets.push(net);
        let partial = router.route_partial(&design, &before, &[], None);
        let scratch = router.route(&design);
        assert_eq!(scratch, partial);
        assert_eq!(partial.stats.nets_routed + partial.stats.failed_nets, design.net_count());
    }

    #[test]
    fn a_fired_token_returns_promptly_with_every_net_failed() {
        let (design, technology) = placed(Benchmark::Adder8);
        let token = CancelToken::new();
        token.cancel();
        let result = Router::new(technology).with_cancel(token).route(&design);
        assert_eq!(result.stats.nets_routed, 0, "no channel may route after cancellation");
        assert_eq!(result.stats.failed_nets, design.net_count());
        // The result is still well-formed: one report per channel.
        assert_eq!(result.channels.iter().map(|c| c.nets).sum::<usize>(), design.net_count());
    }

    #[test]
    fn serial_and_parallel_routing_are_byte_identical() {
        let (design, library) = placed(Benchmark::Apc32);
        let serial = Router::with_config(
            library.clone(),
            RouterConfig { threads: 1, ..RouterConfig::default() },
        )
        .route(&design);
        let parallel =
            Router::with_config(library, RouterConfig { threads: 4, ..RouterConfig::default() })
                .route(&design);
        assert_eq!(serial, parallel, "thread count must not change the routed result");
        // Byte-level check on the serialized artifacts, not just PartialEq.
        let serial_json = serde_json::to_string(&serial).expect("serialize");
        let parallel_json = serde_json::to_string(&parallel).expect("serialize");
        assert_eq!(serial_json, parallel_json);
    }
}
