//! The channel-by-channel router with space expansion (Algorithm 1).

use aqfp_cells::{CellLibrary, Point};
use aqfp_place::PlacedDesign;
use serde::{Deserialize, Serialize};

use crate::grid::{ChannelGrid, GridPoint};

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Routing grid pitch in µm; wires only turn on this grid (the paper's
    /// dynamic step size, equal to the process minimum spacing).
    pub grid_step_um: f64,
    /// Initial number of routing tracks per channel (derived from the row
    /// pitch when 0).
    pub initial_tracks: usize,
    /// Maximum space expansions per channel before giving up.
    pub max_expansions: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { grid_step_um: 10.0, initial_tracks: 0, max_expansions: 64 }
    }
}

/// One routed net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedWire {
    /// Index of the net in [`PlacedDesign::nets`].
    pub net: usize,
    /// The wire path in absolute layout coordinates (µm), including both
    /// pin endpoints.
    pub path: Vec<Point>,
    /// Total routed length in µm.
    pub length_um: f64,
    /// Number of vias (direction changes between the two wiring layers).
    pub via_count: usize,
}

/// Per-channel routing report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelReport {
    /// The driver row of the channel (nets go from this row to the next).
    pub row: usize,
    /// Nets routed through the channel.
    pub nets: usize,
    /// Space expansions applied before the channel became routable.
    pub expansions: usize,
    /// Final number of tracks in the channel.
    pub tracks: usize,
    /// Fraction of horizontal-layer capacity in use after routing.
    pub utilization: f64,
}

/// Aggregate routing statistics (the quantities Table IV reports, except the
/// JJ count which is a property of the placed cells).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Nets successfully routed.
    pub nets_routed: usize,
    /// Nets that could not be routed within the expansion limit.
    pub failed_nets: usize,
    /// Total routed wirelength in µm.
    pub total_wirelength_um: f64,
    /// Total via count.
    pub total_vias: usize,
    /// Total space expansions across all channels.
    pub space_expansions: usize,
}

/// The result of routing a placed design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingResult {
    /// Every routed wire.
    pub wires: Vec<RoutedWire>,
    /// Aggregate statistics.
    pub stats: RoutingStats,
    /// Per-channel reports.
    pub channels: Vec<ChannelReport>,
    /// Josephson junctions in the routed design (all placed cells, including
    /// buffers added by synthesis and placement).
    pub jj_count: usize,
}

/// The layer-wise AQFP router.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone)]
pub struct Router {
    library: CellLibrary,
    config: RouterConfig,
}

impl Router {
    /// Creates a router with default configuration for the given library.
    pub fn new(library: CellLibrary) -> Self {
        let config = RouterConfig { grid_step_um: library.rules().min_spacing, ..Default::default() };
        Self { library, config }
    }

    /// Creates a router with an explicit configuration.
    pub fn with_config(library: CellLibrary, config: RouterConfig) -> Self {
        Self { library, config }
    }

    /// The router configuration.
    pub fn config(&self) -> RouterConfig {
        self.config
    }

    /// Routes every net of a placed design, channel by channel.
    pub fn route(&self, design: &PlacedDesign) -> RoutingResult {
        let step = self.config.grid_step_um.max(1.0);
        let columns = ((design.layer_width() / step).ceil() as i64 + 2).max(2);
        let initial_tracks = if self.config.initial_tracks >= 2 {
            self.config.initial_tracks as i64
        } else {
            ((design.row_pitch / step).round() as i64).max(2)
        };

        // Group nets by channel (driver row) and assign pin offsets so
        // multiple nets at the same cell use distinct grid columns.
        let channel_count = design.rows.len();
        let mut channels: Vec<Vec<(usize, i64, i64)>> = vec![Vec::new(); channel_count];
        let mut driver_counter = vec![0i64; design.cells.len()];
        let mut sink_counter = vec![0i64; design.cells.len()];
        for (net_index, net) in design.nets.iter().enumerate() {
            let driver = &design.cells[net.driver];
            let sink = &design.cells[net.sink];
            let start_col = pin_column(driver.center_x(), driver_counter[net.driver], step, columns);
            let goal_col = pin_column(sink.center_x(), sink_counter[net.sink], step, columns);
            driver_counter[net.driver] += 1;
            sink_counter[net.sink] += 1;
            channels[driver.row].push((net_index, start_col, goal_col));
        }

        let mut wires = Vec::with_capacity(design.nets.len());
        let mut channel_reports = Vec::new();
        let mut stats = RoutingStats {
            nets_routed: 0,
            failed_nets: 0,
            total_wirelength_um: 0.0,
            total_vias: 0,
            space_expansions: 0,
        };

        for (row, mut nets) in channels.into_iter().enumerate() {
            if nets.is_empty() {
                continue;
            }
            // Route short nets first; long nets benefit most from the
            // remaining free tracks.
            nets.sort_by_key(|(_, start, goal)| (start - goal).abs());

            let mut grid = ChannelGrid::new(columns, initial_tracks);
            let mut expansions = 0usize;
            let mut routed: Vec<(usize, Vec<GridPoint>)> = Vec::new();
            loop {
                grid.clear();
                routed.clear();
                let mut all_routed = true;
                for &(net_index, start_col, goal_col) in &nets {
                    let start = GridPoint::new(start_col, 0);
                    let goal = GridPoint::new(goal_col, grid.tracks() - 1);
                    match grid.a_star(start, goal) {
                        Some(path) => {
                            grid.occupy_path(&path);
                            routed.push((net_index, path));
                        }
                        None => {
                            all_routed = false;
                            break;
                        }
                    }
                }
                if all_routed || expansions >= self.config.max_expansions {
                    break;
                }
                // Space expansion: push the two rows one grid step further
                // apart and reroute the whole channel (Algorithm 1, line 21).
                grid.expand(1);
                expansions += 1;
            }

            stats.space_expansions += expansions;
            let routed_count = routed.len();
            stats.failed_nets += nets.len() - routed_count;
            stats.nets_routed += routed_count;

            let y_base = design.row_y(row) + channel_base_offset(design);
            for (net_index, path) in &routed {
                let wire = materialize_wire(*net_index, path, step, y_base);
                stats.total_wirelength_um += wire.length_um;
                stats.total_vias += wire.via_count;
                wires.push(wire);
            }
            channel_reports.push(ChannelReport {
                row,
                nets: nets.len(),
                expansions,
                tracks: grid.tracks() as usize,
                utilization: grid.horizontal_utilization(),
            });
        }

        let jj_count = design.cells.iter().map(|c| self.library.cell(c.kind).jj_count).sum();
        RoutingResult { wires, stats, channels: channel_reports, jj_count }
    }
}

/// The vertical offset of a channel's first track above its driver row: the
/// tallest cell in the library, so tracks clear the cell area.
fn channel_base_offset(design: &PlacedDesign) -> f64 {
    design.cells.iter().map(|c| c.height).fold(30.0, f64::max)
}

/// Grid column of a pin: the cell center plus a per-pin offset so that
/// several pins of the same cell land on distinct columns.
fn pin_column(center_x: f64, pin_index: i64, step: f64, columns: i64) -> i64 {
    let base = (center_x / step).round() as i64;
    (base + pin_index).clamp(0, columns - 1)
}

/// Converts a grid path into an absolute-coordinate wire with length and via
/// count.
fn materialize_wire(net: usize, path: &[GridPoint], step: f64, y_base: f64) -> RoutedWire {
    let points: Vec<Point> =
        path.iter().map(|p| Point::new(p.column as f64 * step, y_base + p.track as f64 * step)).collect();
    let length_um = (path.len().saturating_sub(1)) as f64 * step;
    let mut via_count = 0;
    for window in path.windows(3) {
        let first_horizontal = window[0].track == window[1].track;
        let second_horizontal = window[1].track == window[2].track;
        if first_horizontal != second_horizontal {
            via_count += 1;
        }
    }
    RoutedWire { net, path: points, length_um, via_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
    use aqfp_place::{PlacementEngine, PlacerKind};
    use aqfp_synth::Synthesizer;

    fn placed(benchmark: Benchmark) -> (PlacedDesign, CellLibrary) {
        let library = CellLibrary::mit_ll();
        let synthesized =
            Synthesizer::new(library.clone()).run(&benchmark_circuit(benchmark)).expect("ok");
        let result = PlacementEngine::new(library.clone()).place(&synthesized, PlacerKind::SuperFlow);
        (result.design, library)
    }

    #[test]
    fn routes_every_net_of_a_small_benchmark() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        assert_eq!(routing.stats.failed_nets, 0, "every net must route");
        assert_eq!(routing.stats.nets_routed, design.net_count());
        assert_eq!(routing.wires.len(), design.net_count());
        assert!(routing.stats.total_wirelength_um > 0.0);
        assert!(routing.jj_count > 0);
    }

    #[test]
    fn routed_length_is_at_least_the_placed_estimate() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        // Routed wirelength can only be longer than the straight-line
        // estimate used during placement (detours plus pin offsets).
        let estimate: f64 = design.nets.iter().map(|n| design.net_length(n)).sum();
        assert!(
            routing.stats.total_wirelength_um >= estimate * 0.5,
            "routed length {} suspiciously shorter than estimate {}",
            routing.stats.total_wirelength_um,
            estimate
        );
    }

    #[test]
    fn wire_paths_are_grid_aligned_and_connected() {
        let (design, library) = placed(Benchmark::Adder8);
        let config = RouterConfig { grid_step_um: 10.0, ..Default::default() };
        let routing = Router::with_config(library, config).route(&design);
        for wire in routing.wires.iter().take(200) {
            for point in &wire.path {
                assert!((point.x / 10.0).fract().abs() < 1e-9, "x {} off grid", point.x);
            }
            for pair in wire.path.windows(2) {
                let dx = (pair[0].x - pair[1].x).abs();
                let dy = (pair[0].y - pair[1].y).abs();
                assert!(
                    (dx - 10.0).abs() < 1e-9 && dy < 1e-9 || (dy - 10.0).abs() < 1e-9 && dx < 1e-9,
                    "segments advance one grid step at a time"
                );
            }
        }
    }

    #[test]
    fn congested_channels_use_space_expansion() {
        // A deliberately narrow initial channel (2 tracks) forces expansions
        // on any benchmark with more than a couple of nets per channel.
        let (design, library) = placed(Benchmark::Apc32);
        let config = RouterConfig { grid_step_um: 10.0, initial_tracks: 2, max_expansions: 64 };
        let routing = Router::with_config(library, config).route(&design);
        assert!(routing.stats.space_expansions > 0, "narrow channels must expand");
        assert_eq!(routing.stats.failed_nets, 0);
    }

    #[test]
    fn expansion_limit_reports_failures_instead_of_hanging() {
        let (design, library) = placed(Benchmark::Adder8);
        let config = RouterConfig { grid_step_um: 10.0, initial_tracks: 2, max_expansions: 0 };
        let routing = Router::with_config(library, config).route(&design);
        // With no expansions allowed some channel is very likely to fail;
        // the router must report it rather than loop forever.
        assert_eq!(routing.stats.nets_routed + routing.stats.failed_nets, design.net_count());
    }

    #[test]
    fn via_counts_match_turns() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        for wire in routing.wires.iter().take(100) {
            // A two-pin channel wire needs at most a handful of turns.
            assert!(wire.via_count <= wire.path.len());
        }
        assert!(routing.stats.total_vias > 0);
    }

    #[test]
    fn channel_reports_cover_all_driver_rows_with_nets() {
        let (design, library) = placed(Benchmark::Adder8);
        let routing = Router::new(library).route(&design);
        let rows_with_nets: std::collections::BTreeSet<usize> =
            design.nets.iter().map(|n| design.cells[n.driver].row).collect();
        let reported: std::collections::BTreeSet<usize> =
            routing.channels.iter().map(|c| c.row).collect();
        assert_eq!(rows_with_nets, reported);
    }
}
