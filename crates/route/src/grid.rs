//! Two-layer channel routing grid and the zero-allocation A* core.
//!
//! Each inter-phase channel is discretized into a grid whose pitch is the
//! process minimum spacing (10 µm for MIT-LL), so a wire can only turn after
//! at least that distance — the "dynamic step size" of Algorithm 1.
//! Horizontal segments run on one metal layer and vertical segments on the
//! other, so two wires may cross but may never share a grid edge on the same
//! layer.
//!
//! # Performance
//!
//! Edge occupancy is stored in two flat arrays indexed by
//! `track * columns + column` (one per wiring layer), each slot holding the
//! occupying net id or [`FREE`]. The A* search keeps all per-search state —
//! cost table, parent table, priority queue, result path — in a reusable
//! [`SearchScratch`] arena whose entries are invalidated by bumping a
//! generation counter instead of clearing, so the per-net search performs no
//! heap allocation once the channel is set up.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Occupancy slot value for a free edge.
pub const FREE: u32 = u32::MAX;

/// Net id used by [`ChannelGrid::occupy_path`] when the caller does not care
/// about rip-up (compatibility API and tests).
const ANONYMOUS_NET: u32 = u32::MAX - 1;

/// A node of the channel grid: `column` indexes the horizontal position,
/// `track` the vertical position inside the channel (track 0 is the driver
/// side, the last track is the sink side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridPoint {
    /// Horizontal grid index.
    pub column: i64,
    /// Vertical grid index within the channel.
    pub track: i64,
}

impl GridPoint {
    /// Creates a grid point.
    pub fn new(column: i64, track: i64) -> Self {
        Self { column, track }
    }

    /// Manhattan distance to another grid point, in grid units.
    pub fn manhattan(self, other: GridPoint) -> i64 {
        (self.column - other.column).abs() + (self.track - other.track).abs()
    }
}

/// Reusable A* state: cost/parent/visit tables sized to the grid, the open
/// queue and the reconstructed path. One instance routes any number of nets
/// (and any number of channels) without allocating, growing only when a
/// larger grid is attached.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    generation: u32,
    stamp: Vec<u32>,
    best_cost: Vec<u32>,
    parent: Vec<u32>,
    queue: BinaryHeap<Reverse<(i64, GridPoint)>>,
    path: Vec<GridPoint>,
    /// Occupant net ids of the occupied edges crossed by the last
    /// penalty-mode search, deduplicated and sorted (the rip-up candidates).
    blockers: Vec<u32>,
}

impl SearchScratch {
    /// Creates an empty scratch; tables grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The node path found by the last successful search.
    pub fn path(&self) -> &[GridPoint] {
        &self.path
    }

    /// Blocker net ids recorded by the last penalty-mode search.
    pub fn blockers(&self) -> &[u32] {
        &self.blockers
    }

    /// Sizes the tables for a grid with `nodes` nodes and starts a new
    /// search generation. Reallocates only when the grid grew.
    fn begin(&mut self, nodes: usize) {
        if self.stamp.len() < nodes {
            self.stamp.resize(nodes, 0);
            self.best_cost.resize(nodes, 0);
            self.parent.resize(nodes, 0);
            // One-off reservations so the queue and path never reallocate
            // mid-search.
            let extra = nodes.saturating_sub(self.queue.capacity());
            self.queue.reserve(extra);
            let extra = nodes.saturating_sub(self.path.capacity());
            self.path.reserve(extra);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Extremely rare wrap: stamps from 4 billion searches ago could
            // alias, so reset them once.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.queue.clear();
        self.path.clear();
        self.blockers.clear();
    }

    #[inline]
    fn visit(&mut self, node: usize, cost: u32, parent: u32) {
        self.stamp[node] = self.generation;
        self.best_cost[node] = cost;
        self.parent[node] = parent;
    }

    #[inline]
    fn cost(&self, node: usize) -> u32 {
        if self.stamp[node] == self.generation {
            self.best_cost[node]
        } else {
            u32::MAX
        }
    }
}

/// The routing grid of one channel: `columns × tracks` nodes, two wiring
/// layers, flat per-edge occupancy.
#[derive(Debug, Clone)]
pub struct ChannelGrid {
    columns: i64,
    tracks: i64,
    /// Occupant of the horizontal edge `(c, t) — (c + 1, t)`, indexed
    /// `t * columns + c` (the last column of each row is unused padding).
    occupied_horizontal: Vec<u32>,
    /// Occupant of the vertical edge `(c, t) — (c, t + 1)`, indexed
    /// `t * columns + c` (the last track row is unused padding).
    occupied_vertical: Vec<u32>,
    /// Number of occupied horizontal edges (for the utilization report).
    horizontal_in_use: usize,
}

impl ChannelGrid {
    /// Creates an empty grid with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    pub fn new(columns: i64, tracks: i64) -> Self {
        assert!(columns >= 2 && tracks >= 2, "a channel needs at least a 2x2 grid");
        let nodes = (columns * tracks) as usize;
        Self {
            columns,
            tracks,
            occupied_horizontal: vec![FREE; nodes],
            occupied_vertical: vec![FREE; nodes],
            horizontal_in_use: 0,
        }
    }

    /// Number of horizontal grid positions.
    pub fn columns(&self) -> i64 {
        self.columns
    }

    /// Number of vertical tracks.
    pub fn tracks(&self) -> i64 {
        self.tracks
    }

    /// Number of grid nodes (`columns × tracks`).
    pub fn node_count(&self) -> usize {
        (self.columns * self.tracks) as usize
    }

    /// Grows the channel by `extra` tracks (space expansion). Existing
    /// occupancy is preserved: the flat arrays are row-major in `track`, so
    /// new rows append at the end.
    pub fn expand(&mut self, extra: i64) {
        self.tracks += extra;
        let nodes = self.node_count();
        self.occupied_horizontal.resize(nodes, FREE);
        self.occupied_vertical.resize(nodes, FREE);
    }

    /// Removes all routed wires (used when a channel is rerouted from
    /// scratch).
    pub fn clear(&mut self) {
        self.occupied_horizontal.fill(FREE);
        self.occupied_vertical.fill(FREE);
        self.horizontal_in_use = 0;
    }

    /// Whether a point lies inside the grid.
    pub fn contains(&self, p: GridPoint) -> bool {
        p.column >= 0 && p.column < self.columns && p.track >= 0 && p.track < self.tracks
    }

    #[inline]
    fn node_index(&self, p: GridPoint) -> usize {
        (p.track * self.columns + p.column) as usize
    }

    /// The occupancy slot of the edge between two neighbouring points:
    /// `(layer array, edge index)`.
    #[inline]
    fn edge_slot(&self, a: GridPoint, b: GridPoint) -> (bool, usize) {
        let horizontal = a.track == b.track;
        let (column, track) = (a.column.min(b.column), a.track.min(b.track));
        (horizontal, (track * self.columns + column) as usize)
    }

    /// The net occupying the edge between two neighbouring points.
    #[inline]
    pub fn edge_occupant(&self, a: GridPoint, b: GridPoint) -> u32 {
        let (horizontal, index) = self.edge_slot(a, b);
        if horizontal {
            self.occupied_horizontal[index]
        } else {
            self.occupied_vertical[index]
        }
    }

    fn set_edge(&mut self, a: GridPoint, b: GridPoint, occupant: u32) {
        let (horizontal, index) = self.edge_slot(a, b);
        if horizontal {
            let previous = self.occupied_horizontal[index];
            if (previous == FREE) != (occupant == FREE) {
                if occupant == FREE {
                    self.horizontal_in_use -= 1;
                } else {
                    self.horizontal_in_use += 1;
                }
            }
            self.occupied_horizontal[index] = occupant;
        } else {
            self.occupied_vertical[index] = occupant;
        }
    }

    /// Marks every edge along `path` as occupied by `net`.
    pub fn occupy_path_for(&mut self, net: u32, path: &[GridPoint]) {
        for pair in path.windows(2) {
            self.set_edge(pair[0], pair[1], net);
        }
    }

    /// Marks every edge along `path` as occupied (anonymous net;
    /// compatibility API for callers that never rip up).
    pub fn occupy_path(&mut self, path: &[GridPoint]) {
        self.occupy_path_for(ANONYMOUS_NET, path);
    }

    /// Frees every edge along `path` (rip-up of one net).
    pub fn rip_up(&mut self, path: &[GridPoint]) {
        for pair in path.windows(2) {
            self.set_edge(pair[0], pair[1], FREE);
        }
    }

    /// Fraction of horizontal-layer edges already occupied (a congestion
    /// estimate used in reports).
    pub fn horizontal_utilization(&self) -> f64 {
        let capacity = ((self.columns - 1) * self.tracks).max(1) as f64;
        self.horizontal_in_use as f64 / capacity
    }

    /// Finds a shortest path from `start` to `goal` with A* (Algorithm 1's
    /// `A_star` function), writing the node sequence into `scratch`.
    ///
    /// Returns `true` and fills [`SearchScratch::path`] (including both
    /// endpoints) on success. Performs no heap allocation once the scratch
    /// tables match the grid size.
    pub fn a_star_into(
        &self,
        start: GridPoint,
        goal: GridPoint,
        scratch: &mut SearchScratch,
    ) -> bool {
        self.search(start, goal, scratch, None)
    }

    /// Like [`ChannelGrid::a_star_into`], but occupied edges are passable at
    /// `penalty` extra cost instead of blocked. On success,
    /// [`SearchScratch::blockers`] holds the sorted, deduplicated net ids
    /// whose edges the path crosses — the rip-up candidates of the
    /// incremental reroute scheme.
    pub fn a_star_with_penalty(
        &self,
        start: GridPoint,
        goal: GridPoint,
        scratch: &mut SearchScratch,
        penalty: u32,
    ) -> bool {
        self.search(start, goal, scratch, Some(penalty))
    }

    fn search(
        &self,
        start: GridPoint,
        goal: GridPoint,
        scratch: &mut SearchScratch,
        penalty: Option<u32>,
    ) -> bool {
        if !self.contains(start) || !self.contains(goal) {
            return false;
        }
        scratch.begin(self.node_count());
        if start == goal {
            scratch.path.push(start);
            return true;
        }

        scratch.visit(self.node_index(start), 0, u32::MAX);
        scratch.queue.push(Reverse((start.manhattan(goal), start)));

        while let Some(Reverse((_, current))) = scratch.queue.pop() {
            if current == goal {
                self.reconstruct(start, goal, scratch, penalty.is_some());
                return true;
            }
            let current_cost = scratch.cost(self.node_index(current));
            let neighbours = [
                GridPoint::new(current.column + 1, current.track),
                GridPoint::new(current.column - 1, current.track),
                GridPoint::new(current.column, current.track + 1),
                GridPoint::new(current.column, current.track - 1),
            ];
            for next in neighbours {
                if !self.contains(next) {
                    continue;
                }
                let occupant = self.edge_occupant(current, next);
                let step = if occupant == FREE {
                    1
                } else {
                    match penalty {
                        Some(extra) => 1 + extra,
                        None => continue,
                    }
                };
                let cost = current_cost + step;
                let next_index = self.node_index(next);
                if cost < scratch.cost(next_index) {
                    scratch.visit(next_index, cost, self.node_index(current) as u32);
                    scratch.queue.push(Reverse((cost as i64 + next.manhattan(goal), next)));
                }
            }
        }
        false
    }

    /// Rebuilds the found path into `scratch.path` (start → goal) and, in
    /// penalty mode, collects the occupants of crossed edges.
    fn reconstruct(
        &self,
        start: GridPoint,
        goal: GridPoint,
        scratch: &mut SearchScratch,
        collect_blockers: bool,
    ) {
        let mut cursor = goal;
        scratch.path.push(goal);
        while cursor != start {
            let parent_index = scratch.parent[self.node_index(cursor)];
            let parent = GridPoint::new(
                parent_index as i64 % self.columns,
                parent_index as i64 / self.columns,
            );
            if collect_blockers {
                let occupant = self.edge_occupant(parent, cursor);
                if occupant != FREE {
                    scratch.blockers.push(occupant);
                }
            }
            scratch.path.push(parent);
            cursor = parent;
        }
        scratch.path.reverse();
        scratch.blockers.sort_unstable();
        scratch.blockers.dedup();
    }

    /// Allocating convenience wrapper around [`ChannelGrid::a_star_into`]
    /// (compatibility API; the router's hot path reuses a scratch instead).
    pub fn a_star(&self, start: GridPoint, goal: GridPoint) -> Option<Vec<GridPoint>> {
        let mut scratch = SearchScratch::new();
        if self.a_star_into(start, goal, &mut scratch) {
            Some(scratch.path)
        } else {
            None
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn straight_path_has_manhattan_length() {
        let grid = ChannelGrid::new(20, 5);
        let path = grid.a_star(GridPoint::new(2, 0), GridPoint::new(10, 4)).expect("routable");
        assert_eq!(path.len() as i64 - 1, 8 + 4, "empty grid path is the Manhattan distance");
        assert_eq!(path[0], GridPoint::new(2, 0));
        assert_eq!(*path.last().unwrap(), GridPoint::new(10, 4));
        // Consecutive nodes are grid neighbours.
        for pair in path.windows(2) {
            assert_eq!(pair[0].manhattan(pair[1]), 1);
        }
    }

    #[test]
    fn crossing_wires_are_allowed_on_different_layers() {
        let mut grid = ChannelGrid::new(10, 4);
        // First net: vertical at column 5.
        let first = grid.a_star(GridPoint::new(5, 0), GridPoint::new(5, 3)).expect("routable");
        grid.occupy_path(&first);
        // Second net: horizontal across track 2, crossing column 5.
        let second =
            grid.a_star(GridPoint::new(0, 2), GridPoint::new(9, 2)).expect("crossing is legal");
        assert_eq!(second.len(), 10);
    }

    #[test]
    fn same_layer_conflicts_force_detours() {
        let mut grid = ChannelGrid::new(10, 4);
        let first = grid.a_star(GridPoint::new(0, 1), GridPoint::new(9, 1)).expect("routable");
        grid.occupy_path(&first);
        // A second horizontal net on the same track must detour to another track.
        let second = grid.a_star(GridPoint::new(0, 1), GridPoint::new(9, 1));
        // Start/goal nodes themselves are free, but every horizontal edge of
        // track 1 is taken; the router must change tracks, making the path longer.
        let second = second.expect("a detour exists");
        assert!(second.len() > first.len());
    }

    #[test]
    fn blocked_channel_reports_unroutable() {
        let mut grid = ChannelGrid::new(3, 2);
        // Occupy every edge by routing the full perimeter.
        for track in 0..2 {
            let path =
                grid.a_star(GridPoint::new(0, track), GridPoint::new(2, track)).expect("routable");
            grid.occupy_path(&path);
        }
        for column in 0..3 {
            let path = vec![GridPoint::new(column, 0), GridPoint::new(column, 1)];
            grid.occupy_path(&path);
        }
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(2, 1)).is_none());
    }

    #[test]
    fn expansion_adds_tracks_and_restores_routability() {
        let mut grid = ChannelGrid::new(6, 2);
        // Saturate both horizontal tracks.
        for track in 0..2 {
            let path =
                grid.a_star(GridPoint::new(0, track), GridPoint::new(5, track)).expect("routable");
            grid.occupy_path(&path);
        }
        // A third horizontal net cannot fit: both tracks' edges are used and
        // with only two tracks there is no free detour.
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(5, 0)).is_none());
        grid.expand(1);
        grid.clear();
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(5, 0)).is_some());
        assert_eq!(grid.tracks(), 3);
    }

    #[test]
    fn expansion_preserves_existing_occupancy() {
        let mut grid = ChannelGrid::new(6, 2);
        let path = grid.a_star(GridPoint::new(0, 0), GridPoint::new(5, 0)).expect("routable");
        grid.occupy_path_for(7, &path);
        grid.expand(1);
        assert_eq!(grid.edge_occupant(GridPoint::new(0, 0), GridPoint::new(1, 0)), 7);
        // The new track's edges are free.
        assert_eq!(grid.edge_occupant(GridPoint::new(0, 2), GridPoint::new(1, 2)), FREE);
    }

    #[test]
    fn rip_up_frees_exactly_the_ripped_net() {
        let mut grid = ChannelGrid::new(8, 3);
        let a = grid.a_star(GridPoint::new(0, 1), GridPoint::new(7, 1)).expect("routable");
        grid.occupy_path_for(1, &a);
        let b = grid.a_star(GridPoint::new(3, 0), GridPoint::new(3, 2)).expect("routable");
        grid.occupy_path_for(2, &b);
        grid.rip_up(&a);
        assert_eq!(grid.edge_occupant(GridPoint::new(0, 1), GridPoint::new(1, 1)), FREE);
        assert_eq!(grid.edge_occupant(GridPoint::new(3, 0), GridPoint::new(3, 1)), 2);
        assert_eq!(grid.horizontal_utilization(), 0.0, "only net 2's vertical edges remain");
    }

    #[test]
    fn penalty_search_reports_blockers() {
        let mut grid = ChannelGrid::new(6, 2);
        // Saturate both horizontal tracks with two different nets.
        for (net, track) in [(10u32, 0i64), (11, 1)] {
            let path =
                grid.a_star(GridPoint::new(0, track), GridPoint::new(5, track)).expect("routable");
            grid.occupy_path_for(net, &path);
        }
        let mut scratch = SearchScratch::new();
        assert!(!grid.a_star_into(GridPoint::new(0, 0), GridPoint::new(5, 0), &mut scratch));
        assert!(grid.a_star_with_penalty(
            GridPoint::new(0, 0),
            GridPoint::new(5, 0),
            &mut scratch,
            8
        ));
        assert!(!scratch.blockers().is_empty());
        assert!(scratch.blockers().iter().all(|&b| b == 10 || b == 11));
    }

    #[test]
    fn scratch_reuse_matches_fresh_searches() {
        let mut grid = ChannelGrid::new(16, 6);
        let first = grid.a_star(GridPoint::new(1, 0), GridPoint::new(14, 5)).expect("routable");
        grid.occupy_path(&first);

        // A dirty scratch (used for an unrelated search) must give the same
        // answers as a fresh one.
        let mut dirty = SearchScratch::new();
        assert!(grid.a_star_into(GridPoint::new(15, 0), GridPoint::new(0, 5), &mut dirty));

        for (start, goal) in [
            (GridPoint::new(0, 0), GridPoint::new(15, 5)),
            (GridPoint::new(3, 0), GridPoint::new(3, 5)),
        ] {
            let mut fresh = SearchScratch::new();
            assert!(grid.a_star_into(start, goal, &mut fresh));
            assert!(grid.a_star_into(start, goal, &mut dirty));
            assert_eq!(fresh.path(), dirty.path(), "dirty scratch altered the search result");
        }
    }

    #[test]
    fn out_of_bounds_endpoints_are_rejected() {
        let grid = ChannelGrid::new(4, 4);
        assert!(grid.a_star(GridPoint::new(-1, 0), GridPoint::new(2, 2)).is_none());
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(10, 2)).is_none());
    }

    #[test]
    fn utilization_grows_as_paths_are_committed() {
        let mut grid = ChannelGrid::new(10, 4);
        assert_eq!(grid.horizontal_utilization(), 0.0);
        let path = grid.a_star(GridPoint::new(0, 2), GridPoint::new(9, 2)).expect("routable");
        grid.occupy_path(&path);
        assert!(grid.horizontal_utilization() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn degenerate_grid_rejected() {
        ChannelGrid::new(1, 5);
    }
}
