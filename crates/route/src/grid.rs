//! Two-layer channel routing grid and A* search.
//!
//! Each inter-phase channel is discretized into a grid whose pitch is the
//! process minimum spacing (10 µm for MIT-LL), so a wire can only turn after
//! at least that distance — the "dynamic step size" of Algorithm 1.
//! Horizontal segments run on one metal layer and vertical segments on the
//! other, so two wires may cross but may never share a grid edge on the same
//! layer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// A node of the channel grid: `column` indexes the horizontal position,
/// `track` the vertical position inside the channel (track 0 is the driver
/// side, the last track is the sink side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridPoint {
    /// Horizontal grid index.
    pub column: i64,
    /// Vertical grid index within the channel.
    pub track: i64,
}

impl GridPoint {
    /// Creates a grid point.
    pub fn new(column: i64, track: i64) -> Self {
        Self { column, track }
    }

    /// Manhattan distance to another grid point, in grid units.
    pub fn manhattan(self, other: GridPoint) -> i64 {
        (self.column - other.column).abs() + (self.track - other.track).abs()
    }
}

/// An undirected grid edge, normalized so the smaller endpoint comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Edge(GridPoint, GridPoint);

impl Edge {
    fn new(a: GridPoint, b: GridPoint) -> Self {
        if (a.column, a.track) <= (b.column, b.track) {
            Edge(a, b)
        } else {
            Edge(b, a)
        }
    }

    fn is_horizontal(&self) -> bool {
        self.0.track == self.1.track
    }
}

/// The routing grid of one channel: `columns × tracks` nodes, two wiring
/// layers, per-edge occupancy.
#[derive(Debug, Clone)]
pub struct ChannelGrid {
    columns: i64,
    tracks: i64,
    occupied_horizontal: HashSet<Edge>,
    occupied_vertical: HashSet<Edge>,
}

impl ChannelGrid {
    /// Creates an empty grid with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    pub fn new(columns: i64, tracks: i64) -> Self {
        assert!(columns >= 2 && tracks >= 2, "a channel needs at least a 2x2 grid");
        Self {
            columns,
            tracks,
            occupied_horizontal: HashSet::new(),
            occupied_vertical: HashSet::new(),
        }
    }

    /// Number of horizontal grid positions.
    pub fn columns(&self) -> i64 {
        self.columns
    }

    /// Number of vertical tracks.
    pub fn tracks(&self) -> i64 {
        self.tracks
    }

    /// Grows the channel by `extra` tracks (space expansion).
    pub fn expand(&mut self, extra: i64) {
        self.tracks += extra;
    }

    /// Removes all routed wires (used when a channel is rerouted after a
    /// space expansion).
    pub fn clear(&mut self) {
        self.occupied_horizontal.clear();
        self.occupied_vertical.clear();
    }

    /// Whether a point lies inside the grid.
    pub fn contains(&self, p: GridPoint) -> bool {
        p.column >= 0 && p.column < self.columns && p.track >= 0 && p.track < self.tracks
    }

    fn edge_free(&self, edge: &Edge) -> bool {
        if edge.is_horizontal() {
            !self.occupied_horizontal.contains(edge)
        } else {
            !self.occupied_vertical.contains(edge)
        }
    }

    /// Marks every edge along `path` as occupied on its layer.
    pub fn occupy_path(&mut self, path: &[GridPoint]) {
        for pair in path.windows(2) {
            let edge = Edge::new(pair[0], pair[1]);
            if edge.is_horizontal() {
                self.occupied_horizontal.insert(edge);
            } else {
                self.occupied_vertical.insert(edge);
            }
        }
    }

    /// Fraction of horizontal-layer edges already occupied (a congestion
    /// estimate used in reports).
    pub fn horizontal_utilization(&self) -> f64 {
        let capacity = ((self.columns - 1) * self.tracks).max(1) as f64;
        self.occupied_horizontal.len() as f64 / capacity
    }

    /// Finds a shortest path from `start` to `goal` with A* (Algorithm 1's
    /// `A_star` function): a binary-heap priority queue ordered by cost plus
    /// the Manhattan-distance estimate, expanding only edges that are free on
    /// their layer.
    ///
    /// Returns the node sequence including both endpoints, or `None` if the
    /// goal is unreachable with the current occupancy.
    pub fn a_star(&self, start: GridPoint, goal: GridPoint) -> Option<Vec<GridPoint>> {
        if !self.contains(start) || !self.contains(goal) {
            return None;
        }
        if start == goal {
            return Some(vec![start]);
        }

        let index = |p: GridPoint| (p.track * self.columns + p.column) as usize;
        let node_count = (self.columns * self.tracks) as usize;
        let mut best_cost = vec![i64::MAX; node_count];
        let mut parent: Vec<Option<GridPoint>> = vec![None; node_count];
        // Priority queue keyed by estimated total cost; `Reverse` turns the
        // max-heap into a min-heap.
        let mut queue: BinaryHeap<Reverse<(i64, GridPoint)>> = BinaryHeap::new();

        best_cost[index(start)] = 0;
        queue.push(Reverse((start.manhattan(goal), start)));

        while let Some(Reverse((_, current))) = queue.pop() {
            if current == goal {
                let mut path = vec![goal];
                let mut cursor = goal;
                while let Some(prev) = parent[index(cursor)] {
                    path.push(prev);
                    cursor = prev;
                }
                path.reverse();
                return Some(path);
            }
            let current_cost = best_cost[index(current)];
            let neighbours = [
                GridPoint::new(current.column + 1, current.track),
                GridPoint::new(current.column - 1, current.track),
                GridPoint::new(current.column, current.track + 1),
                GridPoint::new(current.column, current.track - 1),
            ];
            for next in neighbours {
                if !self.contains(next) {
                    continue;
                }
                let edge = Edge::new(current, next);
                if !self.edge_free(&edge) {
                    continue;
                }
                let cost = current_cost + 1;
                if cost < best_cost[index(next)] {
                    best_cost[index(next)] = cost;
                    parent[index(next)] = Some(current);
                    queue.push(Reverse((cost + next.manhattan(goal), next)));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_path_has_manhattan_length() {
        let grid = ChannelGrid::new(20, 5);
        let path = grid.a_star(GridPoint::new(2, 0), GridPoint::new(10, 4)).expect("routable");
        assert_eq!(path.len() as i64 - 1, 8 + 4, "empty grid path is the Manhattan distance");
        assert_eq!(path[0], GridPoint::new(2, 0));
        assert_eq!(*path.last().unwrap(), GridPoint::new(10, 4));
        // Consecutive nodes are grid neighbours.
        for pair in path.windows(2) {
            assert_eq!(pair[0].manhattan(pair[1]), 1);
        }
    }

    #[test]
    fn crossing_wires_are_allowed_on_different_layers() {
        let mut grid = ChannelGrid::new(10, 4);
        // First net: vertical at column 5.
        let first = grid.a_star(GridPoint::new(5, 0), GridPoint::new(5, 3)).expect("routable");
        grid.occupy_path(&first);
        // Second net: horizontal across track 2, crossing column 5.
        let second = grid.a_star(GridPoint::new(0, 2), GridPoint::new(9, 2)).expect("crossing is legal");
        assert_eq!(second.len(), 10);
    }

    #[test]
    fn same_layer_conflicts_force_detours() {
        let mut grid = ChannelGrid::new(10, 4);
        let first = grid.a_star(GridPoint::new(0, 1), GridPoint::new(9, 1)).expect("routable");
        grid.occupy_path(&first);
        // A second horizontal net on the same track must detour to another track.
        let second = grid.a_star(GridPoint::new(0, 1), GridPoint::new(9, 1));
        // Start/goal nodes themselves are free, but every horizontal edge of
        // track 1 is taken; the router must change tracks, making the path longer.
        let second = second.expect("a detour exists");
        assert!(second.len() > first.len());
    }

    #[test]
    fn blocked_channel_reports_unroutable() {
        let mut grid = ChannelGrid::new(3, 2);
        // Occupy every edge by routing the full perimeter.
        for track in 0..2 {
            let path = grid
                .a_star(GridPoint::new(0, track), GridPoint::new(2, track))
                .expect("routable");
            grid.occupy_path(&path);
        }
        for column in 0..3 {
            let path = vec![GridPoint::new(column, 0), GridPoint::new(column, 1)];
            grid.occupy_path(&path);
        }
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(2, 1)).is_none());
    }

    #[test]
    fn expansion_adds_tracks_and_restores_routability() {
        let mut grid = ChannelGrid::new(6, 2);
        // Saturate both horizontal tracks.
        for track in 0..2 {
            let path =
                grid.a_star(GridPoint::new(0, track), GridPoint::new(5, track)).expect("routable");
            grid.occupy_path(&path);
        }
        // A third horizontal net cannot fit: both tracks' edges are used and
        // with only two tracks there is no free detour.
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(5, 0)).is_none());
        grid.expand(1);
        grid.clear();
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(5, 0)).is_some());
        assert_eq!(grid.tracks(), 3);
    }

    #[test]
    fn out_of_bounds_endpoints_are_rejected() {
        let grid = ChannelGrid::new(4, 4);
        assert!(grid.a_star(GridPoint::new(-1, 0), GridPoint::new(2, 2)).is_none());
        assert!(grid.a_star(GridPoint::new(0, 0), GridPoint::new(10, 2)).is_none());
    }

    #[test]
    fn utilization_grows_as_paths_are_committed() {
        let mut grid = ChannelGrid::new(10, 4);
        assert_eq!(grid.horizontal_utilization(), 0.0);
        let path = grid.a_star(GridPoint::new(0, 2), GridPoint::new(9, 2)).expect("routable");
        grid.occupy_path(&path);
        assert!(grid.horizontal_utilization() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn degenerate_grid_rejected() {
        ChannelGrid::new(1, 5);
    }
}
