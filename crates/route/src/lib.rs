//! Layer-wise A* routing with space expansion for AQFP circuits.
//!
//! AQFP routing is simpler than CMOS routing in one way and harder in
//! another: every net is a point-to-point connection between two adjacent
//! clock phases (no global routing across the chip is needed), but only two
//! metal layers are available in each inter-phase channel and the wire
//! geometry must respect the zigzag spacing rule (turns only on the 10 µm
//! grid). SuperFlow therefore routes each channel independently
//! ("layer-wise" routing, §III-D and Algorithm 1 of the paper):
//!
//! * [`grid`] — the two-layer channel routing grid with per-edge occupancy
//!   and an A* shortest-path search with Manhattan heuristic;
//! * [`router`] — the [`Router`] driving channel-by-channel routing with
//!   iterative *space expansion*: when a channel runs out of capacity, the
//!   distance between the two rows grows by one grid step and the channel is
//!   rerouted, exactly as Algorithm 1 describes.
//!
//! # Examples
//!
//! ```
//! use aqfp_cells::CellLibrary;
//! use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
//! use aqfp_place::{PlacementEngine, PlacerKind};
//! use aqfp_route::Router;
//! use aqfp_synth::Synthesizer;
//!
//! let library = CellLibrary::mit_ll();
//! let synthesized = Synthesizer::new(library.clone())
//!     .run(&benchmark_circuit(Benchmark::Adder8))?;
//! let placed = PlacementEngine::new(library.clone()).place(&synthesized, PlacerKind::SuperFlow);
//! let routing = Router::new(library).route(&placed.design);
//! assert_eq!(routing.stats.failed_nets, 0);
//! # Ok::<(), aqfp_synth::SynthesisError>(())
//! ```

pub mod grid;
pub mod router;

pub use grid::{ChannelGrid, GridPoint};
pub use router::{ChannelReport, Router, RouterConfig, RoutedWire, RoutingResult, RoutingStats};
