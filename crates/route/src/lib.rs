//! Layer-wise A* routing with space expansion for AQFP circuits.
//!
//! AQFP routing is simpler than CMOS routing in one way and harder in
//! another: every net is a point-to-point connection between two adjacent
//! clock phases (no global routing across the chip is needed), but only two
//! metal layers are available in each inter-phase channel and the wire
//! geometry must respect the zigzag spacing rule (turns only on the 10 µm
//! grid). SuperFlow therefore routes each channel independently
//! ("layer-wise" routing, §III-D and Algorithm 1 of the paper):
//!
//! * [`grid`] — the two-layer channel routing grid with per-edge occupancy
//!   and an A* shortest-path search with Manhattan heuristic;
//! * [`router`] — the [`Router`] driving channel-by-channel routing with
//!   iterative *space expansion*: when a channel runs out of capacity, the
//!   distance between the two rows grows by one grid step and the channel is
//!   rerouted, exactly as Algorithm 1 describes.
//!
//! # Performance
//!
//! The routing core is built for zero allocation and multi-core operation:
//!
//! * **Flat occupancy** — [`ChannelGrid`] stores per-layer edge occupancy in
//!   flat arrays indexed `track * columns + column` (occupant net id or
//!   free), not hash sets. Lookups in the A* inner loop are a bounds-checked
//!   load, and space expansion appends rows without invalidating existing
//!   entries.
//! * **Search arena** — all A* state (cost, parent and visit tables, the
//!   open queue, the result path) lives in a reusable
//!   [`grid::SearchScratch`] owned per worker. Visit tables are invalidated
//!   by bumping a generation counter, so the search itself performs no
//!   heap allocation after channel setup; routed paths land in a
//!   pre-reserved per-channel point arena referenced by spans, which only
//!   grows under heavy rip-up churn.
//! * **Incremental rip-up and expansion** — when a net fails, a penalty-mode
//!   A* (occupied edges passable at high cost) identifies the minimal set of
//!   blocking nets; if that set is small, the blockers are ripped up and
//!   rerouted instead of expanding. When expansion is needed, routed nets
//!   are *kept* and their sink terminals extended onto the new tracks —
//!   only failed nets reroute. Auto-sized channels start at the classic
//!   density lower bound so congested channels do not discover their track
//!   count one failed round at a time.
//! * **Parallel channels** — channels share no routing state and run on a
//!   worker pool ([`RouterConfig::threads`], `0` = all cores); results merge
//!   in row order, so serial and parallel runs are byte-identical.
//! * **Partial reroute** — [`Router::route_partial`] reroutes only the
//!   channels named dirty (because DRC repair moved cells in them) and
//!   reuses every other channel's wires from the previous
//!   [`RoutingResult`]. Channel routing is deterministic, so the outcome is
//!   byte-identical to a from-scratch [`Router::route`] of the same design;
//!   the flow's DRC-repair loop is built on this entry point.
//!
//! The `routing_perf` bench in `crates/bench` tracks these paths
//! (`route_channel`, `route_parallel_scaling`, `global_place_iteration`) and
//! refreshes the `BENCH_routing.json` baseline at the workspace root.
//!
//! # Examples
//!
//! ```
//! use aqfp_cells::Technology;
//! use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
//! use aqfp_place::{PlacementEngine, PlacerKind};
//! use aqfp_route::Router;
//! use aqfp_synth::Synthesizer;
//!
//! let library = Technology::mit_ll_sqf5ee();
//! let synthesized = Synthesizer::new(library.clone())
//!     .run(&benchmark_circuit(Benchmark::Adder8))?;
//! let placed = PlacementEngine::new(library.clone()).place(&synthesized, PlacerKind::SuperFlow);
//! let routing = Router::new(library).route(&placed.design);
//! assert_eq!(routing.stats.failed_nets, 0);
//! # Ok::<(), aqfp_synth::SynthesisError>(())
//! ```

#![warn(clippy::unwrap_used)]

pub mod grid;
pub mod router;

pub use grid::{ChannelGrid, GridPoint};
pub use router::{ChannelReport, RoutedWire, Router, RouterConfig, RoutingResult, RoutingStats};
