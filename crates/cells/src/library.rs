//! The AQFP standard cell library.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::cell::{AqfpCell, CellKind, PinDirection, PinGeometry};
use crate::clocking::FourPhaseClock;
use crate::geometry::Point;
use crate::process::ProcessRules;

/// The fabrication process a [`CellLibrary`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Process {
    /// AIST standard process 2.
    Stp2,
    /// MIT Lincoln Laboratory SQF5ee.
    MitLl,
}

/// A complete AQFP standard cell library for one fabrication process.
///
/// The library bundles the cell geometry table, the process design rules and
/// the clocking configuration, which is all the static technology data the
/// synthesis, placement, routing and layout stages need.
///
/// ```
/// use aqfp_cells::{CellKind, CellLibrary};
/// let lib = CellLibrary::mit_ll();
/// assert_eq!(lib.cell(CellKind::Buffer).width, 40.0);
/// assert_eq!(lib.cell(CellKind::Majority3).width, 60.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    process: Process,
    rules: ProcessRules,
    clock: FourPhaseClock,
    cells: BTreeMap<CellKind, AqfpCell>,
}

impl CellLibrary {
    /// Builds the library for the MIT-LL SQF5ee process using the dimensions
    /// quoted in the paper (40 × 30 µm buffers, 60 × 70 µm majority gates,
    /// everything snapped to a 10 µm grid).
    pub fn mit_ll() -> Self {
        Self::build(Process::MitLl, ProcessRules::mit_ll())
    }

    /// Builds the library for the AIST STP2 process.
    pub fn stp2() -> Self {
        Self::build(Process::Stp2, ProcessRules::stp2())
    }

    /// Builds a library for `process` with custom design rules.
    ///
    /// # Panics
    ///
    /// Panics if `rules` fail validation; use [`ProcessRules::validate`] to
    /// check user-provided rules first.
    pub fn with_rules(process: Process, rules: ProcessRules) -> Self {
        Self::build(process, rules)
    }

    fn build(process: Process, rules: ProcessRules) -> Self {
        rules.validate().expect("process rules must be internally consistent");
        let mut cells = BTreeMap::new();
        for kind in CellKind::ALL {
            cells.insert(kind, Self::make_cell(kind));
        }
        Self { process, rules, clock: FourPhaseClock::default(), cells }
    }

    /// Cell geometry for the updated (grid-aligned) AQFP standard cell
    /// library: buffers and other single-input cells are 40 × 30 µm, two- and
    /// three-input majority-based cells are 60 × 70 µm, splitters scale with
    /// their arity. JJ counts follow the minimalist-design AQFP library.
    fn make_cell(kind: CellKind) -> AqfpCell {
        let (width, height, jj_count) = match kind {
            CellKind::Buffer | CellKind::Inverter => (40.0, 30.0, 2),
            CellKind::Constant0 | CellKind::Constant1 => (40.0, 30.0, 2),
            CellKind::And | CellKind::Or | CellKind::Nand | CellKind::Nor => (60.0, 70.0, 6),
            CellKind::Xor => (60.0, 70.0, 8),
            CellKind::Majority3 => (60.0, 70.0, 6),
            CellKind::Splitter2 => (40.0, 30.0, 4),
            CellKind::Splitter3 => (60.0, 30.0, 6),
            CellKind::Splitter4 => (80.0, 30.0, 8),
            CellKind::Input | CellKind::Output => (10.0, 10.0, 0),
        };

        let n_in = kind.input_count();
        let n_out = kind.output_count();
        let input_pins = (0..n_in)
            .map(|i| {
                let name = ["a", "b", "c"][i].to_owned();
                let x = Self::pin_x(width, n_in, i);
                PinGeometry::new(name, PinDirection::Input, Point::new(x, 0.0))
            })
            .collect();
        let output_pins = (0..n_out)
            .map(|i| {
                let name = if n_out == 1 { "xout".to_owned() } else { format!("xout{}", i + 1) };
                let x = Self::pin_x(width, n_out, i);
                PinGeometry::new(name, PinDirection::Output, Point::new(x, height))
            })
            .collect();

        AqfpCell { kind, width, height, jj_count, input_pins, output_pins }
    }

    /// Evenly distributes `count` pins across the cell width, snapped to the
    /// 10 µm grid.
    fn pin_x(width: f64, count: usize, index: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let step = width / (count as f64 + 1.0);
        ((step * (index as f64 + 1.0)) / 10.0).round() * 10.0
    }

    /// The process this library targets.
    pub fn process(&self) -> Process {
        self.process
    }

    /// The process design rules.
    pub fn rules(&self) -> &ProcessRules {
        &self.rules
    }

    /// The clock configuration (defaults to the paper's 5 GHz).
    pub fn clock(&self) -> FourPhaseClock {
        self.clock
    }

    /// Replaces the clock configuration, returning the modified library.
    pub fn with_clock(mut self, clock: FourPhaseClock) -> Self {
        self.clock = clock;
        self
    }

    /// Looks up the cell definition for `kind`.
    ///
    /// # Panics
    ///
    /// Never panics: the library contains every [`CellKind`].
    pub fn cell(&self, kind: CellKind) -> &AqfpCell {
        self.cells.get(&kind).expect("library contains every cell kind")
    }

    /// Iterates over all cells in the library in [`CellKind`] order.
    pub fn iter(&self) -> impl Iterator<Item = &AqfpCell> {
        self.cells.values()
    }

    /// Total JJ count of a multiset of cell kinds, e.g. an entire netlist.
    pub fn total_jj<I: IntoIterator<Item = CellKind>>(&self, kinds: I) -> usize {
        kinds.into_iter().map(|k| self.cell(k).jj_count).sum()
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::mit_ll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_are_respected() {
        let lib = CellLibrary::mit_ll();
        let buf = lib.cell(CellKind::Buffer);
        assert_eq!((buf.width, buf.height), (40.0, 30.0));
        let maj = lib.cell(CellKind::Majority3);
        assert_eq!((maj.width, maj.height), (60.0, 70.0));
    }

    #[test]
    fn all_dimensions_are_grid_aligned() {
        let lib = CellLibrary::stp2();
        for cell in lib.iter() {
            assert_eq!(cell.width % 10.0, 0.0, "{} width off-grid", cell.kind);
            assert_eq!(cell.height % 10.0, 0.0, "{} height off-grid", cell.kind);
            for pin in cell.input_pins.iter().chain(cell.output_pins.iter()) {
                assert_eq!(pin.offset.x % 10.0, 0.0, "{} pin {} off-grid", cell.kind, pin.name);
            }
        }
    }

    #[test]
    fn pin_counts_match_cell_arity() {
        let lib = CellLibrary::mit_ll();
        for cell in lib.iter() {
            assert_eq!(cell.input_pins.len(), cell.kind.input_count());
            assert_eq!(cell.output_pins.len(), cell.kind.output_count());
        }
    }

    #[test]
    fn buffer_is_double_jj() {
        let lib = CellLibrary::mit_ll();
        assert_eq!(lib.cell(CellKind::Buffer).jj_count, 2);
        assert!(lib.cell(CellKind::Majority3).jj_count > 2);
        assert_eq!(lib.cell(CellKind::Input).jj_count, 0);
    }

    #[test]
    fn total_jj_sums_kinds() {
        let lib = CellLibrary::mit_ll();
        let total = lib.total_jj([CellKind::Buffer, CellKind::Buffer, CellKind::Majority3]);
        assert_eq!(total, 2 + 2 + 6);
    }

    #[test]
    fn pin_positions_are_inside_cell() {
        let lib = CellLibrary::mit_ll();
        for cell in lib.iter() {
            for pin in cell.input_pins.iter().chain(cell.output_pins.iter()) {
                assert!(pin.offset.x >= 0.0 && pin.offset.x <= cell.width);
                assert!(pin.offset.y >= 0.0 && pin.offset.y <= cell.height);
            }
        }
    }
}
