//! The AQFP standard cell library — a legacy view over a [`Technology`].
//!
//! The flow's stage engines consume a full [`Technology`] (rules, cells,
//! clock, timing coefficients and GDS layers). [`CellLibrary`] remains as
//! the smaller rules-plus-cells bundle older call sites were built around;
//! its constructors are thin lookups into the same built-in technology data,
//! and it converts into a [`Technology`] (filling the timing and layer
//! fields from the matching built-in), so it is accepted anywhere an
//! `impl Into<Arc<Technology>>` is.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::cell::{AqfpCell, CellKind};
use crate::clocking::FourPhaseClock;
use crate::process::ProcessRules;
use crate::technology::{standard_cell_table, Technology};

/// The fabrication process a [`CellLibrary`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Process {
    /// AIST standard process 2.
    Stp2,
    /// MIT Lincoln Laboratory SQF5ee.
    MitLl,
}

impl Process {
    /// The registry name of the built-in [`Technology`] for this process.
    pub fn tech_name(self) -> &'static str {
        match self {
            Process::MitLl => crate::technology::MIT_LL_SQF5EE,
            Process::Stp2 => crate::technology::AIST_STP2,
        }
    }

    /// The built-in [`Technology`] for this process.
    pub fn technology(self) -> Technology {
        match self {
            Process::MitLl => Technology::mit_ll_sqf5ee(),
            Process::Stp2 => Technology::aist_stp2(),
        }
    }
}

/// A complete AQFP standard cell library for one fabrication process.
///
/// The library bundles the cell geometry table, the process design rules and
/// the clocking configuration. New code should prefer [`Technology`], which
/// additionally carries the timing coefficients and GDS layer map; a
/// `CellLibrary` converts into one.
///
/// ```
/// use aqfp_cells::{CellKind, CellLibrary};
/// let lib = CellLibrary::mit_ll();
/// assert_eq!(lib.cell(CellKind::Buffer).width, 40.0);
/// assert_eq!(lib.cell(CellKind::Majority3).width, 60.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    process: Process,
    rules: ProcessRules,
    clock: FourPhaseClock,
    cells: BTreeMap<CellKind, AqfpCell>,
}

impl CellLibrary {
    /// The library view of the built-in MIT-LL SQF5ee technology (40 × 30 µm
    /// buffers, 60 × 70 µm majority gates, everything snapped to a 10 µm
    /// grid).
    pub fn mit_ll() -> Self {
        Self::from_technology(&Technology::mit_ll_sqf5ee())
    }

    /// The library view of the built-in AIST STP2 technology.
    pub fn stp2() -> Self {
        Self::from_technology(&Technology::aist_stp2())
    }

    /// Builds a library for `process` with custom design rules and the
    /// standard cell table.
    ///
    /// # Panics
    ///
    /// Panics if `rules` fail validation; use [`ProcessRules::validate`] to
    /// check user-provided rules first.
    pub fn with_rules(process: Process, rules: ProcessRules) -> Self {
        rules.validate().expect("process rules must be internally consistent");
        Self { process, rules, clock: FourPhaseClock::default(), cells: standard_cell_table() }
    }

    /// The library view (process, rules, clock, cells) of a [`Technology`].
    ///
    /// The view is **lossy**: a `CellLibrary` stores no timing coefficients
    /// or layer map, and the `process` tag is inferred from the technology's
    /// registry name (anything that is not `aist-stp2` maps to
    /// [`Process::MitLl`]). Converting back with
    /// [`CellLibrary::technology`] therefore fills those fields from the
    /// mapped *built-in* — custom technologies should stay [`Technology`]
    /// end to end and never round-trip through this legacy view.
    pub fn from_technology(technology: &Technology) -> Self {
        let process = if technology.name == crate::technology::AIST_STP2 {
            Process::Stp2
        } else {
            Process::MitLl
        };
        Self {
            process,
            rules: technology.rules.clone(),
            clock: technology.clock(),
            cells: technology.cells.clone(),
        }
    }

    /// The full [`Technology`] this library corresponds to: the library's
    /// process, rules, clock and cells, with the name, description, timing
    /// coefficients and layer map of the matching *built-in* technology
    /// (the library does not store them). This is the legacy bridge behind
    /// `From<CellLibrary> for Arc<Technology>`; see
    /// [`CellLibrary::from_technology`] for why custom technologies should
    /// not round-trip through it.
    pub fn technology(&self) -> Technology {
        let mut technology = self.process.technology();
        technology.rules = self.rules.clone();
        technology.timing.clock = self.clock;
        technology.cells = self.cells.clone();
        technology
    }

    /// The process this library targets.
    pub fn process(&self) -> Process {
        self.process
    }

    /// The process design rules.
    pub fn rules(&self) -> &ProcessRules {
        &self.rules
    }

    /// The clock configuration (defaults to the paper's 5 GHz).
    pub fn clock(&self) -> FourPhaseClock {
        self.clock
    }

    /// Replaces the clock configuration, returning the modified library.
    pub fn with_clock(mut self, clock: FourPhaseClock) -> Self {
        self.clock = clock;
        self
    }

    /// Looks up the cell definition for `kind`.
    ///
    /// # Panics
    ///
    /// Never panics: the library contains every [`CellKind`].
    pub fn cell(&self, kind: CellKind) -> &AqfpCell {
        self.cells.get(&kind).expect("library contains every cell kind")
    }

    /// Iterates over all cells in the library in [`CellKind`] order.
    pub fn iter(&self) -> impl Iterator<Item = &AqfpCell> {
        self.cells.values()
    }

    /// Total JJ count of a multiset of cell kinds, e.g. an entire netlist.
    pub fn total_jj<I: IntoIterator<Item = CellKind>>(&self, kinds: I) -> usize {
        kinds.into_iter().map(|k| self.cell(k).jj_count).sum()
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::mit_ll()
    }
}

impl From<CellLibrary> for Technology {
    fn from(library: CellLibrary) -> Self {
        library.technology()
    }
}

impl From<CellLibrary> for Arc<Technology> {
    fn from(library: CellLibrary) -> Self {
        Arc::new(library.technology())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_are_respected() {
        let lib = CellLibrary::mit_ll();
        let buf = lib.cell(CellKind::Buffer);
        assert_eq!((buf.width, buf.height), (40.0, 30.0));
        let maj = lib.cell(CellKind::Majority3);
        assert_eq!((maj.width, maj.height), (60.0, 70.0));
    }

    #[test]
    fn all_dimensions_are_grid_aligned() {
        let lib = CellLibrary::stp2();
        for cell in lib.iter() {
            assert_eq!(cell.width % 10.0, 0.0, "{} width off-grid", cell.kind);
            assert_eq!(cell.height % 10.0, 0.0, "{} height off-grid", cell.kind);
            for pin in cell.input_pins.iter().chain(cell.output_pins.iter()) {
                assert_eq!(pin.offset.x % 10.0, 0.0, "{} pin {} off-grid", cell.kind, pin.name);
            }
        }
    }

    #[test]
    fn pin_counts_match_cell_arity() {
        let lib = CellLibrary::mit_ll();
        for cell in lib.iter() {
            assert_eq!(cell.input_pins.len(), cell.kind.input_count());
            assert_eq!(cell.output_pins.len(), cell.kind.output_count());
        }
    }

    #[test]
    fn buffer_is_double_jj() {
        let lib = CellLibrary::mit_ll();
        assert_eq!(lib.cell(CellKind::Buffer).jj_count, 2);
        assert!(lib.cell(CellKind::Majority3).jj_count > 2);
        assert_eq!(lib.cell(CellKind::Input).jj_count, 0);
    }

    #[test]
    fn total_jj_sums_kinds() {
        let lib = CellLibrary::mit_ll();
        let total = lib.total_jj([CellKind::Buffer, CellKind::Buffer, CellKind::Majority3]);
        assert_eq!(total, 2 + 2 + 6);
    }

    #[test]
    fn pin_positions_are_inside_cell() {
        let lib = CellLibrary::mit_ll();
        for cell in lib.iter() {
            for pin in cell.input_pins.iter().chain(cell.output_pins.iter()) {
                assert!(pin.offset.x >= 0.0 && pin.offset.x <= cell.width);
                assert!(pin.offset.y >= 0.0 && pin.offset.y <= cell.height);
            }
        }
    }

    #[test]
    fn library_is_a_thin_lookup_over_the_technology_data() {
        // The old constructors and the registry data must stay byte-for-byte
        // aligned: same rules, same clock, same cell table.
        let lib = CellLibrary::mit_ll();
        let tech = Technology::mit_ll_sqf5ee();
        assert_eq!(lib.rules(), tech.rules());
        assert_eq!(lib.clock(), tech.clock());
        assert_eq!(lib.cells, tech.cells);
        assert_eq!(CellLibrary::stp2().rules(), Technology::aist_stp2().rules());
    }

    #[test]
    fn library_round_trips_through_technology() {
        let lib = CellLibrary::mit_ll();
        let tech: Technology = lib.clone().into();
        tech.validate().expect("converted technology is valid");
        assert_eq!(CellLibrary::from_technology(&tech), lib);
        assert_eq!(tech, Technology::mit_ll_sqf5ee());

        // Custom rules survive the conversion.
        let mut rules = ProcessRules::mit_ll();
        rules.max_wirelength = 250.0;
        let custom = CellLibrary::with_rules(Process::MitLl, rules.clone());
        let tech: Technology = custom.into();
        assert_eq!(tech.rules().max_wirelength, 250.0);
        assert_eq!(tech.timing, Technology::mit_ll_sqf5ee().timing);
    }

    #[test]
    fn process_maps_to_registry_names() {
        assert_eq!(Process::MitLl.tech_name(), "mit-ll-sqf5ee");
        assert_eq!(Process::Stp2.tech_name(), "aist-stp2");
        assert_eq!(Process::Stp2.technology().name, "aist-stp2");
    }
}
