//! A minimal TOML writer and parser over the vendored [`serde::Value`] tree.
//!
//! Technology description files are TOML so a process engineer can dump a
//! built-in technology, edit one number in a text editor and feed the file
//! back to the flow. This module implements exactly the TOML subset those
//! files need — and that [`write_toml`] emits — rather than the full spec:
//!
//! * top-level and nested tables (`[rules]`, `[cells.Buffer]`),
//! * arrays of tables (`[[cells.Buffer.input_pins]]`),
//! * basic strings with the standard escapes (`\"`, `\\`, `\n`, `\t`, `\r`,
//!   `\uXXXX`),
//! * booleans, integers, floats and single-line arrays of scalars,
//! * `#` comments and blank lines.
//!
//! Values must fit on one line (multi-line strings and multi-line arrays are
//! not supported) and keys are bare (`A-Z a-z 0-9 _ -`) or basic-quoted.
//! Duplicate keys and duplicate table headers are errors, so a file that
//! accidentally defines `max_wirelength` twice fails loudly instead of
//! silently keeping one of the two.

use serde::{Error, Value};

/// Renders a [`Value::Map`] as a TOML document.
///
/// Scalar entries (and arrays of scalars) of each table are written before
/// its sub-tables, as TOML requires. Map values inside sequences become
/// arrays of tables; sequences must be homogeneous (all scalars or all
/// maps).
///
/// # Errors
///
/// Returns an error when the root is not a map, a value is `Null` (TOML has
/// no null), a float is not finite, or a sequence mixes scalars and maps.
pub fn write_toml(root: &Value) -> Result<String, Error> {
    let Value::Map(entries) = root else {
        return Err(Error::new(format!("TOML document root must be a map, got {}", root.kind())));
    };
    let mut out = String::new();
    write_table(&mut out, &mut Vec::new(), entries)?;
    Ok(out)
}

/// Parses a TOML document into a [`Value::Map`].
///
/// # Errors
///
/// Returns an error naming the offending line for malformed headers,
/// unparsable values, duplicate keys or duplicate table headers.
pub fn parse_toml(text: &str) -> Result<Value, Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table the following `key = value` lines belong to.
    let mut current: Vec<String> = Vec::new();
    // Paths of explicitly written `[header]`s: per the TOML spec a
    // supertable may be *implicitly* created by a subtable header (e.g.
    // `[timing.clock]` before `[timing]`) and opened explicitly later, but
    // writing the same `[header]` twice is an error.
    let mut explicit: Vec<Vec<String>> = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = strip_comment(raw_line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| Error::new(format!("line {line_no}: unterminated `[[` header")))?;
            current = parse_key_path(header, line_no)?;
            append_array_table(&mut root, &current, line_no)?;
            // Headers under the array path now refer to the *new* element,
            // so their textual paths may legitimately repeat — forget the
            // ones recorded for previous elements.
            explicit
                .retain(|path| path.len() < current.len() || path[..current.len()] != current[..]);
        } else if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| Error::new(format!("line {line_no}: unterminated `[` header")))?;
            current = parse_key_path(header, line_no)?;
            if explicit.contains(&current) {
                return Err(Error::new(format!(
                    "line {line_no}: duplicate table `[{}]`",
                    current.join(".")
                )));
            }
            explicit.push(current.clone());
            open_table(&mut root, &current, line_no)?;
        } else {
            let (key, value) = parse_key_value(line, line_no)?;
            insert_value(&mut root, &current, key, value, line_no)?;
        }
    }
    Ok(Value::Map(root))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Whether `value` is rendered inline (scalar or array of scalars) rather
/// than as a `[table]` / `[[array-of-tables]]` section.
fn is_inline(value: &Value) -> bool {
    match value {
        Value::Map(_) => false,
        Value::Seq(items) => !items.iter().any(|item| matches!(item, Value::Map(_))),
        _ => true,
    }
}

fn write_table(
    out: &mut String,
    path: &mut Vec<String>,
    entries: &[(String, Value)],
) -> Result<(), Error> {
    for (key, value) in entries.iter().filter(|(_, value)| is_inline(value)) {
        out.push_str(&format_key(key));
        out.push_str(" = ");
        write_inline(out, value)?;
        out.push('\n');
    }
    for (key, value) in entries.iter().filter(|(_, value)| !is_inline(value)) {
        path.push(key.clone());
        match value {
            Value::Map(inner) => {
                out.push_str("\n[");
                out.push_str(&format_key_path(path));
                out.push_str("]\n");
                write_table(out, path, inner)?;
            }
            Value::Seq(items) => {
                for item in items {
                    let Value::Map(inner) = item else {
                        return Err(Error::new(format!(
                            "sequence `{}` mixes tables and scalars",
                            format_key_path(path)
                        )));
                    };
                    out.push_str("\n[[");
                    out.push_str(&format_key_path(path));
                    out.push_str("]]\n");
                    write_table(out, path, inner)?;
                }
            }
            _ => unreachable!("is_inline covers every other variant"),
        }
        path.pop();
    }
    Ok(())
}

fn write_inline(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => return Err(Error::new("TOML cannot represent null values")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_float(out, *v)?,
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item)?;
            }
            out.push(']');
        }
        Value::Map(_) => return Err(Error::new("inline tables are not emitted")),
    }
    Ok(())
}

/// Writes a float using Rust's shortest round-trip representation, forcing a
/// decimal point so the literal parses back as a float.
fn write_float(out: &mut String, value: f64) -> Result<(), Error> {
    if !value.is_finite() {
        return Err(Error::new("TOML floats must be finite"));
    }
    let text = format!("{value}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn format_key(key: &str) -> String {
    if is_bare_key(key) {
        key.to_owned()
    } else {
        let mut quoted = String::new();
        write_string(&mut quoted, key);
        quoted
    }
}

fn format_key_path(path: &[String]) -> String {
    path.iter().map(|part| format_key(part)).collect::<Vec<_>>().join(".")
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Removes a trailing `#` comment, respecting `#` inside basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (index, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..index],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses a dotted key path like `cells.Buffer` or `"odd key".inner`.
fn parse_key_path(text: &str, line_no: usize) -> Result<Vec<String>, Error> {
    let mut parts = Vec::new();
    let mut cursor = Cursor { bytes: text.trim().as_bytes(), pos: 0, line_no };
    loop {
        cursor.skip_spaces();
        parts.push(cursor.parse_key()?);
        cursor.skip_spaces();
        match cursor.peek() {
            Some(b'.') => cursor.pos += 1,
            None => break,
            Some(other) => {
                return Err(Error::new(format!(
                    "line {line_no}: unexpected `{}` in table header",
                    other as char
                )))
            }
        }
    }
    Ok(parts)
}

fn parse_key_value(line: &str, line_no: usize) -> Result<(String, Value), Error> {
    let mut cursor = Cursor { bytes: line.as_bytes(), pos: 0, line_no };
    cursor.skip_spaces();
    let key = cursor.parse_key()?;
    cursor.skip_spaces();
    if cursor.peek() == Some(b'.') {
        return Err(Error::new(format!(
            "line {line_no}: dotted keys are not supported; use a `[{key}.…]` table header"
        )));
    }
    if cursor.peek() != Some(b'=') {
        return Err(Error::new(format!("line {line_no}: expected `=` after key `{key}`")));
    }
    cursor.pos += 1;
    cursor.skip_spaces();
    let value = cursor.parse_value()?;
    cursor.skip_spaces();
    if cursor.pos != cursor.bytes.len() {
        return Err(Error::new(format!("line {line_no}: trailing characters after value")));
    }
    Ok((key, value))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line_no: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn parse_key(&mut self) -> Result<String, Error> {
        if self.peek() == Some(b'"') {
            return self.parse_string();
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(Error::new(format!("line {}: expected a key", self.line_no)));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "line {}: unexpected `{}` at start of value",
                self.line_no, other as char
            ))),
            None => Err(Error::new(format!("line {}: missing value", self.line_no))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        let text = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| Error::new(format!("line {}: invalid UTF-8", self.line_no)))?;
        let mut chars = text.char_indices();
        while let Some((offset, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += offset + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, escape) = chars.next().ok_or_else(|| {
                        Error::new(format!("line {}: unterminated escape", self.line_no))
                    })?;
                    match escape {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, digit) = chars.next().ok_or_else(|| {
                                    Error::new(format!(
                                        "line {}: truncated \\u escape",
                                        self.line_no
                                    ))
                                })?;
                                code = code * 16
                                    + digit.to_digit(16).ok_or_else(|| {
                                        Error::new(format!(
                                            "line {}: invalid \\u escape",
                                            self.line_no
                                        ))
                                    })?;
                            }
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error::new(format!("line {}: invalid \\u code point", self.line_no))
                            })?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "line {}: unsupported escape `\\{other}`",
                                self.line_no
                            )))
                        }
                    }
                }
                c => out.push(c),
            }
        }
        Err(Error::new(format!("line {}: unterminated string", self.line_no)))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.pos += 1;
        let mut items = Vec::new();
        loop {
            self.skip_spaces();
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                None => {
                    return Err(Error::new(format!(
                        "line {}: unterminated array (arrays must fit on one line)",
                        self.line_no
                    )))
                }
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_spaces();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {}
                _ => {
                    return Err(Error::new(format!(
                        "line {}: expected `,` or `]` after array item",
                        self.line_no
                    )))
                }
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, Error> {
        let rest = &self.bytes[self.pos..];
        if rest.starts_with(b"true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if rest.starts_with(b"false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err(Error::new(format!("line {}: expected `true` or `false`", self.line_no)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number characters are valid UTF-8");
        if text.contains(['.', 'e', 'E']) {
            let value: f64 = text.parse().map_err(|_| {
                Error::new(format!("line {}: invalid float `{text}`", self.line_no))
            })?;
            Ok(Value::F64(value))
        } else if let Some(negative) = text.strip_prefix('-') {
            let value: i64 = negative.parse().map(|v: i64| -v).map_err(|_| {
                Error::new(format!("line {}: invalid integer `{text}`", self.line_no))
            })?;
            Ok(Value::I64(value))
        } else {
            let value: u64 = text.strip_prefix('+').unwrap_or(text).parse().map_err(|_| {
                Error::new(format!("line {}: invalid integer `{text}`", self.line_no))
            })?;
            Ok(Value::U64(value))
        }
    }
}

// ---------------------------------------------------------------------------
// Parser tree assembly
// ---------------------------------------------------------------------------

/// Walks `path` down the tree, creating empty tables as needed, and returns
/// the entry list of the table the path names. A `[[…]]` element along the
/// way resolves to its most recent table.
fn descend<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    line_no: usize,
) -> Result<&'a mut Vec<(String, Value)>, Error> {
    let mut table = root;
    for part in path {
        if !table.iter().any(|(key, _)| key == part) {
            table.push((part.clone(), Value::Map(Vec::new())));
        }
        let slot = &mut table.iter_mut().find(|(key, _)| key == part).expect("just ensured").1;
        table = match slot {
            Value::Map(inner) => inner,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(inner)) => inner,
                _ => {
                    return Err(Error::new(format!(
                        "line {line_no}: `{part}` is not a table of tables"
                    )))
                }
            },
            _ => return Err(Error::new(format!("line {line_no}: `{part}` is not a table"))),
        };
    }
    Ok(table)
}

fn open_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line_no: usize,
) -> Result<(), Error> {
    let (last, parents) =
        path.split_last().ok_or_else(|| Error::new(format!("line {line_no}: empty header")))?;
    let parent = descend(root, parents, line_no)?;
    match parent.iter().find(|(key, _)| key == last) {
        // Already implicitly created by a subtable header — opening it
        // explicitly is fine (the caller rejects duplicate *explicit*
        // headers).
        Some((_, Value::Map(_))) => Ok(()),
        Some(_) => Err(Error::new(format!(
            "line {line_no}: `[{}]` already defined as a non-table value",
            path.join(".")
        ))),
        None => {
            parent.push((last.clone(), Value::Map(Vec::new())));
            Ok(())
        }
    }
}

fn append_array_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line_no: usize,
) -> Result<(), Error> {
    let (last, parents) =
        path.split_last().ok_or_else(|| Error::new(format!("line {line_no}: empty header")))?;
    let parent = descend(root, parents, line_no)?;
    match parent.iter_mut().find(|(key, _)| key == last) {
        None => parent.push((last.clone(), Value::Seq(vec![Value::Map(Vec::new())]))),
        Some((_, Value::Seq(items))) => items.push(Value::Map(Vec::new())),
        Some(_) => {
            return Err(Error::new(format!(
                "line {line_no}: `{last}` already defined as a non-array value"
            )))
        }
    }
    Ok(())
}

fn insert_value(
    root: &mut Vec<(String, Value)>,
    current: &[String],
    key: String,
    value: Value,
    line_no: usize,
) -> Result<(), Error> {
    let table = descend(root, current, line_no)?;
    if table.iter().any(|(existing, _)| *existing == key) {
        return Err(Error::new(format!("line {line_no}: duplicate key `{key}`")));
    }
    table.push((key, value));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: Vec<(&str, Value)>) -> Value {
        Value::Map(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    #[test]
    fn scalars_and_tables_round_trip() {
        let doc = map(vec![
            ("name", Value::Str("demo".into())),
            ("count", Value::U64(3)),
            ("offset", Value::I64(-2)),
            ("scale", Value::F64(0.03)),
            ("enabled", Value::Bool(true)),
            ("rules", map(vec![("grid", Value::F64(10.0)), ("layers", Value::U64(2))])),
        ]);
        let text = write_toml(&doc).expect("writes");
        assert!(text.contains("name = \"demo\""));
        assert!(text.contains("[rules]"));
        assert!(text.contains("grid = 10.0"), "floats keep a decimal point: {text}");
        let parsed = parse_toml(&text).expect("parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn arrays_of_tables_round_trip() {
        let doc = map(vec![(
            "cells",
            map(vec![(
                "Buffer",
                map(vec![
                    ("width", Value::F64(40.0)),
                    (
                        "pins",
                        Value::Seq(vec![
                            map(vec![("name", Value::Str("a".into())), ("x", Value::F64(20.0))]),
                            map(vec![("name", Value::Str("b".into())), ("x", Value::F64(30.0))]),
                        ]),
                    ),
                ]),
            )]),
        )]);
        let text = write_toml(&doc).expect("writes");
        assert_eq!(text.matches("[[cells.Buffer.pins]]").count(), 2, "{text}");
        assert_eq!(parse_toml(&text).expect("parses"), doc);
    }

    #[test]
    fn scalar_arrays_and_empty_arrays_round_trip() {
        let doc = map(vec![
            ("xs", Value::Seq(vec![Value::U64(1), Value::U64(2)])),
            ("empty", Value::Seq(vec![])),
        ]);
        let text = write_toml(&doc).expect("writes");
        assert!(text.contains("xs = [1, 2]"));
        assert!(text.contains("empty = []"));
        assert_eq!(parse_toml(&text).expect("parses"), doc);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let doc = map(vec![("s", Value::Str("a \"quoted\"\nline\tand \\ slash".into()))]);
        let text = write_toml(&doc).expect("writes");
        assert_eq!(parse_toml(&text).expect("parses"), doc);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header comment\n\nname = \"x\" # trailing\nhash = \"a#b\"\n\n[t]\nv = 1\n";
        let parsed = parse_toml(text).expect("parses");
        assert_eq!(
            parsed,
            map(vec![
                ("name", Value::Str("x".into())),
                ("hash", Value::Str("a#b".into())),
                ("t", map(vec![("v", Value::U64(1))])),
            ])
        );
    }

    #[test]
    fn duplicate_keys_and_tables_are_rejected() {
        assert!(parse_toml("a = 1\na = 2\n").is_err());
        assert!(parse_toml("[t]\n[t]\n").is_err());
        let nested = "[t]\na = 1\n[t.inner]\nb = 2\n";
        assert!(parse_toml(nested).is_ok(), "sub-tables of an open table are fine");
    }

    /// Per the TOML spec, a supertable may be opened *after* a subtable
    /// header implicitly created it — hand-reordered tech files stay
    /// loadable — while re-opening an explicitly written header is still a
    /// duplicate.
    #[test]
    fn supertable_after_subtable_is_accepted() {
        let reordered = "[t.inner]\nb = 2\n\n[t]\na = 1\n";
        let parsed = parse_toml(reordered).expect("reordered supertable parses");
        assert_eq!(
            parsed,
            map(vec![(
                "t",
                map(vec![("inner", map(vec![("b", Value::U64(2))])), ("a", Value::U64(1))]),
            )])
        );
        let duplicated = "[t.inner]\nb = 2\n[t]\na = 1\n[t]\nc = 3\n";
        let err = parse_toml(duplicated).expect_err("explicit duplicate still rejected");
        assert!(err.to_string().contains("duplicate table"), "{err}");
    }

    #[test]
    fn arrays_require_commas_between_items() {
        assert!(parse_toml("xs = [1 2]\n").is_err(), "missing comma must not parse");
        assert_eq!(
            parse_toml("xs = [1, 2,]\n").expect("trailing comma is fine"),
            map(vec![("xs", Value::Seq(vec![Value::U64(1), Value::U64(2)]))])
        );
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = parse_toml("ok = 1\nbroken ?= 2\n").expect_err("malformed");
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_toml("[unterminated\n").expect_err("malformed");
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(parse_toml("x = nonsense\n").is_err());
        assert!(parse_toml("x = \"open\n").is_err());
    }

    #[test]
    fn floats_survive_exactly() {
        for value in [0.03, 1e-9, 123.456, 400.0, -0.25, 5.0] {
            let doc = map(vec![("v", Value::F64(value))]);
            let text = write_toml(&doc).expect("writes");
            let parsed = parse_toml(&text).expect("parses");
            let Value::Map(entries) = parsed else { panic!("map") };
            let Value::F64(back) = entries[0].1 else { panic!("float, got {:?}", entries[0].1) };
            assert_eq!(back.to_bits(), value.to_bits(), "{value} round-trips bit-exactly");
        }
    }

    #[test]
    fn null_and_non_finite_are_unrepresentable() {
        assert!(write_toml(&map(vec![("n", Value::Null)])).is_err());
        assert!(write_toml(&map(vec![("f", Value::F64(f64::NAN))])).is_err());
        assert!(write_toml(&Value::Seq(vec![])).is_err(), "root must be a map");
    }
}
