//! Delay coefficients of the AQFP timing model.
//!
//! The coefficients live here in `aqfp_cells` — next to the process rules
//! and the clocking model — because they are process facts: a
//! [`Technology`](crate::Technology) bundles them with the cell geometry and
//! design rules, and the timing engine (`aqfp_timing`) re-exports the type.

use crate::clocking::FourPhaseClock;
use serde::{Deserialize, Serialize};

/// Coefficients of the AQFP timing model.
///
/// The defaults are calibrated so that a typical AQFP connection (a few
/// hundred micrometers between adjacent rows) fits comfortably inside the
/// 50 ps phase budget of a 5 GHz clock, while connections near the maximum
/// wirelength start eating into the margin — the behaviour the paper's WNS
/// numbers exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Target four-phase clock.
    pub clock: FourPhaseClock,
    /// Fixed switching delay of an AQFP gate, in picoseconds.
    pub gate_delay_ps: f64,
    /// Signal propagation delay per micrometer of interconnect, in ps/µm.
    pub wire_delay_ps_per_um: f64,
    /// Clock arrival skew per micrometer of horizontal offset along the
    /// clock propagation direction, in ps/µm.
    pub clock_skew_ps_per_um: f64,
    /// Exponent of the phase-dependent placement cost (the paper sets α = 2).
    pub alpha: f64,
}

impl TimingConfig {
    /// The configuration used throughout the paper's evaluation: 5 GHz clock
    /// and MIT-LL-like interconnect delays.
    pub fn paper_default() -> Self {
        Self {
            clock: FourPhaseClock::PAPER_DEFAULT,
            gate_delay_ps: 8.0,
            wire_delay_ps_per_um: 0.03,
            clock_skew_ps_per_um: 0.004,
            alpha: 2.0,
        }
    }

    /// Phase budget in picoseconds (a quarter of the clock period).
    pub fn phase_budget_ps(&self) -> f64 {
        self.clock.phase_budget_ps()
    }

    /// Validates that every coefficient is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns a description of the first non-positive coefficient (or a
    /// non-positive clock frequency — deserialized configurations bypass
    /// [`FourPhaseClock::new`]'s assertion, so the clock is re-checked here).
    pub fn validate(&self) -> Result<(), String> {
        if self.clock.frequency_ghz <= 0.0 || !self.clock.frequency_ghz.is_finite() {
            return Err("clock frequency must be positive and finite".into());
        }
        if self.gate_delay_ps < 0.0 {
            return Err("gate delay must be non-negative".into());
        }
        if self.wire_delay_ps_per_um <= 0.0 {
            return Err("wire delay must be positive".into());
        }
        if self.clock_skew_ps_per_um < 0.0 {
            return Err("clock skew must be non-negative".into());
        }
        if self.alpha <= 0.0 {
            return Err("alpha must be positive".into());
        }
        Ok(())
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_50ps() {
        let config = TimingConfig::default();
        assert!((config.phase_budget_ps() - 50.0).abs() < 1e-9);
        config.validate().expect("default config is valid");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let config = TimingConfig { wire_delay_ps_per_um: 0.0, ..TimingConfig::default() };
        assert!(config.validate().is_err());

        let config = TimingConfig { alpha: -1.0, ..TimingConfig::default() };
        assert!(config.validate().is_err());

        let config = TimingConfig {
            clock: FourPhaseClock { frequency_ghz: 0.0 },
            ..TimingConfig::default()
        };
        assert!(config.validate().is_err(), "a zero-frequency clock is caught");
    }
}
