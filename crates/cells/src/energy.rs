//! First-order AQFP energy model.
//!
//! The headline motivation for AQFP is energy: adiabatic switching
//! dissipates a small fraction of the Josephson coupling energy `I_c·Φ₀`
//! per junction per cycle, orders of magnitude below CMOS. The paper's
//! introduction quotes a 10⁴–10⁵× efficiency gain; this module provides the
//! simple bit-energy model used throughout the AQFP literature so flow
//! reports can attach an energy estimate to a synthesized design.

use serde::{Deserialize, Serialize};

use crate::clocking::FourPhaseClock;

/// Magnetic flux quantum Φ₀ in weber.
pub const FLUX_QUANTUM_WB: f64 = 2.067_833_848e-15;

/// First-order switching-energy model for AQFP circuits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Junction critical current in microamperes (50 µA is typical for the
    /// AIST/MIT-LL AQFP cell libraries).
    pub critical_current_ua: f64,
    /// Fraction of the coupling energy `I_c·Φ₀` dissipated per switching
    /// event; adiabatic operation at a few GHz sits around 10⁻² – 10⁻⁴.
    pub dissipation_fraction: f64,
    /// Fraction of junctions that switch in an average cycle (activity
    /// factor).
    pub activity_factor: f64,
}

impl EnergyModel {
    /// Model parameters representative of 5 GHz AQFP operation.
    pub fn aqfp_5ghz() -> Self {
        Self { critical_current_ua: 50.0, dissipation_fraction: 0.01, activity_factor: 0.5 }
    }

    /// The Josephson coupling energy `I_c·Φ₀` of one junction, in
    /// attojoules.
    pub fn coupling_energy_aj(&self) -> f64 {
        self.critical_current_ua * 1e-6 * FLUX_QUANTUM_WB * 1e18
    }

    /// Energy dissipated by one junction in one switching event, in
    /// attojoules.
    pub fn switching_energy_aj(&self) -> f64 {
        self.coupling_energy_aj() * self.dissipation_fraction
    }

    /// Energy dissipated by a circuit with `jj_count` junctions over one
    /// clock cycle, in attojoules.
    pub fn cycle_energy_aj(&self, jj_count: usize) -> f64 {
        self.switching_energy_aj() * self.activity_factor * jj_count as f64
    }

    /// Average power of a circuit with `jj_count` junctions clocked by
    /// `clock`, in nanowatts.
    pub fn average_power_nw(&self, jj_count: usize, clock: FourPhaseClock) -> f64 {
        // aJ per cycle × cycles per second = aJ/s = 1e-18 W = 1e-9 nW.
        self.cycle_energy_aj(jj_count) * clock.frequency_ghz * 1e9 * 1e-9
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.critical_current_ua <= 0.0 {
            return Err("critical current must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.dissipation_fraction) {
            return Err("dissipation fraction must be in 0..=1".into());
        }
        if !(0.0..=1.0).contains(&self.activity_factor) {
            return Err("activity factor must be in 0..=1".into());
        }
        Ok(())
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::aqfp_5ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_energy_is_sub_attojoule_scale() {
        let model = EnergyModel::aqfp_5ghz();
        let coupling = model.coupling_energy_aj();
        // 50 µA × Φ0 ≈ 0.103 aJ.
        assert!((coupling - 0.1034).abs() < 0.01, "coupling energy {coupling} aJ");
        assert!(model.switching_energy_aj() < coupling);
    }

    #[test]
    fn cycle_energy_scales_with_jj_count() {
        let model = EnergyModel::aqfp_5ghz();
        let small = model.cycle_energy_aj(1_000);
        let large = model.cycle_energy_aj(10_000);
        assert!((large / small - 10.0).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_frequency() {
        let model = EnergyModel::aqfp_5ghz();
        let slow = model.average_power_nw(5_000, FourPhaseClock::new(1.0));
        let fast = model.average_power_nw(5_000, FourPhaseClock::new(5.0));
        assert!((fast / slow - 5.0).abs() < 1e-9);
        // A few thousand JJs at 5 GHz should land in the nanowatt range,
        // which is the headline AQFP claim.
        assert!(fast > 0.1 && fast < 100.0, "power {fast} nW out of the expected range");
    }

    #[test]
    fn invalid_models_are_rejected() {
        let mut model = EnergyModel::aqfp_5ghz();
        model.dissipation_fraction = 2.0;
        assert!(model.validate().is_err());
        model = EnergyModel::aqfp_5ghz();
        model.critical_current_ua = 0.0;
        assert!(model.validate().is_err());
        assert!(EnergyModel::default().validate().is_ok());
    }
}
