//! Cooperative cancellation for long-running engine loops.
//!
//! A [`CancelToken`] is a cheap, cloneable handle the flow driver threads
//! into the hot loops of the global/detailed placers, the channel router and
//! the DRC checker. The engines poll [`CancelToken::is_cancelled`] at their
//! loop boundaries (once per gradient iteration, per sweep pass, per channel
//! expansion round, …) and bail out early when it fires, so a per-stage
//! wall-clock deadline actually aborts work instead of waiting for the stage
//! to finish on its own.
//!
//! Cancellation is *cooperative and advisory*: an engine that observes a
//! fired token returns whatever partial result it has, and the caller (the
//! flow session) is responsible for discarding that partial result and
//! reporting the cancellation. The engines themselves stay infallible.
//!
//! The default token ([`CancelToken::none`]) carries no state and its
//! `is_cancelled` is a constant `false`, so un-instrumented callers pay a
//! single branch per poll.
//!
//! ```
//! use aqfp_cells::cancel::{CancelReason, CancelToken};
//! use std::time::Duration;
//!
//! let token = CancelToken::new();
//! assert!(!token.is_cancelled());
//! token.cancel();
//! assert_eq!(token.reason(), Some(CancelReason::Cancelled));
//!
//! // A zero deadline is already expired when first polled.
//! let deadline = CancelToken::with_deadline(Duration::ZERO);
//! assert!(deadline.is_cancelled());
//! assert_eq!(deadline.reason(), Some(CancelReason::DeadlineExceeded));
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called explicitly.
    Cancelled,
    /// The token's wall-clock deadline passed.
    DeadlineExceeded,
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct CancelInner {
    /// `LIVE`, `CANCELLED` or `DEADLINE`; latches once set so every
    /// observer sees the same reason.
    state: AtomicU8,
    /// Wall-clock deadline, checked lazily on each poll.
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle; see the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A token that never fires; polling it is a single branch.
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// A live token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(CancelInner { state: AtomicU8::new(LIVE), deadline: None })) }
    }

    /// A token that fires once `budget` of wall-clock time has elapsed (and
    /// can still be fired earlier via [`CancelToken::cancel`]).
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Some(Arc::new(CancelInner {
                state: AtomicU8::new(LIVE),
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// Fires the token explicitly. A token whose deadline already fired
    /// keeps its deadline reason.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            let _ =
                inner.state.compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// Whether the token has fired (explicitly or by deadline). The result
    /// latches: once `true`, it stays `true`.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        let Some(inner) = &self.inner else { return false };
        if inner.state.load(Ordering::Relaxed) != LIVE {
            return true;
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                let _ = inner.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return true;
            }
        }
        false
    }

    /// Why the token fired, or `None` while it is still live.
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        match self.inner.as_ref()?.state.load(Ordering::Relaxed) {
            CANCELLED => Some(CancelReason::Cancelled),
            DEADLINE => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_token_never_fires() {
        let token = CancelToken::none();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn explicit_cancel_latches_and_is_shared_by_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason(), Some(CancelReason::Cancelled));
        // Latching: stays cancelled.
        assert!(token.is_cancelled());
    }

    #[test]
    fn a_zero_deadline_is_expired_immediately() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(CancelReason::DeadlineExceeded));
        // Cancelling afterwards does not overwrite the deadline reason.
        token.cancel();
        assert_eq!(token.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn a_generous_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
        // …but an explicit cancel still works on a deadline token.
        token.cancel();
        assert_eq!(token.reason(), Some(CancelReason::Cancelled));
    }
}
