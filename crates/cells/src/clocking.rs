//! Four-phase AQFP clocking model.
//!
//! AQFP circuits are powered and clocked by two AC signals (90° apart) plus a
//! DC offset, yielding four clock phases per excitation period. Every logic
//! level (placement row) of the circuit occupies exactly one phase, and data
//! advances one phase per level — the "gate-level pipelining" the paper
//! describes in §II-B.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four AQFP clock phases.
///
/// ```
/// use aqfp_cells::ClockPhase;
/// assert_eq!(ClockPhase::of_level(0), ClockPhase::Phase1);
/// assert_eq!(ClockPhase::of_level(5), ClockPhase::Phase2);
/// assert_eq!(ClockPhase::Phase4.next(), ClockPhase::Phase1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClockPhase {
    /// AC1 + DC.
    Phase1,
    /// AC2 − DC.
    Phase2,
    /// −(AC1 − DC).
    Phase3,
    /// −(AC2 + DC).
    Phase4,
}

impl ClockPhase {
    /// All four phases in excitation order.
    pub const ALL: [ClockPhase; 4] =
        [ClockPhase::Phase1, ClockPhase::Phase2, ClockPhase::Phase3, ClockPhase::Phase4];

    /// The phase assigned to logic level `level` (level 0 is the first row of
    /// gates after the primary inputs).
    pub fn of_level(level: usize) -> ClockPhase {
        Self::ALL[level % 4]
    }

    /// Zero-based index of the phase within the excitation period.
    pub fn index(self) -> usize {
        match self {
            ClockPhase::Phase1 => 0,
            ClockPhase::Phase2 => 1,
            ClockPhase::Phase3 => 2,
            ClockPhase::Phase4 => 3,
        }
    }

    /// The phase that follows this one.
    pub fn next(self) -> ClockPhase {
        Self::ALL[(self.index() + 1) % 4]
    }
}

impl fmt::Display for ClockPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase {}", self.index() + 1)
    }
}

/// The four-phase clock configuration of a design: target frequency and the
/// per-phase timing budget derived from it.
///
/// The paper evaluates all designs at a 5 GHz target clock, which gives each
/// phase a quarter of the 200 ps excitation period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FourPhaseClock {
    /// Target clock frequency in GHz.
    pub frequency_ghz: f64,
}

impl FourPhaseClock {
    /// The paper's evaluation clock: 5 GHz.
    pub const PAPER_DEFAULT: FourPhaseClock = FourPhaseClock { frequency_ghz: 5.0 };

    /// Creates a clock from a target frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_ghz` is not strictly positive.
    pub fn new(frequency_ghz: f64) -> Self {
        assert!(frequency_ghz > 0.0, "clock frequency must be positive");
        Self { frequency_ghz }
    }

    /// Full excitation period in picoseconds.
    pub fn period_ps(&self) -> f64 {
        1000.0 / self.frequency_ghz
    }

    /// Time budget of a single phase (a quarter of the period) in
    /// picoseconds. Signals must traverse one logic level plus its
    /// interconnect within this window.
    pub fn phase_budget_ps(&self) -> f64 {
        self.period_ps() / 4.0
    }
}

impl Default for FourPhaseClock {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_of_level_cycles() {
        assert_eq!(ClockPhase::of_level(0), ClockPhase::Phase1);
        assert_eq!(ClockPhase::of_level(1), ClockPhase::Phase2);
        assert_eq!(ClockPhase::of_level(2), ClockPhase::Phase3);
        assert_eq!(ClockPhase::of_level(3), ClockPhase::Phase4);
        assert_eq!(ClockPhase::of_level(4), ClockPhase::Phase1);
        assert_eq!(ClockPhase::of_level(402), ClockPhase::Phase3);
    }

    #[test]
    fn next_visits_all_phases() {
        let mut phase = ClockPhase::Phase1;
        let mut seen = vec![phase];
        for _ in 0..3 {
            phase = phase.next();
            seen.push(phase);
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 4);
        assert_eq!(ClockPhase::Phase4.next(), ClockPhase::Phase1);
    }

    #[test]
    fn five_ghz_clock_budget() {
        let clk = FourPhaseClock::PAPER_DEFAULT;
        assert!((clk.period_ps() - 200.0).abs() < 1e-9);
        assert!((clk.phase_budget_ps() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "clock frequency must be positive")]
    fn zero_frequency_rejected() {
        FourPhaseClock::new(0.0);
    }
}
