//! GDS layer/datatype assignments of a fabrication process.

use serde::{Deserialize, Serialize};

/// The GDS layer numbers a technology's layouts are drawn on.
///
/// These used to be hard-coded constants inside the layout crate; they are
/// process facts (each foundry documents its own GDS layer table), so they
/// live in the loadable [`Technology`](crate::Technology) description
/// instead. The defaults match the abstract-layout convention the flow has
/// always used.
///
/// ```
/// use aqfp_cells::LayerMap;
/// let layers = LayerMap::default();
/// assert_eq!(layers.outline, 1);
/// assert_eq!(layers.metal2, 11);
/// layers.validate().expect("defaults are valid");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMap {
    /// Cell outline (placement boundary).
    pub outline: i16,
    /// Josephson-junction markers.
    pub jj: i16,
    /// Pin shapes.
    pub pin: i16,
    /// First wiring metal (horizontal segments).
    pub metal1: i16,
    /// Second wiring metal (vertical segments).
    pub metal2: i16,
    /// Text labels.
    pub label: i16,
}

impl LayerMap {
    /// All layer numbers, in declaration order, with their names.
    pub fn entries(&self) -> [(&'static str, i16); 6] {
        [
            ("outline", self.outline),
            ("jj", self.jj),
            ("pin", self.pin),
            ("metal1", self.metal1),
            ("metal2", self.metal2),
            ("label", self.label),
        ]
    }

    /// Validates the assignment: every layer must be a legal GDS layer
    /// number (0–255) and no two purposes may share a layer.
    ///
    /// # Errors
    ///
    /// Returns a description naming the offending layer(s).
    pub fn validate(&self) -> Result<(), String> {
        let entries = self.entries();
        for (name, layer) in entries {
            if !(0..=255).contains(&layer) {
                return Err(format!("layer `{name}` is {layer}, outside the GDS range 0..=255"));
            }
        }
        for (i, (name_a, layer_a)) in entries.iter().enumerate() {
            for (name_b, layer_b) in &entries[i + 1..] {
                if layer_a == layer_b {
                    return Err(format!(
                        "layers `{name_a}` and `{name_b}` both map to GDS layer {layer_a}; \
                         every purpose needs its own layer"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for LayerMap {
    fn default() -> Self {
        Self { outline: 1, jj: 2, pin: 3, metal1: 10, metal2: 11, label: 63 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_map_is_valid_and_matches_the_historical_constants() {
        let layers = LayerMap::default();
        layers.validate().expect("valid");
        assert_eq!(
            (layers.outline, layers.jj, layers.pin, layers.metal1, layers.metal2, layers.label),
            (1, 2, 3, 10, 11, 63)
        );
    }

    #[test]
    fn shared_and_out_of_range_layers_are_rejected() {
        let mut layers = LayerMap::default();
        layers.metal2 = layers.metal1;
        let err = layers.validate().expect_err("shared layer");
        assert!(err.contains("metal1") && err.contains("metal2"), "{err}");

        let layers = LayerMap { label: 256, ..LayerMap::default() };
        assert!(layers.validate().is_err());
        let layers = LayerMap { label: -1, ..LayerMap::default() };
        assert!(layers.validate().is_err());
    }
}
