//! The loadable technology (PDK) description and the built-in registry.
//!
//! Everything process-specific the flow consumes — design rules, the cell
//! geometry table, the four-phase clock, the delay coefficients and the GDS
//! layer assignments — lives in one [`Technology`] value that can be dumped
//! to a TOML file, edited and loaded back. The [`TechnologyRegistry`] ships
//! the two processes of the paper as built-in *data*; a custom process is
//! just another file.
//!
//! # Technology file format
//!
//! A technology file is TOML (see [`crate::toml`] for the supported subset;
//! JSON with the same structure also loads via [`Technology::from_json`]).
//! Field by field:
//!
//! * `name` — registry identifier, e.g. `"mit-ll-sqf5ee"`. Letters, digits,
//!   `-`, `_` and `.` only.
//! * `description` — free-form human-readable summary.
//! * `[rules]` — the design rules of §II-C ([`ProcessRules`]); all lengths
//!   in µm:
//!   `name` (display name), `min_spacing`, `zigzag_spacing`,
//!   `max_wirelength` (W_max), `grid` (placement grid pitch),
//!   `routing_layers` (metal layers between adjacent clock phases),
//!   `wire_width`, `via_size`, `min_metal_density` / `max_metal_density`
//!   (fractions 0..1) and `row_pitch`.
//! * `[timing]` — the delay model ([`TimingConfig`]): `gate_delay_ps`,
//!   `wire_delay_ps_per_um`, `clock_skew_ps_per_um`, `alpha` (phase-cost
//!   exponent) and `[timing.clock]` with `frequency_ghz` (the four-phase
//!   excitation frequency).
//! * `[layers]` — GDS layer numbers ([`LayerMap`]): `outline`, `jj`, `pin`,
//!   `metal1`, `metal2`, `label`; 0–255, pairwise distinct.
//! * `[cells.<Kind>]` — one table per [`CellKind`] (all fifteen kinds must
//!   be present): `kind` (must repeat `<Kind>`), `width`/`height` (µm,
//!   multiples of `rules.grid`), `jj_count`, and one
//!   `[[cells.<Kind>.input_pins]]` / `[[cells.<Kind>.output_pins]]` table
//!   per pin with `name`, `direction` (`"Input"`/`"Output"`) and
//!   `[cells.<Kind>.….offset]` (`x`/`y` in µm, on the grid, inside the cell
//!   outline).
//!
//! A minimal file that only retargets the maximum wirelength starts from a
//! dump of a built-in (`superflow tech dump mit-ll-sqf5ee`) and edits one
//! line:
//!
//! ```toml
//! name = "mit-ll-tight"
//! description = "MIT-LL SQF5ee with a tighter W_max"
//!
//! [rules]
//! name = "MIT-LL SQF5ee"
//! min_spacing = 10.0
//! zigzag_spacing = 10.0
//! max_wirelength = 250.0   # was 400.0
//! grid = 10.0
//! routing_layers = 2
//! wire_width = 2.0
//! via_size = 4.0
//! min_metal_density = 0.05
//! max_metal_density = 0.85
//! row_pitch = 100.0
//! # … [timing], [layers] and the fifteen [cells.*] tables follow,
//! # unchanged from the dump.
//! ```
//!
//! Loading is strict: [`Technology::from_toml`] rejects unknown keys
//! (catching typos in hand-edited files) and runs the full
//! [`Technology::validate`] cross-checks before the value reaches any flow
//! stage.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize, Value};

use crate::cell::{AqfpCell, CellKind, PinDirection, PinGeometry};
use crate::clocking::FourPhaseClock;
use crate::geometry::Point;
use crate::layers::LayerMap;
use crate::process::ProcessRules;
use crate::timing::TimingConfig;
use crate::toml;

/// Registry name of the built-in MIT Lincoln Laboratory SQF5ee technology.
pub const MIT_LL_SQF5EE: &str = "mit-ll-sqf5ee";

/// Registry name of the built-in AIST standard process 2 technology.
pub const AIST_STP2: &str = "aist-stp2";

/// A complete, loadable description of one fabrication process.
///
/// Bundles every process fact the RTL-to-GDS flow consumes: the design
/// rules, the standard-cell geometry table, the clock and delay
/// coefficients, and the GDS layer assignments. All stage engines take an
/// `Arc<Technology>`; swapping the technology retargets the whole flow.
///
/// ```
/// use aqfp_cells::{CellKind, Technology};
/// let tech = Technology::mit_ll_sqf5ee();
/// assert_eq!(tech.cell(CellKind::Buffer).width, 40.0);
/// assert_eq!(tech.rules().max_wirelength, 400.0);
/// let dumped = tech.to_toml().unwrap();
/// assert_eq!(Technology::from_toml(&dumped).unwrap(), tech);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Registry identifier (letters, digits, `-`, `_`, `.`).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Design rules (§II-C of the paper).
    pub rules: ProcessRules,
    /// Delay coefficients, including the target four-phase clock.
    pub timing: TimingConfig,
    /// GDS layer assignments.
    pub layers: LayerMap,
    /// Cell geometry table; must contain every [`CellKind`].
    pub cells: BTreeMap<CellKind, AqfpCell>,
}

impl Technology {
    /// The built-in MIT Lincoln Laboratory SQF5ee technology — the process
    /// the paper evaluates, with the dimensions it quotes (40 × 30 µm
    /// buffers, 60 × 70 µm majority gates on a 10 µm grid).
    pub fn mit_ll_sqf5ee() -> Self {
        Self {
            name: MIT_LL_SQF5EE.to_owned(),
            description: "MIT Lincoln Laboratory SQF5ee AQFP process (paper defaults)".to_owned(),
            rules: ProcessRules::mit_ll(),
            timing: TimingConfig::paper_default(),
            layers: LayerMap::default(),
            cells: standard_cell_table(),
        }
    }

    /// The built-in AIST standard process 2 (STP2) technology.
    pub fn aist_stp2() -> Self {
        Self {
            name: AIST_STP2.to_owned(),
            description: "AIST standard process 2 (STP2) AQFP process".to_owned(),
            rules: ProcessRules::stp2(),
            timing: TimingConfig::paper_default(),
            layers: LayerMap::default(),
            cells: standard_cell_table(),
        }
    }

    /// The process design rules.
    pub fn rules(&self) -> &ProcessRules {
        &self.rules
    }

    /// The target four-phase clock (stored inside [`Technology::timing`]).
    pub fn clock(&self) -> FourPhaseClock {
        self.timing.clock
    }

    /// The GDS layer assignments.
    pub fn layers(&self) -> &LayerMap {
        &self.layers
    }

    /// Looks up the cell definition for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the technology has no cell for `kind`; a technology that
    /// passed [`Technology::validate`] contains every kind.
    pub fn cell(&self, kind: CellKind) -> &AqfpCell {
        self.cells
            .get(&kind)
            .unwrap_or_else(|| panic!("technology `{}` has no {kind} cell", self.name))
    }

    /// Iterates over all cells in [`CellKind`] order.
    pub fn iter(&self) -> impl Iterator<Item = &AqfpCell> {
        self.cells.values()
    }

    /// Total JJ count of a multiset of cell kinds, e.g. an entire netlist.
    pub fn total_jj<I: IntoIterator<Item = CellKind>>(&self, kinds: I) -> usize {
        kinds.into_iter().map(|k| self.cell(k).jj_count).sum()
    }

    /// Validates the complete description: the composed
    /// [`ProcessRules::validate`] / [`TimingConfig::validate`] /
    /// [`LayerMap::validate`] checks plus the cross-checks only the bundle
    /// can make — every cell kind present, dimensions grid-multiples, pins
    /// on the grid and inside the cell outline.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("technology name must not be empty".into());
        }
        if !self.name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')) {
            return Err(format!(
                "technology name `{}` may only contain letters, digits, `-`, `_` and `.`",
                self.name
            ));
        }
        self.rules.validate().map_err(|e| format!("rules: {e}"))?;
        self.timing.validate().map_err(|e| format!("timing: {e}"))?;
        self.layers.validate().map_err(|e| format!("layers: {e}"))?;

        let grid = self.rules.grid;
        for kind in CellKind::ALL {
            let key = kind_key(kind);
            let cell = self
                .cells
                .get(&kind)
                .ok_or_else(|| format!("cells: no definition for cell kind `{key}`"))?;
            if cell.kind != kind {
                return Err(format!(
                    "cells.{key}: describes a `{}` cell; the key and the cell's `kind` field \
                     must agree",
                    kind_key(cell.kind)
                ));
            }
            if cell.width <= 0.0 || cell.height <= 0.0 {
                return Err(format!("cells.{key}: width and height must be positive"));
            }
            if !is_grid_multiple(cell.width, grid) || !is_grid_multiple(cell.height, grid) {
                return Err(format!(
                    "cells.{key}: dimensions {} × {} µm are not multiples of the {grid} µm grid",
                    cell.width, cell.height
                ));
            }
            if cell.input_pins.len() != kind.input_count()
                || cell.output_pins.len() != kind.output_count()
            {
                return Err(format!(
                    "cells.{key}: has {} input / {} output pins, but a {key} needs {} / {}",
                    cell.input_pins.len(),
                    cell.output_pins.len(),
                    kind.input_count(),
                    kind.output_count()
                ));
            }
            for (pin, direction) in cell
                .input_pins
                .iter()
                .map(|p| (p, PinDirection::Input))
                .chain(cell.output_pins.iter().map(|p| (p, PinDirection::Output)))
            {
                if pin.direction != direction {
                    return Err(format!(
                        "cells.{key}: pin `{}` sits in the {direction:?} list but is marked \
                         {:?}",
                        pin.name, pin.direction
                    ));
                }
                if !is_grid_multiple(pin.offset.x, grid) || !is_grid_multiple(pin.offset.y, grid) {
                    return Err(format!(
                        "cells.{key}: pin `{}` at ({}, {}) is off the {grid} µm grid",
                        pin.name, pin.offset.x, pin.offset.y
                    ));
                }
                if pin.offset.x < 0.0
                    || pin.offset.x > cell.width
                    || pin.offset.y < 0.0
                    || pin.offset.y > cell.height
                {
                    return Err(format!(
                        "cells.{key}: pin `{}` at ({}, {}) lies outside the {} × {} µm cell",
                        pin.name, pin.offset.x, pin.offset.y, cell.width, cell.height
                    ));
                }
            }
        }
        Ok(())
    }

    /// A short, stable fingerprint of the complete technology data (FNV-1a
    /// over the canonical JSON form), embedded in flow checkpoints so a
    /// resume against a different technology fails loudly.
    pub fn fingerprint(&self) -> String {
        let json = serde_json::to_string(self).expect("technology always serializes");
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in json.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{}:{hash:016x}", self.name)
    }

    /// Serializes the technology to a TOML document (the `superflow tech
    /// dump` format).
    ///
    /// # Errors
    ///
    /// Returns an error if a float field is not finite.
    pub fn to_toml(&self) -> Result<String, String> {
        toml::write_toml(&self.to_value()).map_err(|e| e.to_string())
    }

    /// Loads a technology from a TOML document, rejecting unknown keys and
    /// running the full [`Technology::validate`] cross-checks.
    ///
    /// # Errors
    ///
    /// Returns a parse error (with the offending line), an unknown-key
    /// error, or the first validation failure.
    pub fn from_toml(text: &str) -> Result<Self, String> {
        let value = toml::parse_toml(text).map_err(|e| e.to_string())?;
        Self::from_checked_value(&value)
    }

    /// Serializes the technology to pretty-printed JSON (same structure as
    /// the TOML form).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Loads a technology from its JSON form, with the same strict
    /// unknown-key and validation checks as [`Technology::from_toml`].
    ///
    /// # Errors
    ///
    /// Returns a parse, unknown-key or validation error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value: Value = serde_json::from_str::<ValueCarrier>(text).map_err(|e| e.to_string())?.0;
        Self::from_checked_value(&value)
    }

    fn from_checked_value(value: &Value) -> Result<Self, String> {
        check_schema(value)?;
        let technology = Self::from_value(value).map_err(|e| e.to_string())?;
        technology.validate()?;
        Ok(technology)
    }
}

/// Deserialization shim that captures the raw [`Value`] tree (so the schema
/// check can inspect it before the typed conversion).
struct ValueCarrier(Value);

impl Deserialize for ValueCarrier {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(Self(value.clone()))
    }
}

/// The serialized (map-key / table-header) name of a cell kind, e.g.
/// `Majority3` — distinct from its `Display` short name `MAJ3`.
fn kind_key(kind: CellKind) -> String {
    match kind.to_value() {
        Value::Str(name) => name,
        other => unreachable!("unit variants serialize to strings, got {}", other.kind()),
    }
}

/// Whether `value` is a whole multiple of `grid` (within 1 nm of slack —
/// the GDS database unit).
fn is_grid_multiple(value: f64, grid: f64) -> bool {
    let remainder = value.rem_euclid(grid);
    remainder.min(grid - remainder) < 1e-3
}

/// Rejects keys the [`Technology`] schema does not define, so a typo in a
/// hand-edited file fails loudly instead of silently keeping the default.
///
/// The allowed key sets are derived from the serialized form of a built-in
/// technology (which by construction contains every field of every struct
/// in the schema, including all fifteen cell kinds), so they can never
/// drift from the actual serde field sets.
fn check_schema(value: &Value) -> Result<(), String> {
    let reference = Technology::mit_ll_sqf5ee().to_value();
    check_against(value, &reference, String::new())
}

fn check_against(value: &Value, reference: &Value, at: String) -> Result<(), String> {
    match (value, reference) {
        (Value::Map(entries), Value::Map(ref_entries)) => {
            for (key, sub) in entries {
                let Some((_, ref_sub)) = ref_entries.iter().find(|(ref_key, _)| ref_key == key)
                else {
                    return Err(format!(
                        "unknown key `{at}{key}` (expected one of: {})",
                        ref_entries.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>().join(", ")
                    ));
                };
                check_against(sub, ref_sub, format!("{at}{key}."))?;
            }
            Ok(())
        }
        (Value::Seq(items), Value::Seq(ref_items)) => {
            // All elements of a schema sequence share one shape; any
            // reference element serves as the prototype. (An empty
            // reference sequence — e.g. `Input`'s pin lists — leaves the
            // items to the arity checks in `Technology::validate`.)
            let Some(prototype) = ref_items.first() else { return Ok(()) };
            let base = at.trim_end_matches('.').to_owned();
            for (index, item) in items.iter().enumerate() {
                check_against(item, prototype, format!("{base}[{index}]."))?;
            }
            Ok(())
        }
        // Scalar, or a kind mismatch the typed conversion will report.
        _ => Ok(()),
    }
}

/// The standard AQFP cell geometry table shared by the built-in
/// technologies: buffers and other single-input cells are 40 × 30 µm, two-
/// and three-input majority-based cells are 60 × 70 µm, splitters scale
/// with their arity, and every dimension and pin sits on the 10 µm grid. JJ
/// counts follow the minimalist-design AQFP library.
pub fn standard_cell_table() -> BTreeMap<CellKind, AqfpCell> {
    CellKind::ALL.into_iter().map(|kind| (kind, standard_cell(kind))).collect()
}

fn standard_cell(kind: CellKind) -> AqfpCell {
    let (width, height, jj_count) = match kind {
        CellKind::Buffer | CellKind::Inverter => (40.0, 30.0, 2),
        CellKind::Constant0 | CellKind::Constant1 => (40.0, 30.0, 2),
        CellKind::And | CellKind::Or | CellKind::Nand | CellKind::Nor => (60.0, 70.0, 6),
        CellKind::Xor => (60.0, 70.0, 8),
        CellKind::Majority3 => (60.0, 70.0, 6),
        CellKind::Splitter2 => (40.0, 30.0, 4),
        CellKind::Splitter3 => (60.0, 30.0, 6),
        CellKind::Splitter4 => (80.0, 30.0, 8),
        CellKind::Input | CellKind::Output => (10.0, 10.0, 0),
    };

    let n_in = kind.input_count();
    let n_out = kind.output_count();
    let input_pins = (0..n_in)
        .map(|i| {
            let name = ["a", "b", "c"][i].to_owned();
            let x = pin_x(width, n_in, i);
            PinGeometry::new(name, PinDirection::Input, Point::new(x, 0.0))
        })
        .collect();
    let output_pins = (0..n_out)
        .map(|i| {
            let name = if n_out == 1 { "xout".to_owned() } else { format!("xout{}", i + 1) };
            let x = pin_x(width, n_out, i);
            PinGeometry::new(name, PinDirection::Output, Point::new(x, height))
        })
        .collect();

    AqfpCell { kind, width, height, jj_count, input_pins, output_pins }
}

/// Evenly distributes `count` pins across the cell width, snapped to the
/// 10 µm grid.
fn pin_x(width: f64, count: usize, index: usize) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let step = width / (count as f64 + 1.0);
    ((step * (index as f64 + 1.0)) / 10.0).round() * 10.0
}

/// A set of named technologies.
///
/// The process-wide registry of *built-ins* is reachable through
/// [`TechnologyRegistry::global`]; it is immutable, and flows resolve
/// `TechSpec::Builtin` names against exactly it. Caller-owned registries
/// (from [`TechnologyRegistry::with_builtins`] or `default()`) can
/// additionally [`register`](TechnologyRegistry::register) custom entries
/// for their own lookups — to drive the *flow* with a custom technology,
/// use `TechSpec::File`/`TechSpec::Inline` instead.
///
/// ```
/// use aqfp_cells::technology::{TechnologyRegistry, MIT_LL_SQF5EE};
/// let registry = TechnologyRegistry::global();
/// let tech = registry.get(MIT_LL_SQF5EE).expect("built-in");
/// assert_eq!(tech.rules().max_wirelength, 400.0);
/// ```
#[derive(Debug, Clone)]
pub struct TechnologyRegistry {
    entries: Vec<Arc<Technology>>,
}

impl TechnologyRegistry {
    /// A registry containing the built-in technologies
    /// ([`MIT_LL_SQF5EE`] and [`AIST_STP2`]).
    pub fn with_builtins() -> Self {
        Self {
            entries: vec![Arc::new(Technology::mit_ll_sqf5ee()), Arc::new(Technology::aist_stp2())],
        }
    }

    /// The shared process-wide registry of built-in technologies.
    pub fn global() -> &'static TechnologyRegistry {
        static GLOBAL: OnceLock<TechnologyRegistry> = OnceLock::new();
        GLOBAL.get_or_init(TechnologyRegistry::with_builtins)
    }

    /// Looks a technology up by registry name.
    pub fn get(&self, name: &str) -> Option<Arc<Technology>> {
        self.entries.iter().find(|t| t.name == name).cloned()
    }

    /// Registry names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|t| t.name.as_str())
    }

    /// All registered technologies, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Technology>> {
        self.entries.iter()
    }

    /// Number of registered technologies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty (a fresh built-in registry never is).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a technology to this caller-owned registry after validating
    /// it; names must be unique. The immutable [`TechnologyRegistry::global`]
    /// registry cannot be extended — custom technologies reach the flow
    /// through `TechSpec::File`/`TechSpec::Inline`.
    ///
    /// # Errors
    ///
    /// Returns the validation failure, or a duplicate-name error.
    pub fn register(&mut self, technology: Technology) -> Result<(), String> {
        technology.validate()?;
        if self.get(&technology.name).is_some() {
            return Err(format!("a technology named `{}` is already registered", technology.name));
        }
        self.entries.push(Arc::new(technology));
        Ok(())
    }
}

impl Default for TechnologyRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_valid_and_distinct() {
        for tech in [Technology::mit_ll_sqf5ee(), Technology::aist_stp2()] {
            tech.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", tech.name));
        }
        assert_ne!(
            Technology::mit_ll_sqf5ee().fingerprint(),
            Technology::aist_stp2().fingerprint()
        );
    }

    #[test]
    fn fingerprint_tracks_every_data_field() {
        let base = Technology::mit_ll_sqf5ee();
        let mut edited = base.clone();
        edited.rules.max_wirelength = 250.0;
        assert_ne!(base.fingerprint(), edited.fingerprint(), "rules feed the fingerprint");

        let mut edited = base.clone();
        edited.timing.gate_delay_ps += 1.0;
        assert_ne!(base.fingerprint(), edited.fingerprint(), "timing feeds the fingerprint");

        let mut edited = base.clone();
        edited.layers.metal1 = 20;
        assert_ne!(base.fingerprint(), edited.fingerprint(), "layers feed the fingerprint");

        assert_eq!(base.fingerprint(), Technology::mit_ll_sqf5ee().fingerprint(), "stable");
    }

    #[test]
    fn toml_round_trip_is_exact() {
        for tech in [Technology::mit_ll_sqf5ee(), Technology::aist_stp2()] {
            let dumped = tech.to_toml().expect("dumps");
            let loaded = Technology::from_toml(&dumped).expect("loads");
            assert_eq!(loaded, tech);
            assert_eq!(loaded.fingerprint(), tech.fingerprint());
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let tech = Technology::mit_ll_sqf5ee();
        let dumped = tech.to_json().expect("dumps");
        assert_eq!(Technology::from_json(&dumped).expect("loads"), tech);
    }

    #[test]
    fn edited_dump_loads_with_the_edit_applied() {
        let dumped = Technology::mit_ll_sqf5ee().to_toml().expect("dumps");
        let edited = dumped.replace("max_wirelength = 400.0", "max_wirelength = 250.0");
        assert_ne!(edited, dumped, "the dump spells W_max as expected");
        let loaded = Technology::from_toml(&edited).expect("edited dump loads");
        assert_eq!(loaded.rules.max_wirelength, 250.0);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let dumped = Technology::mit_ll_sqf5ee().to_toml().expect("dumps");
        let typo = dumped.replace("max_wirelength", "max_wirelenght");
        let err = Technology::from_toml(&typo).expect_err("typo rejected");
        assert!(err.contains("max_wirelenght"), "{err}");

        let extra = format!("{dumped}\n[bonus]\nx = 1\n");
        let err = Technology::from_toml(&extra).expect_err("extra table rejected");
        assert!(err.contains("bonus"), "{err}");
    }

    #[test]
    fn invalid_technologies_fail_validation() {
        let mut tech = Technology::mit_ll_sqf5ee();
        tech.name = "has space".to_owned();
        assert!(tech.validate().is_err());

        let mut tech = Technology::mit_ll_sqf5ee();
        tech.cells.remove(&CellKind::Buffer);
        let err = tech.validate().expect_err("missing cell kind");
        assert!(err.contains("Buffer"), "{err}");

        let mut tech = Technology::mit_ll_sqf5ee();
        tech.cells.get_mut(&CellKind::Buffer).unwrap().width = 45.0;
        let err = tech.validate().expect_err("off-grid width");
        assert!(err.contains("grid"), "{err}");

        let mut tech = Technology::mit_ll_sqf5ee();
        tech.cells.get_mut(&CellKind::Buffer).unwrap().input_pins[0].offset.x = 15.0;
        let err = tech.validate().expect_err("off-grid pin");
        assert!(err.contains("pin"), "{err}");

        let mut tech = Technology::mit_ll_sqf5ee();
        tech.layers.jj = tech.layers.outline;
        assert!(tech.validate().is_err(), "shared layers");

        let mut tech = Technology::mit_ll_sqf5ee();
        let buffer = tech.cells.remove(&CellKind::Buffer).unwrap();
        tech.cells.insert(CellKind::Buffer, AqfpCell { kind: CellKind::Inverter, ..buffer });
        let err = tech.validate().expect_err("key/kind mismatch");
        assert!(err.contains("kind"), "{err}");
    }

    #[test]
    fn loading_an_invalid_file_fails_loudly() {
        let dumped = Technology::mit_ll_sqf5ee().to_toml().expect("dumps");
        let broken = dumped.replace("min_spacing = 10.0", "min_spacing = -1.0");
        let err = Technology::from_toml(&broken).expect_err("invalid rules rejected");
        assert!(err.contains("min_spacing"), "{err}");
    }

    #[test]
    fn registry_ships_the_builtins() {
        let registry = TechnologyRegistry::global();
        assert_eq!(registry.names().collect::<Vec<_>>(), vec![MIT_LL_SQF5EE, AIST_STP2]);
        assert!(!registry.is_empty());
        assert_eq!(registry.len(), 2);
        let mit = registry.get(MIT_LL_SQF5EE).expect("mit-ll present");
        assert_eq!(*mit, Technology::mit_ll_sqf5ee());
        assert!(registry.get("no-such-tech").is_none());
    }

    #[test]
    fn registry_accepts_valid_unique_custom_entries() {
        let mut registry = TechnologyRegistry::with_builtins();
        let mut custom = Technology::mit_ll_sqf5ee();
        custom.name = "custom".to_owned();
        registry.register(custom.clone()).expect("registers");
        assert_eq!(registry.get("custom").unwrap().name, "custom");
        // Duplicate names and invalid data are rejected.
        assert!(registry.register(custom).is_err());
        let mut invalid = Technology::mit_ll_sqf5ee();
        invalid.name = "bad".to_owned();
        invalid.rules.grid = 0.0;
        assert!(registry.register(invalid).is_err());
    }

    #[test]
    fn grid_multiple_tolerance_is_tight() {
        assert!(is_grid_multiple(40.0, 10.0));
        assert!(is_grid_multiple(0.0, 10.0));
        assert!(!is_grid_multiple(45.0, 10.0));
        assert!(is_grid_multiple(30.000000001, 10.0), "1 nm slack absorbs float noise");
    }
}
