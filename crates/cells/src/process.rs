//! Fabrication process design rules relevant to AQFP physical design.

use serde::{Deserialize, Serialize};

/// Design rules for an AQFP fabrication process.
///
/// These are the constraints §II-C of the paper enumerates: cell/zigzag
/// spacing, the maximum single-wire length `W_max`, the number of routing
/// layers available between adjacent clock phases, and basic metal rules used
/// by the DRC stage.
///
/// ```
/// use aqfp_cells::ProcessRules;
/// let rules = ProcessRules::mit_ll();
/// assert_eq!(rules.min_spacing, 10.0);
/// assert!(rules.max_wirelength > rules.min_spacing);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessRules {
    /// Human-readable process name.
    pub name: String,
    /// Minimum spacing between non-abutting neighbouring cells and between
    /// wire zigzags, in µm (10 µm for the MIT-LL process).
    pub min_spacing: f64,
    /// Maximum allowed length of a single wire connection, in µm. Longer
    /// connections require an inserted buffer row.
    pub max_wirelength: f64,
    /// Placement/routing grid pitch in µm; the updated AQFP library snaps all
    /// dimensions to this grid.
    pub grid: f64,
    /// Number of metal layers available for signal routing between two
    /// adjacent clock phases (two for AQFP).
    pub routing_layers: usize,
    /// Minimum metal wire width in µm.
    pub wire_width: f64,
    /// Via size (square side) in µm.
    pub via_size: f64,
    /// Minimum metal density required per layer by the DRC (fraction 0..1).
    pub min_metal_density: f64,
    /// Maximum metal density allowed per layer by the DRC (fraction 0..1).
    pub max_metal_density: f64,
    /// Vertical pitch between adjacent clock-phase rows before any space
    /// expansion, in µm.
    pub row_pitch: f64,
}

impl ProcessRules {
    /// Design rules for the MIT Lincoln Laboratory SQF5ee process.
    pub fn mit_ll() -> Self {
        Self {
            name: "MIT-LL SQF5ee".to_owned(),
            min_spacing: 10.0,
            max_wirelength: 400.0,
            grid: 10.0,
            routing_layers: 2,
            wire_width: 2.0,
            via_size: 4.0,
            min_metal_density: 0.05,
            max_metal_density: 0.85,
            row_pitch: 100.0,
        }
    }

    /// Design rules for the AIST standard process 2 (STP2).
    pub fn stp2() -> Self {
        Self {
            name: "AIST STP2".to_owned(),
            min_spacing: 10.0,
            max_wirelength: 500.0,
            grid: 10.0,
            routing_layers: 2,
            wire_width: 2.5,
            via_size: 5.0,
            min_metal_density: 0.05,
            max_metal_density: 0.85,
            row_pitch: 100.0,
        }
    }

    /// Validates internal consistency of the rules.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (non-positive
    /// spacing, `W_max` smaller than the spacing, empty density window, ...).
    pub fn validate(&self) -> Result<(), String> {
        if self.min_spacing <= 0.0 {
            return Err("min_spacing must be positive".into());
        }
        if self.grid <= 0.0 {
            return Err("grid must be positive".into());
        }
        if self.max_wirelength < self.min_spacing {
            return Err("max_wirelength must be at least min_spacing".into());
        }
        if self.routing_layers == 0 {
            return Err("at least one routing layer is required".into());
        }
        if self.wire_width <= 0.0 || self.via_size <= 0.0 {
            return Err("wire width and via size must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.min_metal_density)
            || !(0.0..=1.0).contains(&self.max_metal_density)
            || self.min_metal_density > self.max_metal_density
        {
            return Err("metal density window must satisfy 0 <= min <= max <= 1".into());
        }
        if self.row_pitch <= 0.0 {
            return Err("row pitch must be positive".into());
        }
        Ok(())
    }
}

impl Default for ProcessRules {
    fn default() -> Self {
        Self::mit_ll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_rules_are_valid() {
        ProcessRules::mit_ll().validate().expect("MIT-LL rules valid");
        ProcessRules::stp2().validate().expect("STP2 rules valid");
    }

    #[test]
    fn default_is_mit_ll() {
        assert_eq!(ProcessRules::default(), ProcessRules::mit_ll());
    }

    #[test]
    fn invalid_rules_are_rejected() {
        let mut rules = ProcessRules::mit_ll();
        rules.min_spacing = 0.0;
        assert!(rules.validate().is_err());

        let mut rules = ProcessRules::mit_ll();
        rules.max_wirelength = 1.0;
        assert!(rules.validate().is_err());

        let mut rules = ProcessRules::mit_ll();
        rules.min_metal_density = 0.9;
        rules.max_metal_density = 0.1;
        assert!(rules.validate().is_err());

        let mut rules = ProcessRules::mit_ll();
        rules.routing_layers = 0;
        assert!(rules.validate().is_err());
    }
}
