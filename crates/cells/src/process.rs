//! Fabrication process design rules relevant to AQFP physical design.

use serde::{Deserialize, Serialize};

/// Design rules for an AQFP fabrication process.
///
/// These are the constraints §II-C of the paper enumerates: cell/zigzag
/// spacing, the maximum single-wire length `W_max`, the number of routing
/// layers available between adjacent clock phases, and basic metal rules used
/// by the DRC stage.
///
/// ```
/// use aqfp_cells::ProcessRules;
/// let rules = ProcessRules::mit_ll();
/// assert_eq!(rules.min_spacing, 10.0);
/// assert!(rules.max_wirelength > rules.min_spacing);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProcessRules {
    /// Human-readable process name.
    pub name: String,
    /// Minimum spacing between non-abutting neighbouring cells, in µm
    /// (10 µm for the MIT-LL process).
    pub min_spacing: f64,
    /// Minimum distance between two consecutive turns (vias) of one wire,
    /// in µm. Defaults to [`ProcessRules::min_spacing`] in the built-in
    /// rule sets, so layouts checked under the historical shared rule are
    /// unchanged; processes with a dedicated zigzag rule can set it
    /// independently.
    pub zigzag_spacing: f64,
    /// Maximum allowed length of a single wire connection, in µm. Longer
    /// connections require an inserted buffer row.
    pub max_wirelength: f64,
    /// Placement/routing grid pitch in µm; the updated AQFP library snaps all
    /// dimensions to this grid.
    pub grid: f64,
    /// Number of metal layers available for signal routing between two
    /// adjacent clock phases (two for AQFP).
    pub routing_layers: usize,
    /// Minimum metal wire width in µm.
    pub wire_width: f64,
    /// Via size (square side) in µm.
    pub via_size: f64,
    /// Minimum metal density required per layer by the DRC (fraction 0..1).
    pub min_metal_density: f64,
    /// Maximum metal density allowed per layer by the DRC (fraction 0..1).
    pub max_metal_density: f64,
    /// Vertical pitch between adjacent clock-phase rows before any space
    /// expansion, in µm.
    pub row_pitch: f64,
}

impl ProcessRules {
    /// Design rules for the MIT Lincoln Laboratory SQF5ee process.
    pub fn mit_ll() -> Self {
        Self {
            name: "MIT-LL SQF5ee".to_owned(),
            min_spacing: 10.0,
            zigzag_spacing: 10.0,
            max_wirelength: 400.0,
            grid: 10.0,
            routing_layers: 2,
            wire_width: 2.0,
            via_size: 4.0,
            min_metal_density: 0.05,
            max_metal_density: 0.85,
            row_pitch: 100.0,
        }
    }

    /// Design rules for the AIST standard process 2 (STP2).
    pub fn stp2() -> Self {
        Self {
            name: "AIST STP2".to_owned(),
            min_spacing: 10.0,
            zigzag_spacing: 10.0,
            max_wirelength: 500.0,
            grid: 10.0,
            routing_layers: 2,
            wire_width: 2.5,
            via_size: 5.0,
            min_metal_density: 0.05,
            max_metal_density: 0.85,
            row_pitch: 100.0,
        }
    }

    /// Validates internal consistency of the rules.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (non-positive
    /// spacing, `W_max` smaller than the spacing, empty density window, ...).
    pub fn validate(&self) -> Result<(), String> {
        if self.min_spacing <= 0.0 {
            return Err("min_spacing must be positive".into());
        }
        if self.zigzag_spacing <= 0.0 {
            return Err("zigzag_spacing must be positive".into());
        }
        if self.grid <= 0.0 {
            return Err("grid must be positive".into());
        }
        if self.max_wirelength < self.min_spacing {
            return Err("max_wirelength must be at least min_spacing".into());
        }
        if self.routing_layers == 0 {
            return Err("at least one routing layer is required".into());
        }
        if self.wire_width <= 0.0 || self.via_size <= 0.0 {
            return Err("wire width and via size must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.min_metal_density)
            || !(0.0..=1.0).contains(&self.max_metal_density)
            || self.min_metal_density > self.max_metal_density
        {
            return Err("metal density window must satisfy 0 <= min <= max <= 1".into());
        }
        if self.row_pitch <= 0.0 {
            return Err("row pitch must be positive".into());
        }
        Ok(())
    }
}

impl Default for ProcessRules {
    fn default() -> Self {
        Self::mit_ll()
    }
}

// Hand-written for two reasons. First, documents serialized before
// `zigzag_spacing` existed keep deserializing: the field falls back to
// `min_spacing`, the value the DRC historically applied to zigzag turns
// (the vendored serde derive has no `#[serde(default)]`). Second, the impl
// *validates*: rules coming out of a session checkpoint or a technology
// file are as untrusted as user input, so an inconsistent rule set fails at
// the deserialization boundary instead of deep inside a flow stage.
impl Deserialize for ProcessRules {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let min_spacing = f64::from_value(value.field("min_spacing")?)?;
        let zigzag_spacing = match value.field("zigzag_spacing") {
            Ok(field) => f64::from_value(field)?,
            Err(_) => min_spacing,
        };
        let rules = Self {
            name: String::from_value(value.field("name")?)?,
            min_spacing,
            zigzag_spacing,
            max_wirelength: f64::from_value(value.field("max_wirelength")?)?,
            grid: f64::from_value(value.field("grid")?)?,
            routing_layers: usize::from_value(value.field("routing_layers")?)?,
            wire_width: f64::from_value(value.field("wire_width")?)?,
            via_size: f64::from_value(value.field("via_size")?)?,
            min_metal_density: f64::from_value(value.field("min_metal_density")?)?,
            max_metal_density: f64::from_value(value.field("max_metal_density")?)?,
            row_pitch: f64::from_value(value.field("row_pitch")?)?,
        };
        rules.validate().map_err(|e| serde::Error::new(format!("invalid process rules: {e}")))?;
        Ok(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_rules_are_valid() {
        ProcessRules::mit_ll().validate().expect("MIT-LL rules valid");
        ProcessRules::stp2().validate().expect("STP2 rules valid");
    }

    #[test]
    fn default_is_mit_ll() {
        assert_eq!(ProcessRules::default(), ProcessRules::mit_ll());
    }

    #[test]
    fn zigzag_spacing_defaults_to_min_spacing() {
        for rules in [ProcessRules::mit_ll(), ProcessRules::stp2()] {
            assert_eq!(rules.zigzag_spacing, rules.min_spacing);
        }
    }

    /// Documents serialized before `zigzag_spacing` existed (old flow
    /// checkpoints, externally exchanged rule files) must keep parsing,
    /// with the zigzag rule falling back to the historically applied
    /// `min_spacing`.
    #[test]
    fn deserialization_defaults_missing_zigzag_spacing() {
        use serde::{Deserialize, Serialize, Value};
        let mut rules = ProcessRules::mit_ll();
        rules.min_spacing = 20.0;
        rules.zigzag_spacing = 5.0;
        let Value::Map(entries) = rules.to_value() else { panic!("rules serialize to a map") };
        let legacy =
            Value::Map(entries.into_iter().filter(|(key, _)| key != "zigzag_spacing").collect());
        let parsed = ProcessRules::from_value(&legacy).expect("legacy document parses");
        assert_eq!(parsed.zigzag_spacing, 20.0, "falls back to min_spacing");
        assert_eq!(parsed.min_spacing, 20.0);
        assert_eq!(parsed.max_wirelength, rules.max_wirelength);

        // A present field round-trips unchanged.
        let back = ProcessRules::from_value(&rules.to_value()).expect("round-trips");
        assert_eq!(back, rules);
    }

    /// Deserialization validates: an inconsistent rule set (here a negative
    /// spacing and an inverted density window) is rejected at the parsing
    /// boundary, and a valid one round-trips through JSON unchanged.
    #[test]
    fn deserialization_validates_and_round_trips() {
        use serde::{Deserialize, Serialize};
        let rules = ProcessRules::mit_ll();
        let json = serde_json::to_string(&rules).expect("serializes");
        let back: ProcessRules = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, rules);

        let mut broken = ProcessRules::mit_ll();
        broken.min_spacing = -4.0;
        let err = ProcessRules::from_value(&broken.to_value()).expect_err("invalid rejected");
        assert!(err.to_string().contains("min_spacing"), "{err}");

        let mut broken = ProcessRules::mit_ll();
        broken.min_metal_density = 0.9;
        broken.max_metal_density = 0.1;
        let json = serde_json::to_string(&broken).expect("serializes");
        let err = serde_json::from_str::<ProcessRules>(&json).expect_err("invalid rejected");
        assert!(err.to_string().contains("density"), "{err}");
    }

    #[test]
    fn invalid_rules_are_rejected() {
        let mut rules = ProcessRules::mit_ll();
        rules.min_spacing = 0.0;
        assert!(rules.validate().is_err());

        let mut rules = ProcessRules::mit_ll();
        rules.zigzag_spacing = 0.0;
        assert!(rules.validate().is_err());

        let mut rules = ProcessRules::mit_ll();
        rules.max_wirelength = 1.0;
        assert!(rules.validate().is_err());

        let mut rules = ProcessRules::mit_ll();
        rules.min_metal_density = 0.9;
        rules.max_metal_density = 0.1;
        assert!(rules.validate().is_err());

        let mut rules = ProcessRules::mit_ll();
        rules.routing_layers = 0;
        assert!(rules.validate().is_err());
    }
}
