//! AQFP technology descriptions: standard cells, process design rules,
//! clocking, timing coefficients and GDS layer maps.
//!
//! Adiabatic Quantum-Flux-Parametron (AQFP) circuits are built from a small
//! set of majority-based cells driven by a four-phase AC clock. This crate
//! models the static technology information the rest of the SuperFlow flow
//! depends on — and bundles *all* of it into one loadable [`Technology`]
//! (PDK) description:
//!
//! * [`Technology`] — everything process-specific in one value: design
//!   rules, the cell geometry table, the clock and delay coefficients and
//!   the GDS [`LayerMap`]; dumps to and loads from TOML/JSON (see
//!   [`technology`] for the field-by-field file format);
//! * [`TechnologyRegistry`] — the built-in `mit-ll-sqf5ee` and `aist-stp2`
//!   processes, shipped as data;
//! * [`CellKind`] / [`AqfpCell`] — the cell types, their dimensions, pin
//!   geometry and Josephson-junction (JJ) cost;
//! * [`CellLibrary`] — the legacy rules-plus-cells view; its constructors
//!   are thin lookups into the registry data and it converts into a
//!   [`Technology`];
//! * [`ProcessRules`] — spacing, maximum-wirelength and routing-layer rules;
//! * [`TimingConfig`] — the delay coefficients of the AQFP timing model;
//! * [`clocking`] — the four-phase zigzag clock model that gives every logic
//!   level (row) its clock phase.
//!
//! # Examples
//!
//! ```
//! use aqfp_cells::{CellKind, Technology};
//!
//! let tech = Technology::mit_ll_sqf5ee();
//! let buf = tech.cell(CellKind::Buffer);
//! assert_eq!(buf.jj_count, 2);
//! assert!(buf.width < tech.cell(CellKind::Majority3).width);
//!
//! // The whole description round-trips through an editable TOML file.
//! let dumped = tech.to_toml().unwrap();
//! assert_eq!(Technology::from_toml(&dumped).unwrap(), tech);
//! ```

pub mod cancel;
pub mod cell;
pub mod clocking;
pub mod energy;
pub mod geometry;
pub mod layers;
pub mod library;
pub mod process;
pub mod technology;
pub mod timing;
pub mod toml;

pub use cancel::{CancelReason, CancelToken};
pub use cell::{AqfpCell, CellKind, PinDirection, PinGeometry};
pub use clocking::{ClockPhase, FourPhaseClock};
pub use energy::EnergyModel;
pub use geometry::{Orientation, Point, Rect};
pub use layers::LayerMap;
pub use library::{CellLibrary, Process};
pub use process::ProcessRules;
pub use technology::{Technology, TechnologyRegistry, AIST_STP2, MIT_LL_SQF5EE};
pub use timing::TimingConfig;
