//! AQFP standard cell library, process design rules and clocking model.
//!
//! Adiabatic Quantum-Flux-Parametron (AQFP) circuits are built from a small
//! set of majority-based cells driven by a four-phase AC clock. This crate
//! models the static technology information the rest of the SuperFlow flow
//! depends on:
//!
//! * [`CellKind`] / [`AqfpCell`] — the cell types, their dimensions, pin
//!   geometry and Josephson-junction (JJ) cost;
//! * [`CellLibrary`] — a complete library for the AIST STP2 or MIT-LL SQF5ee
//!   fabrication process;
//! * [`ProcessRules`] — spacing, maximum-wirelength and routing-layer rules;
//! * [`clocking`] — the four-phase zigzag clock model that gives every logic
//!   level (row) its clock phase.
//!
//! # Examples
//!
//! ```
//! use aqfp_cells::{CellKind, CellLibrary};
//!
//! let lib = CellLibrary::mit_ll();
//! let buf = lib.cell(CellKind::Buffer);
//! assert_eq!(buf.jj_count, 2);
//! assert!(buf.width < lib.cell(CellKind::Majority3).width);
//! ```

pub mod cell;
pub mod clocking;
pub mod energy;
pub mod geometry;
pub mod library;
pub mod process;

pub use cell::{AqfpCell, CellKind, PinDirection, PinGeometry};
pub use clocking::{ClockPhase, FourPhaseClock};
pub use energy::EnergyModel;
pub use geometry::{Orientation, Point, Rect};
pub use library::{CellLibrary, Process};
pub use process::ProcessRules;
