//! AQFP cell definitions: cell kinds, pin geometry and per-cell cost.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::geometry::Point;

/// The kind of an AQFP standard cell (or a virtual netlist terminal).
///
/// AQFP logic is majority-based: `And`, `Or` and `Majority3` all map to the
/// same underlying 3-input majority structure (with constants tied to the
/// third input for `And`/`Or`), while buffers and splitters implement the
/// technology's path-balancing and fan-out rules.
///
/// `Input` and `Output` are virtual terminals used for primary I/O; they have
/// zero area and zero JJ cost but participate in placement rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Double-JJ SQUID buffer, the fundamental AQFP building block.
    Buffer,
    /// Inverting buffer.
    Inverter,
    /// Constant logic 0 source.
    Constant0,
    /// Constant logic 1 source.
    Constant1,
    /// Two-input AND (majority with a constant-0 third input).
    And,
    /// Two-input OR (majority with a constant-1 third input).
    Or,
    /// Two-input NAND.
    Nand,
    /// Two-input NOR.
    Nor,
    /// Two-input XOR (composite cell; counted as two majority levels).
    Xor,
    /// Three-input majority gate.
    Majority3,
    /// 1-to-2 splitter for fan-out of two.
    Splitter2,
    /// 1-to-3 splitter for fan-out of three.
    Splitter3,
    /// 1-to-4 splitter for fan-out of four.
    Splitter4,
    /// Primary input terminal (virtual, zero area).
    Input,
    /// Primary output terminal (virtual, zero area).
    Output,
}

impl CellKind {
    /// Every concrete cell kind in the library, in a stable order.
    pub const ALL: [CellKind; 15] = [
        CellKind::Buffer,
        CellKind::Inverter,
        CellKind::Constant0,
        CellKind::Constant1,
        CellKind::And,
        CellKind::Or,
        CellKind::Nand,
        CellKind::Nor,
        CellKind::Xor,
        CellKind::Majority3,
        CellKind::Splitter2,
        CellKind::Splitter3,
        CellKind::Splitter4,
        CellKind::Input,
        CellKind::Output,
    ];

    /// Number of logic inputs the cell consumes.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Buffer
            | CellKind::Inverter
            | CellKind::Splitter2
            | CellKind::Splitter3
            | CellKind::Splitter4
            | CellKind::Output => 1,
            CellKind::And | CellKind::Or | CellKind::Nand | CellKind::Nor | CellKind::Xor => 2,
            CellKind::Majority3 => 3,
            CellKind::Constant0 | CellKind::Constant1 | CellKind::Input => 0,
        }
    }

    /// Number of outputs the cell drives. AQFP gates have fan-out 1, so only
    /// splitters have more than one output.
    pub fn output_count(self) -> usize {
        match self {
            CellKind::Splitter2 => 2,
            CellKind::Splitter3 => 3,
            CellKind::Splitter4 => 4,
            CellKind::Output => 0,
            _ => 1,
        }
    }

    /// Whether the cell is a splitter of any arity.
    pub fn is_splitter(self) -> bool {
        matches!(self, CellKind::Splitter2 | CellKind::Splitter3 | CellKind::Splitter4)
    }

    /// Whether the cell is a logic gate (excludes buffers, splitters and
    /// virtual terminals).
    pub fn is_logic(self) -> bool {
        matches!(
            self,
            CellKind::And
                | CellKind::Or
                | CellKind::Nand
                | CellKind::Nor
                | CellKind::Xor
                | CellKind::Majority3
                | CellKind::Inverter
        )
    }

    /// Whether the cell is a virtual primary I/O terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, CellKind::Input | CellKind::Output)
    }

    /// The splitter kind required to drive `fanout` sinks, if one exists in
    /// the library. Fan-outs above four are handled by splitter trees in the
    /// synthesis stage.
    pub fn splitter_for_fanout(fanout: usize) -> Option<CellKind> {
        match fanout {
            2 => Some(CellKind::Splitter2),
            3 => Some(CellKind::Splitter3),
            4 => Some(CellKind::Splitter4),
            _ => None,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellKind::Buffer => "BUF",
            CellKind::Inverter => "INV",
            CellKind::Constant0 => "CONST0",
            CellKind::Constant1 => "CONST1",
            CellKind::And => "AND",
            CellKind::Or => "OR",
            CellKind::Nand => "NAND",
            CellKind::Nor => "NOR",
            CellKind::Xor => "XOR",
            CellKind::Majority3 => "MAJ3",
            CellKind::Splitter2 => "SPL2",
            CellKind::Splitter3 => "SPL3",
            CellKind::Splitter4 => "SPL4",
            CellKind::Input => "PI",
            CellKind::Output => "PO",
        };
        f.write_str(name)
    }
}

/// Direction of a physical pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinDirection {
    /// Data flows into the cell through this pin.
    Input,
    /// Data flows out of the cell through this pin.
    Output,
}

/// Physical geometry of a single pin, relative to the cell's lower-left
/// corner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinGeometry {
    /// Pin name (`a`, `b`, `c`, `xout`, ...), mirroring the paper's Fig. 1.
    pub name: String,
    /// Direction of the pin.
    pub direction: PinDirection,
    /// Offset from the cell's lower-left corner, in µm.
    pub offset: Point,
}

impl PinGeometry {
    /// Creates a pin from its name, direction and offset.
    pub fn new(name: impl Into<String>, direction: PinDirection, offset: Point) -> Self {
        Self { name: name.into(), direction, offset }
    }
}

/// A fully characterized AQFP standard cell.
///
/// Dimensions follow the updated AQFP standard cell library described in the
/// paper, in which every cell height, width and pin location is an integer
/// multiple of 10 µm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AqfpCell {
    /// The cell kind.
    pub kind: CellKind,
    /// Cell width in µm.
    pub width: f64,
    /// Cell height in µm.
    pub height: f64,
    /// Number of Josephson junctions the cell consumes.
    pub jj_count: usize,
    /// Input pins, ordered `a`, `b`, `c`.
    pub input_pins: Vec<PinGeometry>,
    /// Output pins, ordered `xout`, `xout1`, ...
    pub output_pins: Vec<PinGeometry>,
}

impl AqfpCell {
    /// Area of the cell in µm².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Absolute position of the `index`-th input pin for a cell placed with
    /// its lower-left corner at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn input_pin_position(&self, origin: Point, index: usize) -> Point {
        let pin = &self.input_pins[index];
        origin.translated(pin.offset.x, pin.offset.y)
    }

    /// Absolute position of the `index`-th output pin for a cell placed with
    /// its lower-left corner at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn output_pin_position(&self, origin: Point, index: usize) -> Point {
        let pin = &self.output_pins[index];
        origin.translated(pin.offset.x, pin.offset.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitters_have_multiple_outputs() {
        assert_eq!(CellKind::Splitter2.output_count(), 2);
        assert_eq!(CellKind::Splitter3.output_count(), 3);
        assert_eq!(CellKind::Splitter4.output_count(), 4);
        assert_eq!(CellKind::Buffer.output_count(), 1);
    }

    #[test]
    fn logic_gates_have_expected_arity() {
        assert_eq!(CellKind::Majority3.input_count(), 3);
        assert_eq!(CellKind::And.input_count(), 2);
        assert_eq!(CellKind::Buffer.input_count(), 1);
        assert_eq!(CellKind::Input.input_count(), 0);
    }

    #[test]
    fn splitter_for_fanout_selection() {
        assert_eq!(CellKind::splitter_for_fanout(2), Some(CellKind::Splitter2));
        assert_eq!(CellKind::splitter_for_fanout(4), Some(CellKind::Splitter4));
        assert_eq!(CellKind::splitter_for_fanout(1), None);
        assert_eq!(CellKind::splitter_for_fanout(9), None);
    }

    #[test]
    fn classification_predicates_are_disjoint() {
        for kind in CellKind::ALL {
            let classes = [kind.is_splitter(), kind.is_logic(), kind.is_terminal()]
                .iter()
                .filter(|b| **b)
                .count();
            assert!(classes <= 1, "{kind} belongs to more than one class");
        }
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = CellKind::ALL.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), CellKind::ALL.len());
    }
}
