//! Planar geometry primitives used throughout the flow.
//!
//! All coordinates are in micrometers (µm). The AQFP standard cell library
//! snaps every dimension to a 10 µm grid, but intermediate analytical
//! placement results are real-valued, so [`Point`] and [`Rect`] use `f64`.

use serde::{Deserialize, Serialize};

/// A point in the layout plane, in micrometers.
///
/// ```
/// use aqfp_cells::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(30.0, 40.0);
/// assert_eq!(a.manhattan_distance(b), 70.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (µm).
    pub x: f64,
    /// Vertical coordinate (µm).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to `other`, the metric used for wirelength.
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`.
    pub fn euclidean_distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Returns the point translated by `(dx, dy)`.
    pub fn translated(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Snaps both coordinates to the nearest multiple of `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is not strictly positive.
    pub fn snapped(self, grid: f64) -> Point {
        assert!(grid > 0.0, "grid must be positive");
        Point::new((self.x / grid).round() * grid, (self.y / grid).round() * grid)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, in micrometers.
///
/// The rectangle is stored as its lower-left corner plus width and height so
/// that degenerate (zero-area) rectangles remain representable.
///
/// ```
/// use aqfp_cells::Rect;
/// let r = Rect::new(0.0, 0.0, 40.0, 30.0);
/// assert_eq!(r.area(), 1200.0);
/// assert!(r.contains(aqfp_cells::Point::new(10.0, 10.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// X coordinate of the lower-left corner (µm).
    pub x: f64,
    /// Y coordinate of the lower-left corner (µm).
    pub y: f64,
    /// Width (µm), non-negative.
    pub width: f64,
    /// Height (µm), non-negative.
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        assert!(width >= 0.0 && height >= 0.0, "rect size must be non-negative");
        Self { x, y, width, height }
    }

    /// Builds the bounding box of a set of points. Returns `None` for an
    /// empty iterator.
    pub fn bounding_box<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (first.x, first.y, first.x, first.y);
        for p in iter {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        Some(Rect::new(min_x, min_y, max_x - min_x, max_y - min_y))
    }

    /// X coordinate of the right edge.
    pub fn right(&self) -> f64 {
        self.x + self.width
    }

    /// Y coordinate of the top edge.
    pub fn top(&self) -> f64 {
        self.y + self.height
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Area in µm².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Half-perimeter of the rectangle, the HPWL contribution of a net whose
    /// pins span exactly this box.
    pub fn half_perimeter(&self) -> f64 {
        self.width + self.height
    }

    /// Whether `point` lies inside the rectangle (boundary inclusive).
    pub fn contains(&self, point: Point) -> bool {
        point.x >= self.x && point.x <= self.right() && point.y >= self.y && point.y <= self.top()
    }

    /// Whether this rectangle and `other` overlap with strictly positive area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.top()
            && other.y < self.top()
    }

    /// Horizontal overlap length with `other` (zero if disjoint).
    pub fn x_overlap(&self, other: &Rect) -> f64 {
        (self.right().min(other.right()) - self.x.max(other.x)).max(0.0)
    }

    /// Returns this rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.width, self.height)
    }

    /// Returns the smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let right = self.right().max(other.right());
        let top = self.top().max(other.top());
        Rect::new(x, y, right - x, top - y)
    }
}

/// Placement orientation of a cell instance.
///
/// AQFP cells are placed in rows that all share the same clock wiring
/// direction, so only the identity and a horizontal mirror are used by the
/// flow; the remaining variants exist for GDSII round-tripping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Orientation {
    /// No transformation (north).
    #[default]
    R0,
    /// Rotated 180 degrees.
    R180,
    /// Mirrored about the Y axis.
    MirrorY,
    /// Mirrored about the X axis.
    MirrorX,
}

impl Orientation {
    /// All orientations, useful for exhaustive tests.
    pub const ALL: [Orientation; 4] =
        [Orientation::R0, Orientation::R180, Orientation::MirrorY, Orientation::MirrorX];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0.0);
    }

    #[test]
    fn snapping_rounds_to_grid() {
        let p = Point::new(14.0, 26.0).snapped(10.0);
        assert_eq!(p, Point::new(10.0, 30.0));
    }

    #[test]
    #[should_panic(expected = "grid must be positive")]
    fn snapping_rejects_zero_grid() {
        Point::new(1.0, 1.0).snapped(0.0);
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 0.0)));
    }

    #[test]
    fn rect_overlap_excludes_abutment() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(10.0, 0.0, 10.0, 10.0);
        assert!(!a.overlaps(&b), "abutting rectangles do not overlap");
        let c = Rect::new(9.9, 0.0, 10.0, 10.0);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn bounding_box_of_points() {
        let bb = Rect::bounding_box(vec![
            Point::new(5.0, 5.0),
            Point::new(-5.0, 0.0),
            Point::new(2.0, 12.0),
        ])
        .expect("non-empty");
        assert_eq!(bb.x, -5.0);
        assert_eq!(bb.y, 0.0);
        assert_eq!(bb.right(), 5.0);
        assert_eq!(bb.top(), 12.0);
        assert_eq!(bb.half_perimeter(), 22.0);
        assert!(Rect::bounding_box(std::iter::empty()).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 5.0, 5.0);
        let b = Rect::new(10.0, 10.0, 5.0, 5.0);
        let u = a.union(&b);
        assert!(u.contains(Point::new(0.0, 0.0)));
        assert!(u.contains(Point::new(15.0, 15.0)));
        assert_eq!(u.area(), 225.0);
    }

    #[test]
    fn x_overlap_length() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(6.0, 0.0, 10.0, 10.0);
        assert_eq!(a.x_overlap(&b), 4.0);
        let c = Rect::new(20.0, 0.0, 10.0, 10.0);
        assert_eq!(a.x_overlap(&c), 0.0);
    }
}
