//! Path-balancing buffer insertion (§III-B.2 of the paper).
//!
//! AQFP's gate-level pipelining requires every input of a gate to arrive with
//! the same delay (number of clock phases) from the primary inputs. After
//! splitter insertion the logic structure is fixed, so buffers can be
//! inserted edge by edge in any order without changing the total number of
//! clock phases or the critical path.

use aqfp_cells::CellKind;
use aqfp_netlist::{traverse, GateId, Netlist};
use serde::{Deserialize, Serialize};

/// Statistics of a path-balancing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BalanceReport {
    /// Buffers inserted on internal edges.
    pub buffers_inserted: usize,
    /// Buffers inserted to align primary outputs to the final phase.
    pub output_buffers: usize,
    /// Final circuit depth in clock phases.
    pub depth: usize,
}

/// The result of path balancing: the buffered netlist plus the clock-phase
/// (row) assignment of every gate, indexed by [`GateId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalancedNetlist {
    /// The buffered, fan-out-legal netlist.
    pub netlist: Netlist,
    /// Clock phase (logic level) of every gate. Primary inputs are phase 0;
    /// primary outputs share the phase one past the deepest logic cell.
    pub levels: Vec<usize>,
    /// Insertion statistics.
    pub report: BalanceReport,
}

impl BalancedNetlist {
    /// The circuit depth in clock phases (the `#Delay` column of Table II).
    pub fn depth(&self) -> usize {
        self.report.depth
    }

    /// Whether every gate's fan-ins sit exactly one phase above it — the
    /// AQFP path-balancing invariant.
    pub fn is_path_balanced(&self) -> bool {
        self.netlist.iter().all(|(id, gate)| {
            gate.fanin.iter().all(|f| self.levels[f.index()] + 1 == self.levels[id.index()])
        })
    }
}

/// Inserts path-balancing buffers and assigns a clock phase to every gate.
///
/// The input netlist must already satisfy the fan-out rule (buffers are
/// single-fan-out cells, so balancing never creates new fan-out violations).
///
/// # Panics
///
/// Panics if the netlist is cyclic (callers validate first).
pub fn balance(netlist: &Netlist) -> BalancedNetlist {
    let mut work = netlist.clone();
    let mut levels = traverse::logic_levels(&work).expect("netlist must be acyclic");
    let mut report = BalanceReport::default();

    // Align every primary output to the same final phase so the whole design
    // retires in one wave, as the AQFP deep pipeline requires.
    let max_po_level =
        work.primary_outputs().iter().map(|id| levels[id.index()]).max().unwrap_or(0);
    for id in work.ids() {
        if work.gate(id).is_primary_output() {
            levels[id.index()] = max_po_level;
        }
    }

    // Insert buffers on every edge whose endpoints are more than one phase
    // apart. New gates are appended, so iterate over a snapshot of the edges.
    let edges: Vec<(GateId, usize, GateId)> = work
        .iter()
        .flat_map(|(id, gate)| {
            gate.fanin
                .iter()
                .enumerate()
                .map(move |(pin, &driver)| (id, pin, driver))
                .collect::<Vec<_>>()
        })
        .collect();

    for (sink, pin, driver) in edges {
        let sink_level = levels[sink.index()];
        let driver_level = levels[driver.index()];
        debug_assert!(sink_level > driver_level, "levels follow topological order");
        let missing = sink_level - driver_level - 1;
        if missing == 0 {
            continue;
        }
        let is_po = work.gate(sink).is_primary_output();
        let mut previous = driver;
        for step in 0..missing {
            let buffer = work.add_gate(
                CellKind::Buffer,
                format!("bal_{}_{}_{}", sink.index(), pin, step),
                vec![previous],
            );
            levels.push(driver_level + step + 1);
            previous = buffer;
            if is_po {
                report.output_buffers += 1;
            } else {
                report.buffers_inserted += 1;
            }
        }
        work.gate_mut(sink).fanin[pin] = previous;
    }

    report.depth = work
        .iter()
        .filter(|(_, g)| !g.kind.is_terminal())
        .map(|(id, _)| levels[id.index()])
        .max()
        .unwrap_or(0);

    BalancedNetlist { netlist: work, levels, report }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::fanout::{insert_splitters, respects_fanout_limit};
    use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
    use aqfp_netlist::simulate;

    #[test]
    fn unbalanced_join_gets_buffers() {
        // a feeds the join directly (level 1) while b goes through two
        // buffers (level 3): the short path needs two balancing buffers.
        let mut n = Netlist::new("skew");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let b1 = n.add_gate(CellKind::Buffer, "b1", vec![b]);
        let b2 = n.add_gate(CellKind::Buffer, "b2", vec![b1]);
        let join = n.add_gate(CellKind::And, "join", vec![a, b2]);
        n.add_output("y", join);

        let balanced = balance(&n);
        balanced.netlist.validate().expect("valid");
        assert!(balanced.is_path_balanced());
        assert_eq!(balanced.report.buffers_inserted, 2);
        assert!(simulate::equivalent(&n, &balanced.netlist).unwrap());
    }

    #[test]
    fn already_balanced_netlist_is_untouched() {
        let mut n = Netlist::new("flat");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(CellKind::And, "g", vec![a, b]);
        n.add_output("y", g);
        let balanced = balance(&n);
        assert_eq!(balanced.report.buffers_inserted, 0);
        assert_eq!(balanced.netlist.gate_count(), n.gate_count());
        assert!(balanced.is_path_balanced());
    }

    #[test]
    fn primary_outputs_are_aligned() {
        let mut n = Netlist::new("po_skew");
        let a = n.add_input("a");
        let shallow = n.add_gate(CellKind::Buffer, "shallow", vec![a]);
        let d1 = n.add_gate(CellKind::Inverter, "d1", vec![a]);
        let d2 = n.add_gate(CellKind::Inverter, "d2", vec![d1]);
        let d3 = n.add_gate(CellKind::Inverter, "d3", vec![d2]);
        n.add_output("y_short", shallow);
        n.add_output("y_long", d3);

        let balanced = balance(&n);
        assert!(balanced.is_path_balanced());
        assert!(balanced.report.output_buffers >= 2, "short output path must be padded");
        let po_levels: Vec<usize> = balanced
            .netlist
            .primary_outputs()
            .iter()
            .map(|id| balanced.levels[id.index()])
            .collect();
        assert!(po_levels.windows(2).all(|w| w[0] == w[1]), "all POs in the same phase");
    }

    #[test]
    fn balancing_benchmarks_preserves_function_and_fanout() {
        for b in [Benchmark::Adder8, Benchmark::Apc32] {
            let raw = benchmark_circuit(b);
            let (split, _) = insert_splitters(&raw, 4);
            let balanced = balance(&split);
            balanced.netlist.validate().expect("valid");
            assert!(balanced.is_path_balanced(), "{b} must be path balanced");
            assert!(respects_fanout_limit(&balanced.netlist), "{b} fan-out rule must survive");
            assert!(simulate::equivalent_sampled(&raw, &balanced.netlist, 64, 3).unwrap());
            assert!(balanced.depth() > 0);
        }
    }

    #[test]
    fn depth_counts_logic_phases() {
        let mut n = Netlist::new("depth");
        let a = n.add_input("a");
        let g1 = n.add_gate(CellKind::Inverter, "g1", vec![a]);
        let g2 = n.add_gate(CellKind::Inverter, "g2", vec![g1]);
        n.add_output("y", g2);
        let balanced = balance(&n);
        assert_eq!(balanced.depth(), 2);
    }
}
