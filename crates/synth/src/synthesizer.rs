//! The synthesis driver tying conversion, splitter insertion and balancing
//! together.

use std::sync::Arc;

use aqfp_cells::{CellKind, Technology};
use aqfp_netlist::{Netlist, NetlistStats};
use serde::{Deserialize, Serialize};

use crate::balance::{self, BalanceReport};
use crate::error::SynthesisError;
use crate::fanout::{self, SplitterReport};
use crate::maj::{self, MajConversionReport};

/// Options controlling the synthesis stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisOptions {
    /// Run the AOI → majority conversion (disable for ablation studies).
    pub majority_conversion: bool,
    /// Decompose composite XOR/NAND/NOR cells into and-or-inverter logic
    /// before conversion, mimicking a plain AOI netlist from the CMOS
    /// synthesis front-end.
    pub decompose_to_aoi: bool,
    /// Largest splitter arity available in the library.
    pub max_splitter_arity: usize,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        Self { majority_conversion: true, decompose_to_aoi: false, max_splitter_arity: 4 }
    }
}

/// The output of the synthesis stage: an AQFP-legal netlist with its
/// clock-phase assignment and per-pass reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesizedNetlist {
    /// The majority-based, fan-out-legal, path-balanced netlist.
    pub netlist: Netlist,
    /// Clock phase (row index) of every gate, indexed by gate id.
    pub levels: Vec<usize>,
    /// Majority-conversion statistics.
    pub maj_report: MajConversionReport,
    /// Splitter-insertion statistics.
    pub splitter_report: SplitterReport,
    /// Buffer-insertion statistics.
    pub balance_report: BalanceReport,
    /// Final netlist statistics (Table II columns).
    pub stats: NetlistStats,
}

impl SynthesizedNetlist {
    /// Circuit depth in clock phases.
    pub fn depth(&self) -> usize {
        self.balance_report.depth
    }

    /// Whether every gate's fan-ins arrive exactly one phase earlier.
    pub fn is_path_balanced(&self) -> bool {
        self.netlist.iter().all(|(id, gate)| {
            gate.fanin.iter().all(|f| self.levels[f.index()] + 1 == self.levels[id.index()])
        })
    }

    /// Whether the fan-out rule holds (splitters only drive multiple sinks).
    pub fn respects_fanout_limit(&self) -> bool {
        fanout::respects_fanout_limit(&self.netlist)
    }
}

/// The synthesis driver (the "MAJ Netlist Converter" plus "Buffer & Splitter
/// Insertion" boxes of the paper's Fig. 3).
///
/// ```
/// use aqfp_cells::Technology;
/// use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
/// use aqfp_synth::Synthesizer;
///
/// let synth = Synthesizer::new(Technology::mit_ll_sqf5ee());
/// let result = synth.run(&benchmark_circuit(Benchmark::Apc32))?;
/// println!("{}", result.stats);
/// # Ok::<(), aqfp_synth::SynthesisError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    technology: Arc<Technology>,
    options: SynthesisOptions,
}

impl Synthesizer {
    /// Creates a synthesizer with default options. Accepts either an owned
    /// [`Technology`] or a shared `Arc<Technology>` (the flow driver shares
    /// one technology across all stages).
    pub fn new(technology: impl Into<Arc<Technology>>) -> Self {
        Self { technology: technology.into(), options: SynthesisOptions::default() }
    }

    /// Creates a synthesizer with explicit options.
    pub fn with_options(technology: impl Into<Arc<Technology>>, options: SynthesisOptions) -> Self {
        Self { technology: technology.into(), options }
    }

    /// The technology the synthesizer targets.
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// The active options.
    pub fn options(&self) -> SynthesisOptions {
        self.options
    }

    /// Runs the complete synthesis stage on an AOI netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::InvalidInput`] if the input netlist fails
    /// validation and [`SynthesisError::InternalRewrite`] if an internal pass
    /// produces an inconsistent netlist (a bug guard, not an expected path).
    pub fn run(&self, aoi: &Netlist) -> Result<SynthesizedNetlist, SynthesisError> {
        aoi.validate().map_err(SynthesisError::InvalidInput)?;

        let mut current = aoi.clone();
        if self.options.decompose_to_aoi {
            current = decompose_to_aoi(&current);
            current.validate().map_err(SynthesisError::InternalRewrite)?;
        }

        let maj_report = if self.options.majority_conversion {
            let (converted, report) = maj::convert_to_majority(&current, &self.technology);
            current = converted;
            report
        } else {
            let jj = current.jj_count(&self.technology);
            MajConversionReport { jj_before: jj, jj_after: jj, ..Default::default() }
        };
        current.validate().map_err(SynthesisError::InternalRewrite)?;

        let (split, splitter_report) =
            fanout::insert_splitters(&current, self.options.max_splitter_arity);
        split.validate().map_err(SynthesisError::InternalRewrite)?;

        let balanced = balance::balance(&split);
        balanced.netlist.validate().map_err(SynthesisError::InternalRewrite)?;

        let stats = balanced.netlist.stats(&self.technology);
        Ok(SynthesizedNetlist {
            levels: balanced.levels,
            balance_report: balanced.report,
            netlist: balanced.netlist,
            maj_report,
            splitter_report,
            stats,
        })
    }
}

/// Rewrites composite XOR/NAND/NOR cells into and-or-inverter logic, the
/// representation a CMOS synthesis front-end would hand over.
fn decompose_to_aoi(netlist: &Netlist) -> Netlist {
    let mut work = netlist.clone();
    for id in netlist.ids() {
        let gate = work.gate(id).clone();
        match gate.kind {
            CellKind::Nand => {
                let and = work.add_gate(
                    CellKind::And,
                    format!("aoi_and_{}", id.index()),
                    gate.fanin.clone(),
                );
                let g = work.gate_mut(id);
                g.kind = CellKind::Inverter;
                g.fanin = vec![and];
            }
            CellKind::Nor => {
                let or = work.add_gate(
                    CellKind::Or,
                    format!("aoi_or_{}", id.index()),
                    gate.fanin.clone(),
                );
                let g = work.gate_mut(id);
                g.kind = CellKind::Inverter;
                g.fanin = vec![or];
            }
            CellKind::Xor => {
                let a = gate.fanin[0];
                let b = gate.fanin[1];
                let not_a =
                    work.add_gate(CellKind::Inverter, format!("aoi_na_{}", id.index()), vec![a]);
                let not_b =
                    work.add_gate(CellKind::Inverter, format!("aoi_nb_{}", id.index()), vec![b]);
                let left =
                    work.add_gate(CellKind::And, format!("aoi_l_{}", id.index()), vec![a, not_b]);
                let right =
                    work.add_gate(CellKind::And, format!("aoi_r_{}", id.index()), vec![not_a, b]);
                let g = work.gate_mut(id);
                g.kind = CellKind::Or;
                g.fanin = vec![left, right];
            }
            _ => {}
        }
    }
    work
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
    use aqfp_netlist::simulate;

    #[test]
    fn full_synthesis_of_adder8_is_legal() {
        let aoi = benchmark_circuit(Benchmark::Adder8);
        let synth = Synthesizer::new(Technology::mit_ll_sqf5ee());
        let result = synth.run(&aoi).expect("synthesis succeeds");
        assert!(result.is_path_balanced());
        assert!(result.respects_fanout_limit());
        assert!(result.stats.jj_count > 0);
        assert!(result.stats.delay >= result.stats.delay.min(1));
        assert!(simulate::equivalent_sampled(&aoi, &result.netlist, 128, 11).unwrap());
    }

    #[test]
    fn synthesis_reports_buffer_and_splitter_counts() {
        let aoi = benchmark_circuit(Benchmark::Decoder);
        let result =
            Synthesizer::new(Technology::mit_ll_sqf5ee()).run(&aoi).expect("synthesis succeeds");
        assert!(result.splitter_report.splitters_inserted > 0, "decoder has heavy fan-out");
        assert!(result.balance_report.buffers_inserted > 0, "decoder paths are skewed");
        assert_eq!(result.stats.buffer_count, result.netlist.count_kind(CellKind::Buffer));
    }

    #[test]
    fn disabling_majority_conversion_keeps_more_jjs() {
        let aoi = benchmark_circuit(Benchmark::Apc32);
        let lib = Technology::mit_ll_sqf5ee();
        let with = Synthesizer::new(lib.clone()).run(&aoi).expect("ok");
        let without = Synthesizer::with_options(
            lib,
            SynthesisOptions { majority_conversion: false, ..Default::default() },
        )
        .run(&aoi)
        .expect("ok");
        assert!(with.maj_report.jj_after <= without.maj_report.jj_after);
    }

    #[test]
    fn aoi_decomposition_preserves_function() {
        let aoi = benchmark_circuit(Benchmark::Adder8);
        let options = SynthesisOptions { decompose_to_aoi: true, ..Default::default() };
        let result =
            Synthesizer::with_options(Technology::mit_ll_sqf5ee(), options).run(&aoi).expect("ok");
        assert!(simulate::equivalent_sampled(&aoi, &result.netlist, 64, 5).unwrap());
        assert_eq!(result.netlist.count_kind(CellKind::Xor), 0, "XOR cells are decomposed");
        assert_eq!(result.netlist.count_kind(CellKind::Nand), 0);
    }

    #[test]
    fn invalid_input_is_reported() {
        let mut bad = Netlist::new("bad");
        let a = bad.add_input("a");
        bad.add_gate(CellKind::And, "g", vec![a]);
        let err = Synthesizer::new(Technology::mit_ll_sqf5ee()).run(&bad).unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidInput(_)));
    }

    #[test]
    fn levels_cover_every_gate() {
        let aoi = benchmark_circuit(Benchmark::Apc32);
        let result = Synthesizer::new(Technology::mit_ll_sqf5ee()).run(&aoi).expect("ok");
        assert_eq!(result.levels.len(), result.netlist.gate_count());
        let max_level = *result.levels.iter().max().unwrap();
        assert!(max_level >= result.depth());
    }
}
