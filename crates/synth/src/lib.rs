//! Majority-based logic synthesis for AQFP circuits.
//!
//! This crate implements the logic-synthesis stage of SuperFlow (§III-B of
//! the paper): starting from an AOI (and/or/inverter) gate-level netlist, it
//!
//! 1. converts feasible three-input cones to majority-based logic using a
//!    table-based (Karnaugh-map) matching method ([`maj`]),
//! 2. inserts splitter cells so every gate drives at most one sink, as the
//!    AQFP fan-out rule requires ([`fanout`]),
//! 3. inserts path-balancing buffers so all inputs of every gate arrive in
//!    the same clock phase ([`balance`]),
//!
//! and reports the statistics Table II of the paper lists (#JJs, #Nets,
//! #Delay).
//!
//! # Examples
//!
//! ```
//! use aqfp_cells::Technology;
//! use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
//! use aqfp_synth::Synthesizer;
//!
//! let aoi = benchmark_circuit(Benchmark::Adder8);
//! let synth = Synthesizer::new(Technology::mit_ll_sqf5ee());
//! let result = synth.run(&aoi)?;
//! assert!(result.is_path_balanced());
//! assert!(result.respects_fanout_limit());
//! # Ok::<(), aqfp_synth::SynthesisError>(())
//! ```

#![warn(clippy::unwrap_used)]

pub mod balance;
pub mod error;
pub mod fanout;
pub mod maj;
pub mod synthesizer;
pub mod truth;

pub use error::SynthesisError;
pub use synthesizer::{SynthesisOptions, SynthesizedNetlist, Synthesizer};
