//! Splitter insertion (§III-B.2 of the paper).
//!
//! AQFP gates can drive exactly one sink; every multi-fan-out signal must go
//! through splitter cells. This pass rewrites the netlist so that every
//! non-splitter gate has at most one sink pin and every splitter drives at
//! most its arity, building balanced splitter trees for large fan-outs.

use aqfp_cells::CellKind;
use aqfp_netlist::{GateId, Netlist};
use serde::{Deserialize, Serialize};

/// Statistics of a splitter-insertion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SplitterReport {
    /// Number of signals that needed splitting.
    pub split_signals: usize,
    /// Total splitter cells inserted.
    pub splitters_inserted: usize,
    /// The largest fan-out encountered.
    pub max_fanout: usize,
}

/// Inserts splitter cells so the fan-out rule holds.
///
/// `max_arity` is the largest splitter in the library (4 for the library in
/// this reproduction); larger fan-outs get a tree of splitters.
///
/// # Panics
///
/// Panics if `max_arity < 2`.
pub fn insert_splitters(netlist: &Netlist, max_arity: usize) -> (Netlist, SplitterReport) {
    assert!(max_arity >= 2, "splitters must have at least two outputs");
    let mut work = netlist.clone();
    let mut report = SplitterReport::default();

    // Snapshot of sink pin references per driver: (sink gate, pin index).
    let mut sink_pins: Vec<Vec<(GateId, usize)>> = vec![Vec::new(); work.gate_count()];
    for (id, gate) in netlist.iter() {
        for (pin, &driver) in gate.fanin.iter().enumerate() {
            sink_pins[driver.index()].push((id, pin));
        }
    }

    for (driver_index, pins) in sink_pins.iter().enumerate() {
        let driver = GateId(driver_index);
        let fanout = pins.len();
        report.max_fanout = report.max_fanout.max(fanout);
        if fanout <= 1 {
            continue;
        }
        report.split_signals += 1;
        let leaves = build_splitter_tree(&mut work, driver, fanout, max_arity, &mut report);
        debug_assert_eq!(leaves.len(), fanout);
        for ((sink, pin), leaf) in pins.iter().zip(leaves) {
            work.gate_mut(*sink).fanin[*pin] = leaf;
        }
    }

    (work, report)
}

/// Builds a splitter tree under `driver` with `fanout` leaves and returns one
/// leaf signal per requested branch.
fn build_splitter_tree(
    netlist: &mut Netlist,
    driver: GateId,
    fanout: usize,
    max_arity: usize,
    report: &mut SplitterReport,
) -> Vec<GateId> {
    if fanout == 1 {
        return vec![driver];
    }
    // Choose the arity of the root splitter: as large as needed, capped by
    // the library, then distribute the remaining branches across children.
    let arity = fanout.min(max_arity);
    let kind = match arity {
        2 => CellKind::Splitter2,
        3 => CellKind::Splitter3,
        _ => CellKind::Splitter4,
    };
    let splitter = netlist.add_gate(
        kind,
        format!("spl_{}_{}", driver.index(), netlist.gate_count()),
        vec![driver],
    );
    report.splitters_inserted += 1;

    // Distribute `fanout` leaves over `arity` branches as evenly as possible.
    let mut leaves = Vec::with_capacity(fanout);
    let base = fanout / arity;
    let extra = fanout % arity;
    for branch in 0..arity {
        let branch_fanout = base + usize::from(branch < extra);
        if branch_fanout == 0 {
            continue;
        }
        if branch_fanout == 1 {
            leaves.push(splitter);
        } else {
            leaves.extend(build_splitter_tree(netlist, splitter, branch_fanout, max_arity, report));
        }
    }
    leaves
}

/// The number of sink pins a cell of `kind` may drive directly under the
/// AQFP fan-out discipline: splitters up to their arity, everything else one.
///
/// This is the capacity model both splitter insertion and the pre-flight
/// lint's fan-out rule consult.
pub fn fanout_capacity(kind: CellKind) -> usize {
    match kind {
        CellKind::Splitter2 => 2,
        CellKind::Splitter3 => 3,
        CellKind::Splitter4 => 4,
        _ => 1,
    }
}

/// The number of splitter cells [`insert_splitters`] will spend to fan one
/// signal out to `fanout` sinks with splitters of at most `max_arity` outputs
/// (0 when no splitting is needed). Mirrors the balanced-tree construction of
/// [`insert_splitters`] exactly, so static analysis can predict splitter
/// overhead without building the tree.
///
/// # Panics
///
/// Panics if `max_arity < 2`.
pub fn splitter_tree_size(fanout: usize, max_arity: usize) -> usize {
    assert!(max_arity >= 2, "splitters must have at least two outputs");
    if fanout <= 1 {
        return 0;
    }
    let arity = fanout.min(max_arity);
    let base = fanout / arity;
    let extra = fanout % arity;
    let mut total = 1;
    for branch in 0..arity {
        let branch_fanout = base + usize::from(branch < extra);
        if branch_fanout > 1 {
            total += splitter_tree_size(branch_fanout, max_arity);
        }
    }
    total
}

/// Checks the AQFP fan-out rule on a netlist: non-splitter gates drive at
/// most one sink pin, splitters at most their arity.
pub fn respects_fanout_limit(netlist: &Netlist) -> bool {
    let mut sink_count = vec![0usize; netlist.gate_count()];
    for (_, gate) in netlist.iter() {
        for &driver in &gate.fanin {
            sink_count[driver.index()] += 1;
        }
    }
    netlist.iter().all(|(id, gate)| sink_count[id.index()] <= fanout_capacity(gate.kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
    use aqfp_netlist::simulate;

    fn fan_heavy_netlist(fanout: usize) -> Netlist {
        let mut n = Netlist::new("fan");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(CellKind::And, "g", vec![a, b]);
        for i in 0..fanout {
            let buf = n.add_gate(CellKind::Buffer, format!("buf{i}"), vec![g]);
            n.add_output(format!("y{i}"), buf);
        }
        n
    }

    #[test]
    fn small_fanout_uses_single_splitter() {
        let n = fan_heavy_netlist(3);
        let (split, report) = insert_splitters(&n, 4);
        split.validate().expect("valid");
        assert!(respects_fanout_limit(&split));
        assert_eq!(report.split_signals, 1);
        assert_eq!(report.splitters_inserted, 1);
        assert_eq!(split.count_kind(CellKind::Splitter3), 1);
        assert!(simulate::equivalent(&n, &split).expect("acyclic netlists compare"));
    }

    #[test]
    fn large_fanout_builds_a_tree() {
        let n = fan_heavy_netlist(10);
        let (split, report) = insert_splitters(&n, 4);
        split.validate().expect("valid");
        assert!(respects_fanout_limit(&split));
        assert!(report.splitters_inserted >= 3, "10 branches need a splitter tree");
        assert!(simulate::equivalent_sampled(&n, &split, 16, 1).expect("acyclic netlists compare"));
    }

    #[test]
    fn already_legal_netlist_is_untouched() {
        let mut n = Netlist::new("legal");
        let a = n.add_input("a");
        let buf = n.add_gate(CellKind::Buffer, "b", vec![a]);
        n.add_output("y", buf);
        let (split, report) = insert_splitters(&n, 4);
        assert_eq!(report.splitters_inserted, 0);
        assert_eq!(split.gate_count(), n.gate_count());
    }

    #[test]
    fn benchmark_fanout_is_fully_legalized() {
        for b in [Benchmark::Adder8, Benchmark::Decoder] {
            let n = benchmark_circuit(b);
            assert!(!respects_fanout_limit(&n), "{b}: raw netlist has multi-fanout signals");
            let (split, _) = insert_splitters(&n, 4);
            split.validate().expect("valid");
            assert!(respects_fanout_limit(&split), "{b}: fan-out rule must hold after insertion");
            assert!(
                simulate::equivalent_sampled(&n, &split, 64, 7).expect("acyclic netlists compare")
            );
        }
    }

    #[test]
    fn dual_pin_sink_gets_two_branches() {
        // One gate consuming the same signal on both pins counts as two sinks.
        let mut n = Netlist::new("dup");
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::And, "g", vec![a, a]);
        n.add_output("y", g);
        let (split, report) = insert_splitters(&n, 4);
        split.validate().expect("valid");
        assert!(respects_fanout_limit(&split));
        assert_eq!(report.split_signals, 1);
        assert!(simulate::equivalent(&n, &split).expect("acyclic netlists compare"));
    }

    #[test]
    #[should_panic(expected = "at least two outputs")]
    fn tiny_arity_rejected() {
        insert_splitters(&Netlist::new("x"), 1);
    }

    #[test]
    fn capacity_model_matches_insertion() {
        assert_eq!(fanout_capacity(CellKind::Splitter3), 3);
        assert_eq!(fanout_capacity(CellKind::And), 1);
        assert_eq!(splitter_tree_size(1, 4), 0);
        assert_eq!(splitter_tree_size(4, 4), 1);
        assert_eq!(splitter_tree_size(5, 4), 2);
        // The closed form agrees with what insertion actually builds.
        for fanout in 2..24 {
            for arity in 2..=4 {
                // Only the AND gate of `fan_heavy_netlist` has multi-fanout,
                // so the whole report is one tree.
                let n = fan_heavy_netlist(fanout);
                let (_, report) = insert_splitters(&n, arity);
                assert_eq!(
                    report.splitters_inserted,
                    splitter_tree_size(fanout, arity),
                    "fanout {fanout} arity {arity}"
                );
            }
        }
    }
}
