//! Three-input truth tables and the majority mapping table.
//!
//! The paper's majority netlist conversion uses a "table-based method" that
//! compares the Karnaugh map of a candidate three-input cone against
//! majority-based implementations. This module implements that table: every
//! 3-input boolean function is an 8-bit truth table ([`TruthTable3`]), and
//! [`MappingTable`] precomputes, for every function reachable with at most
//! two levels of majority gates over (possibly inverted) inputs and
//! constants, the cheapest majority-based implementation.

use std::collections::HashMap;
use std::sync::OnceLock;

/// A 3-input boolean function encoded as an 8-bit truth table.
///
/// Bit `i` of the table is the function value for the input assignment where
/// `a = i & 1`, `b = (i >> 1) & 1`, `c = (i >> 2) & 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable3(pub u8);

impl TruthTable3 {
    /// The projection onto input `a`.
    pub const VAR_A: TruthTable3 = TruthTable3(0b1010_1010);
    /// The projection onto input `b`.
    pub const VAR_B: TruthTable3 = TruthTable3(0b1100_1100);
    /// The projection onto input `c`.
    pub const VAR_C: TruthTable3 = TruthTable3(0b1111_0000);
    /// The constant-false function.
    pub const FALSE: TruthTable3 = TruthTable3(0x00);
    /// The constant-true function.
    pub const TRUE: TruthTable3 = TruthTable3(0xFF);

    /// The projection onto the `index`-th input (0 = a, 1 = b, 2 = c).
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    pub fn variable(index: usize) -> TruthTable3 {
        match index {
            0 => Self::VAR_A,
            1 => Self::VAR_B,
            2 => Self::VAR_C,
            _ => panic!("three-input functions have variables 0..=2"),
        }
    }

    /// Complement of the function.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> TruthTable3 {
        TruthTable3(!self.0)
    }

    /// Bitwise majority of three functions: the truth table of
    /// `MAJ(f, g, h)`.
    pub fn maj(f: TruthTable3, g: TruthTable3, h: TruthTable3) -> TruthTable3 {
        TruthTable3((f.0 & g.0) | (g.0 & h.0) | (f.0 & h.0))
    }

    /// Conjunction of two functions.
    pub fn and(f: TruthTable3, g: TruthTable3) -> TruthTable3 {
        TruthTable3(f.0 & g.0)
    }

    /// Disjunction of two functions.
    pub fn or(f: TruthTable3, g: TruthTable3) -> TruthTable3 {
        TruthTable3(f.0 | g.0)
    }

    /// Exclusive or of two functions.
    pub fn xor(f: TruthTable3, g: TruthTable3) -> TruthTable3 {
        TruthTable3(f.0 ^ g.0)
    }

    /// Evaluates the function on a concrete input assignment.
    pub fn eval(self, a: bool, b: bool, c: bool) -> bool {
        let idx = (a as u8) | ((b as u8) << 1) | ((c as u8) << 2);
        self.0 & (1 << idx) != 0
    }

    /// Whether the function actually depends on the `index`-th variable.
    pub fn depends_on(self, index: usize) -> bool {
        let var = Self::variable(index).0;
        // Compare cofactors: f|x=1 vs f|x=0.
        let ones = self.0 & var;
        let zeros = self.0 & !var;
        match index {
            0 => (ones >> 1) != zeros & 0b0101_0101,
            1 => (ones >> 2) != zeros & 0b0011_0011,
            2 => (ones >> 4) != zeros & 0b0000_1111,
            _ => panic!("three-input functions have variables 0..=2"),
        }
    }
}

/// A leaf operand of a majority expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Literal {
    /// An input variable (0 = a, 1 = b, 2 = c), possibly complemented.
    Var {
        /// Variable index.
        index: usize,
        /// Whether the variable is complemented.
        inverted: bool,
    },
    /// A constant value.
    Const(bool),
}

impl Literal {
    fn truth_table(self) -> TruthTable3 {
        match self {
            Literal::Var { index, inverted } => {
                let tt = TruthTable3::variable(index);
                if inverted {
                    tt.not()
                } else {
                    tt
                }
            }
            Literal::Const(false) => TruthTable3::FALSE,
            Literal::Const(true) => TruthTable3::TRUE,
        }
    }

    /// JJ cost of realizing the literal: plain variables are free (the wire
    /// already exists), complemented variables need an inverter (2 JJs) and
    /// constants need a constant cell (2 JJs).
    fn jj_cost(self) -> usize {
        match self {
            Literal::Var { inverted: false, .. } => 0,
            Literal::Var { inverted: true, .. } => 2,
            Literal::Const(_) => 2,
        }
    }

    const ALL: [Literal; 8] = [
        Literal::Var { index: 0, inverted: false },
        Literal::Var { index: 1, inverted: false },
        Literal::Var { index: 2, inverted: false },
        Literal::Var { index: 0, inverted: true },
        Literal::Var { index: 1, inverted: true },
        Literal::Var { index: 2, inverted: true },
        Literal::Const(false),
        Literal::Const(true),
    ];
}

/// A majority-based implementation of a 3-input function: either a literal or
/// a majority gate over three sub-expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MajExpr {
    /// A bare literal (used when the target function is a projection).
    Leaf(Literal),
    /// A majority gate over three operands.
    Maj(Box<MajExpr>, Box<MajExpr>, Box<MajExpr>),
}

impl MajExpr {
    /// The truth table realized by the expression.
    pub fn truth_table(&self) -> TruthTable3 {
        match self {
            MajExpr::Leaf(lit) => lit.truth_table(),
            MajExpr::Maj(f, g, h) => {
                TruthTable3::maj(f.truth_table(), g.truth_table(), h.truth_table())
            }
        }
    }

    /// Total JJ cost: 6 per majority gate plus the literal costs.
    pub fn jj_cost(&self) -> usize {
        match self {
            MajExpr::Leaf(lit) => lit.jj_cost(),
            MajExpr::Maj(f, g, h) => 6 + f.jj_cost() + g.jj_cost() + h.jj_cost(),
        }
    }

    /// Number of majority gates in the expression.
    pub fn maj_count(&self) -> usize {
        match self {
            MajExpr::Leaf(_) => 0,
            MajExpr::Maj(f, g, h) => 1 + f.maj_count() + g.maj_count() + h.maj_count(),
        }
    }

    /// Number of logic levels (majority depth) of the expression.
    pub fn depth(&self) -> usize {
        match self {
            MajExpr::Leaf(_) => 0,
            MajExpr::Maj(f, g, h) => 1 + f.depth().max(g.depth()).max(h.depth()),
        }
    }
}

/// The precomputed table of cheapest majority implementations, indexed by
/// truth table.
///
/// The table is populated with every function reachable by at most two
/// levels of majority gates over literals, mirroring the paper's "three
/// majority gates at the first level and one at the second level" mapping.
#[derive(Debug)]
pub struct MappingTable {
    best: HashMap<TruthTable3, MajExpr>,
}

impl MappingTable {
    /// Returns the process-wide table, building it on first use.
    pub fn global() -> &'static MappingTable {
        static TABLE: OnceLock<MappingTable> = OnceLock::new();
        TABLE.get_or_init(MappingTable::build)
    }

    /// Builds the table from scratch (exposed for tests; prefer
    /// [`MappingTable::global`]).
    pub fn build() -> MappingTable {
        let mut best: HashMap<TruthTable3, MajExpr> = HashMap::new();

        let consider = |expr: MajExpr, best: &mut HashMap<TruthTable3, MajExpr>| {
            let tt = expr.truth_table();
            match best.get(&tt) {
                Some(existing) if existing.jj_cost() <= expr.jj_cost() => {}
                _ => {
                    best.insert(tt, expr);
                }
            }
        };

        // Level 0: bare literals.
        for lit in Literal::ALL {
            consider(MajExpr::Leaf(lit), &mut best);
        }

        // Level 1: single majority gate over literals.
        let mut level1: Vec<MajExpr> = Vec::new();
        for &x in &Literal::ALL {
            for &y in &Literal::ALL {
                for &z in &Literal::ALL {
                    let expr = MajExpr::Maj(
                        Box::new(MajExpr::Leaf(x)),
                        Box::new(MajExpr::Leaf(y)),
                        Box::new(MajExpr::Leaf(z)),
                    );
                    level1.push(expr.clone());
                    consider(expr, &mut best);
                }
            }
        }
        // Deduplicate level-1 expressions by truth table, keeping the
        // cheapest, to bound the level-2 enumeration.
        let mut level1_best: HashMap<TruthTable3, MajExpr> = HashMap::new();
        for expr in level1 {
            let tt = expr.truth_table();
            match level1_best.get(&tt) {
                Some(existing) if existing.jj_cost() <= expr.jj_cost() => {}
                _ => {
                    level1_best.insert(tt, expr);
                }
            }
        }
        let mut operands: Vec<MajExpr> = Literal::ALL.iter().map(|l| MajExpr::Leaf(*l)).collect();
        operands.extend(level1_best.into_values());

        // Level 2: one majority gate over level-≤1 operands.
        for f in &operands {
            for g in &operands {
                for h in &operands {
                    let expr =
                        MajExpr::Maj(Box::new(f.clone()), Box::new(g.clone()), Box::new(h.clone()));
                    consider(expr, &mut best);
                }
            }
        }

        MappingTable { best }
    }

    /// Looks up the cheapest known majority implementation of `tt`.
    pub fn lookup(&self, tt: TruthTable3) -> Option<&MajExpr> {
        self.best.get(&tt)
    }

    /// Number of distinct 3-input functions the table can implement.
    pub fn coverage(&self) -> usize {
        self.best.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn truth_table_primitives() {
        let a = TruthTable3::VAR_A;
        let b = TruthTable3::VAR_B;
        let c = TruthTable3::VAR_C;
        assert_eq!(TruthTable3::and(a, b), TruthTable3(0b1000_1000));
        assert_eq!(TruthTable3::maj(a, b, TruthTable3::FALSE), TruthTable3::and(a, b));
        assert_eq!(TruthTable3::maj(a, b, TruthTable3::TRUE), TruthTable3::or(a, b));
        assert!(TruthTable3::maj(a, b, c).eval(true, true, false));
        assert!(!TruthTable3::maj(a, b, c).eval(true, false, false));
    }

    #[test]
    fn eval_matches_bit_encoding() {
        let f = TruthTable3(0b0110_1001); // parity of a, b, c (XNOR-ish pattern)
        for i in 0..8u8 {
            let (a, b, c) = (i & 1 != 0, i & 2 != 0, i & 4 != 0);
            assert_eq!(f.eval(a, b, c), f.0 & (1 << i) != 0);
        }
    }

    #[test]
    fn depends_on_detects_support() {
        let and_ab = TruthTable3::and(TruthTable3::VAR_A, TruthTable3::VAR_B);
        assert!(and_ab.depends_on(0));
        assert!(and_ab.depends_on(1));
        assert!(!and_ab.depends_on(2));
        assert!(!TruthTable3::TRUE.depends_on(0));
    }

    #[test]
    fn expr_cost_and_depth() {
        let a = MajExpr::Leaf(Literal::Var { index: 0, inverted: false });
        let b = MajExpr::Leaf(Literal::Var { index: 1, inverted: false });
        let zero = MajExpr::Leaf(Literal::Const(false));
        let and = MajExpr::Maj(Box::new(a), Box::new(b), Box::new(zero));
        assert_eq!(and.jj_cost(), 8);
        assert_eq!(and.maj_count(), 1);
        assert_eq!(and.depth(), 1);
        assert_eq!(and.truth_table(), TruthTable3(0b1000_1000));
    }

    #[test]
    fn mapping_table_contains_primary_gates() {
        let table = MappingTable::global();
        let a = TruthTable3::VAR_A;
        let b = TruthTable3::VAR_B;
        let c = TruthTable3::VAR_C;
        for tt in [
            TruthTable3::and(a, b),
            TruthTable3::or(a, b),
            TruthTable3::maj(a, b, c),
            a,
            a.not(),
            TruthTable3::and(a, b).not(), // NAND via inverted inputs / De Morgan
        ] {
            let expr = table.lookup(tt).unwrap_or_else(|| panic!("missing {tt:?}"));
            assert_eq!(expr.truth_table(), tt);
        }
    }

    #[test]
    fn mapping_table_recipes_are_consistent() {
        let table = MappingTable::global();
        for (tt, expr) in table.best.iter() {
            assert_eq!(expr.truth_table(), *tt, "recipe must realize its key");
            assert!(expr.depth() <= 2, "recipes are at most two majority levels");
        }
        // Two majority levels cover most but not all 256 functions (3-input
        // XOR/parity needs three levels); the table must cover the functions
        // AOI cones produce.
        assert!(table.coverage() >= 100, "coverage {} too small", table.coverage());
    }

    #[test]
    fn single_majority_functions_use_one_gate() {
        let table = MappingTable::global();
        let maj = TruthTable3::maj(TruthTable3::VAR_A, TruthTable3::VAR_B, TruthTable3::VAR_C);
        assert_eq!(table.lookup(maj).unwrap().maj_count(), 1);
        let and = TruthTable3::and(TruthTable3::VAR_A, TruthTable3::VAR_B);
        assert_eq!(table.lookup(and).unwrap().maj_count(), 1);
    }
}
