//! Synthesis error type.

use aqfp_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Errors produced by the synthesis stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The input netlist failed structural validation.
    InvalidInput(NetlistError),
    /// An internal rewrite produced an invalid netlist (a bug in the
    /// synthesis stage; reported rather than panicking so callers can save
    /// the offending input).
    InternalRewrite(NetlistError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::InvalidInput(e) => write!(f, "input netlist is invalid: {e}"),
            SynthesisError::InternalRewrite(e) => {
                write!(f, "synthesis rewrite produced an invalid netlist: {e}")
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::InvalidInput(e) | SynthesisError::InternalRewrite(e) => Some(e),
        }
    }
}

impl From<NetlistError> for SynthesisError {
    fn from(value: NetlistError) -> Self {
        SynthesisError::InvalidInput(value)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_netlist::GateId;

    #[test]
    fn display_includes_cause() {
        let err = SynthesisError::InvalidInput(NetlistError::Cycle { gate: GateId(3) });
        assert!(err.to_string().contains("cycle"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
