//! AOI → majority netlist conversion (§III-B.1 of the paper).
//!
//! The conversion walks the netlist from the outputs toward the inputs,
//! grows "three-input nets" (single-output cones whose internal gates have no
//! other fan-out and whose leaves are at most three independent signals),
//! computes each cone's truth table, and replaces the cone by the cheapest
//! majority-based implementation found in the precomputed
//! [`MappingTable`] — the paper's table-based
//! Karnaugh-map matching. A cone is only rewritten when the replacement uses
//! no more Josephson junctions than the original (ties are broken in favour
//! of fewer logic levels).

use std::collections::HashMap;

use aqfp_cells::{CellKind, Technology};
use aqfp_netlist::{traverse, GateId, Netlist};
use serde::{Deserialize, Serialize};

use crate::truth::{Literal, MajExpr, MappingTable, TruthTable3};

/// Statistics of one majority-conversion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MajConversionReport {
    /// Number of cones whose truth table was examined.
    pub cones_examined: usize,
    /// Number of cones actually rewritten.
    pub cones_converted: usize,
    /// Total JJ count before conversion.
    pub jj_before: usize,
    /// Total JJ count after conversion (and sweeping dead gates).
    pub jj_after: usize,
}

/// Converts an AOI netlist to a majority-based netlist.
///
/// Returns the rewritten netlist (dead gates swept) and a conversion report.
/// The conversion is function-preserving; the output may still contain
/// non-majority cells (e.g. XOR) where a majority implementation would be
/// more expensive.
pub fn convert_to_majority(
    netlist: &Netlist,
    library: &Technology,
) -> (Netlist, MajConversionReport) {
    let mut work = netlist.clone();
    let table = MappingTable::global();
    let mut report = MajConversionReport {
        jj_before: netlist.jj_count(library),
        ..MajConversionReport::default()
    };

    let order = match traverse::topological_order(&work) {
        Ok(order) => order,
        Err(_) => {
            report.jj_after = report.jj_before;
            return (work, report);
        }
    };

    // Gates consumed as cone internals; they are skipped as future roots and
    // swept at the end.
    let mut dead = vec![false; work.gate_count()];
    let mut fanout_count: Vec<usize> = count_fanouts(&work);

    for &root in order.iter().rev() {
        if root.index() >= dead.len() || dead[root.index()] {
            continue;
        }
        let kind = work.gate(root).kind;
        if !kind.is_logic() || kind.input_count() < 2 {
            continue;
        }
        let Some(cone) = grow_cone(&work, root, &dead, &fanout_count) else {
            continue;
        };
        report.cones_examined += 1;

        let tt = cone_truth_table(&work, &cone);
        let Some(recipe) = table.lookup(tt) else {
            continue;
        };
        let original_cost: usize =
            cone.internal.iter().map(|g| library.cell(work.gate(*g).kind).jj_count).sum();
        let better_cost = recipe.jj_cost() < original_cost;
        let same_cost_shallower =
            recipe.jj_cost() == original_cost && recipe.depth() < cone.internal.len();
        if !(better_cost || same_cost_shallower) {
            continue;
        }

        apply_recipe(&mut work, &cone, recipe);
        report.cones_converted += 1;
        for &g in &cone.internal {
            if g != cone.root {
                dead[g.index()] = true;
            }
        }
        // New gates were appended; extend the bookkeeping vectors and refresh
        // fan-out counts (the rewrite changed them).
        dead.resize(work.gate_count(), false);
        fanout_count = count_fanouts(&work);
    }

    let swept = work.pruned();
    report.jj_after = swept.jj_count(library);
    (swept, report)
}

/// A candidate cone: `root` plus the internal gates it absorbs and the (at
/// most three) leaf signals feeding it.
#[derive(Debug, Clone)]
struct Cone {
    root: GateId,
    internal: Vec<GateId>,
    leaves: Vec<GateId>,
}

fn count_fanouts(netlist: &Netlist) -> Vec<usize> {
    // Degrees only — materializing the full Vec<Vec> adjacency here made
    // every conversion pass pay one allocation per gate.
    aqfp_netlist::csr::out_degrees(netlist)
}

/// Grows a cone rooted at `root` following the paper's search: start from the
/// root's parents and keep absorbing single-fan-out logic parents while the
/// leaf set stays within three independent signals.
fn grow_cone(
    netlist: &Netlist,
    root: GateId,
    dead: &[bool],
    fanout_count: &[usize],
) -> Option<Cone> {
    const MAX_INTERNAL: usize = 5;

    let mut internal = vec![root];
    let mut leaves: Vec<GateId> = Vec::new();
    for &f in &netlist.gate(root).fanin {
        if !leaves.contains(&f) {
            leaves.push(f);
        }
    }
    if leaves.len() > 3 {
        return None;
    }

    loop {
        let mut expanded = false;
        for (i, &leaf) in leaves.iter().enumerate() {
            if internal.len() >= MAX_INTERNAL {
                break;
            }
            let gate = netlist.gate(leaf);
            let expandable = gate.kind.is_logic()
                && !dead[leaf.index()]
                && fanout_count[leaf.index()] == 1
                && !gate.fanin.is_empty();
            if !expandable {
                continue;
            }
            // Tentatively replace the leaf with its parents.
            let mut candidate: Vec<GateId> = leaves.clone();
            candidate.remove(i);
            for &f in &gate.fanin {
                if !candidate.contains(&f) && !internal.contains(&f) && f != leaf {
                    candidate.push(f);
                }
            }
            if candidate.len() > 3 {
                continue;
            }
            leaves = candidate;
            internal.push(leaf);
            expanded = true;
            break;
        }
        if !expanded {
            break;
        }
    }

    if internal.len() < 2 || leaves.is_empty() || leaves.len() > 3 {
        return None;
    }
    // Independence: no leaf may be a descendant of another leaf, otherwise
    // the cone's function is not a free function of its leaves.
    for (i, &a) in leaves.iter().enumerate() {
        for &b in leaves.iter().skip(i + 1) {
            if traverse::is_ancestor(netlist, a, b) || traverse::is_ancestor(netlist, b, a) {
                return None;
            }
        }
    }
    Some(Cone { root, internal, leaves })
}

/// Evaluates the cone's root as a function of its leaves.
fn cone_truth_table(netlist: &Netlist, cone: &Cone) -> TruthTable3 {
    let mut tt = 0u8;
    for assignment in 0u8..8 {
        let mut values: HashMap<GateId, bool> = HashMap::new();
        for (i, &leaf) in cone.leaves.iter().enumerate() {
            values.insert(leaf, assignment & (1 << i) != 0);
        }
        let value = eval_cone(netlist, cone.root, &mut values);
        if value {
            tt |= 1 << assignment;
        }
    }
    TruthTable3(tt)
}

fn eval_cone(netlist: &Netlist, gate: GateId, values: &mut HashMap<GateId, bool>) -> bool {
    if let Some(&v) = values.get(&gate) {
        return v;
    }
    let g = netlist.gate(gate);
    let inputs: Vec<bool> = g.fanin.iter().map(|&f| eval_cone(netlist, f, values)).collect();
    let v = aqfp_netlist::simulate::eval_kind(g.kind, &inputs);
    values.insert(gate, v);
    v
}

/// Rewrites the netlist so that `cone.root` implements `recipe` over the
/// cone's leaves. New helper gates (inverters, constants, first-level
/// majority gates) are appended; absorbed internal gates are left dangling
/// for the caller to sweep.
fn apply_recipe(netlist: &mut Netlist, cone: &Cone, recipe: &MajExpr) {
    let mut inverter_cache: HashMap<usize, GateId> = HashMap::new();
    let mut constant_cache: HashMap<bool, GateId> = HashMap::new();
    let root = cone.root;
    let suffix = root.index();

    match recipe {
        MajExpr::Leaf(lit) => {
            let (kind, fanin) = match lit {
                Literal::Var { index, inverted } => {
                    let leaf = cone.leaves[*index];
                    if *inverted {
                        (CellKind::Inverter, vec![leaf])
                    } else {
                        (CellKind::Buffer, vec![leaf])
                    }
                }
                Literal::Const(true) => (CellKind::Constant1, vec![]),
                Literal::Const(false) => (CellKind::Constant0, vec![]),
            };
            let gate = netlist.gate_mut(root);
            gate.kind = kind;
            gate.fanin = fanin;
        }
        MajExpr::Maj(f, g, h) => {
            let operands: Vec<GateId> = [f, g, h]
                .iter()
                .enumerate()
                .map(|(i, expr)| {
                    materialize(
                        netlist,
                        cone,
                        expr,
                        &mut inverter_cache,
                        &mut constant_cache,
                        suffix,
                        i,
                    )
                })
                .collect();
            let gate = netlist.gate_mut(root);
            gate.kind = CellKind::Majority3;
            gate.fanin = operands;
        }
    }
}

/// Creates (or reuses) the gate realizing `expr` and returns its id.
fn materialize(
    netlist: &mut Netlist,
    cone: &Cone,
    expr: &MajExpr,
    inverter_cache: &mut HashMap<usize, GateId>,
    constant_cache: &mut HashMap<bool, GateId>,
    suffix: usize,
    slot: usize,
) -> GateId {
    match expr {
        MajExpr::Leaf(Literal::Var { index, inverted: false }) => cone.leaves[*index],
        MajExpr::Leaf(Literal::Var { index, inverted: true }) => {
            if let Some(&id) = inverter_cache.get(index) {
                return id;
            }
            let id = netlist.add_gate(
                CellKind::Inverter,
                format!("majinv_{suffix}_{index}"),
                vec![cone.leaves[*index]],
            );
            inverter_cache.insert(*index, id);
            id
        }
        MajExpr::Leaf(Literal::Const(value)) => {
            if let Some(&id) = constant_cache.get(value) {
                return id;
            }
            let kind = if *value { CellKind::Constant1 } else { CellKind::Constant0 };
            let id = netlist.add_gate(kind, format!("majconst_{suffix}_{value}"), vec![]);
            constant_cache.insert(*value, id);
            id
        }
        MajExpr::Maj(f, g, h) => {
            let operands: Vec<GateId> = [f, g, h]
                .iter()
                .enumerate()
                .map(|(i, sub)| {
                    materialize(
                        netlist,
                        cone,
                        sub,
                        inverter_cache,
                        constant_cache,
                        suffix,
                        slot * 4 + i + 1,
                    )
                })
                .collect();
            netlist.add_gate(CellKind::Majority3, format!("majl1_{suffix}_{slot}"), operands)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_netlist::generators::{benchmark_circuit, kogge_stone_adder, Benchmark};
    use aqfp_netlist::simulate;

    fn library() -> Technology {
        Technology::mit_ll_sqf5ee()
    }

    /// AND(AND(a, b), c): a classic cone that a single majority cannot
    /// express, but two levels can (MAJ(MAJ(a,b,0), c, 0)).
    #[test]
    fn nested_and_cone_is_not_worsened() {
        let mut n = Netlist::new("and3");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(CellKind::And, "g1", vec![a, b]);
        let g2 = n.add_gate(CellKind::And, "g2", vec![g1, c]);
        n.add_output("y", g2);

        let (converted, report) = convert_to_majority(&n, &library());
        converted.validate().expect("valid");
        assert!(simulate::equivalent(&n, &converted).unwrap());
        assert!(report.jj_after <= report.jj_before);
    }

    /// OR(AND(a,b), AND(b,c)) | ... the carry function ab + bc + ca is the
    /// textbook majority example: five AOI gates collapse to cheaper
    /// majority logic.
    #[test]
    fn carry_cone_converts_to_majority() {
        let mut n = Netlist::new("carry");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(CellKind::And, "ab", vec![a, b]);
        let bc = n.add_gate(CellKind::And, "bc", vec![b, c]);
        let ca = n.add_gate(CellKind::And, "ca", vec![c, a]);
        let o1 = n.add_gate(CellKind::Or, "o1", vec![ab, bc]);
        let o2 = n.add_gate(CellKind::Or, "o2", vec![o1, ca]);
        n.add_output("carry", o2);

        let lib = library();
        let (converted, report) = convert_to_majority(&n, &lib);
        converted.validate().expect("valid");
        assert!(simulate::equivalent(&n, &converted).unwrap());
        assert!(
            report.jj_after < report.jj_before,
            "majority conversion should save JJs: {report:?}"
        );
        assert!(converted.count_kind(CellKind::Majority3) >= 1);
    }

    #[test]
    fn conversion_preserves_adder_function() {
        let n = kogge_stone_adder(4);
        let (converted, _) = convert_to_majority(&n, &library());
        converted.validate().expect("valid");
        assert!(simulate::equivalent(&n, &converted).unwrap(), "4-bit adder must stay exact");
    }

    #[test]
    fn conversion_never_increases_jj_count_on_benchmarks() {
        let lib = library();
        for b in [Benchmark::Adder8, Benchmark::Apc32, Benchmark::C432] {
            let n = benchmark_circuit(b);
            let (converted, report) = convert_to_majority(&n, &lib);
            converted.validate().expect("valid");
            assert!(
                report.jj_after <= report.jj_before,
                "{b}: JJ count must not grow ({report:?})"
            );
            assert!(
                simulate::equivalent_sampled(&n, &converted, 128, 0xC0FFEE).unwrap(),
                "{b}: conversion must preserve function"
            );
        }
    }

    #[test]
    fn cones_are_not_grown_through_multi_fanout_gates() {
        // g1 feeds both g2 and the output, so it cannot be absorbed.
        let mut n = Netlist::new("shared");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(CellKind::And, "g1", vec![a, b]);
        let g2 = n.add_gate(CellKind::Or, "g2", vec![g1, c]);
        n.add_output("y1", g1);
        n.add_output("y2", g2);

        let (converted, _) = convert_to_majority(&n, &library());
        converted.validate().expect("valid");
        assert!(simulate::equivalent(&n, &converted).unwrap());
        // g1 must still exist (its value is observable at y1).
        assert!(converted.primary_outputs().len() == 2);
    }
}
