//! Lint configuration: per-rule severity overrides and rule parameters.

use serde::{Deserialize, Serialize};

use crate::diagnostics::Severity;

/// Per-run lint policy, settable from the CLI (`--deny`/`--warn`/`--allow`)
/// or the flow configuration.
///
/// Override precedence is allow > deny > warn: a rule listed in `allow` never
/// fires, one in `deny` fires as an error, one in `warn` as a warning;
/// otherwise the rule's built-in default severity applies. The magic rule
/// name `all` matches every rule (`--deny all` turns every finding into an
/// error).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LintConfig {
    /// Rule ids forced to [`Severity::Error`].
    pub deny: Vec<String>,
    /// Rule ids forced to [`Severity::Warn`].
    pub warn: Vec<String>,
    /// Rule ids suppressed entirely.
    pub allow: Vec<String>,
    /// Fan-out above which `AQFP-W009` fires. `None` uses the default of
    /// `max_splitter_arity²` (16 for the paper's library): one full level of
    /// splitter tree, beyond which splitter depth starts to dominate delay.
    pub fanout_threshold: Option<usize>,
}

fn matches(list: &[String], rule: &str) -> bool {
    list.iter().any(|entry| entry == rule || entry == "all")
}

impl LintConfig {
    /// The effective severity for `rule`, or `None` when the rule is
    /// suppressed via `allow`.
    pub fn severity_for(&self, rule: &str, default: Severity) -> Option<Severity> {
        if matches(&self.allow, rule) {
            None
        } else if matches(&self.deny, rule) {
            Some(Severity::Error)
        } else if matches(&self.warn, rule) {
            Some(Severity::Warn)
        } else {
            Some(default)
        }
    }

    /// The fan-out threshold `AQFP-W009` uses given the flow's splitter
    /// arity.
    pub fn effective_fanout_threshold(&self, max_splitter_arity: usize) -> usize {
        self.fanout_threshold
            .unwrap_or_else(|| max_splitter_arity.saturating_mul(max_splitter_arity).max(2))
    }
}

/// The slice of the flow configuration the config-sanity rules inspect.
///
/// `aqfp-lint` sits below `superflow` in the crate graph, so the flow crate
/// populates this view from its own `FlowConfig` instead of the lint crate
/// depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSettings {
    /// Worker threads the flow will use (0 = auto-detect).
    pub threads: usize,
    /// Largest splitter arity synthesis may instantiate.
    pub max_splitter_arity: usize,
    /// DRC repair iteration budget (0 disables repair).
    pub max_drc_iterations: usize,
}

impl Default for FlowSettings {
    fn default() -> Self {
        // Mirrors `SynthesisOptions::default()` and the flow's paper defaults.
        Self { threads: 0, max_splitter_arity: 4, max_drc_iterations: 8 }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn severity_override_precedence() {
        let config = LintConfig {
            deny: vec!["AQFP-W009".into()],
            warn: vec!["AQFP-E005".into(), "AQFP-W009".into()],
            allow: vec!["AQFP-W006".into()],
            fanout_threshold: None,
        };
        // deny beats warn, allow beats everything, defaults pass through.
        assert_eq!(config.severity_for("AQFP-W009", Severity::Warn), Some(Severity::Error));
        assert_eq!(config.severity_for("AQFP-E005", Severity::Error), Some(Severity::Warn));
        assert_eq!(config.severity_for("AQFP-W006", Severity::Warn), None);
        assert_eq!(config.severity_for("AQFP-E001", Severity::Error), Some(Severity::Error));
    }

    #[test]
    fn the_all_wildcard_matches_every_rule() {
        let deny_all = LintConfig { deny: vec!["all".into()], ..LintConfig::default() };
        assert_eq!(deny_all.severity_for("AQFP-W006", Severity::Info), Some(Severity::Error));
        let allow_all = LintConfig { allow: vec!["all".into()], ..LintConfig::default() };
        assert_eq!(allow_all.severity_for("AQFP-E001", Severity::Error), None);
    }

    #[test]
    fn fanout_threshold_defaults_to_arity_squared() {
        let config = LintConfig::default();
        assert_eq!(config.effective_fanout_threshold(4), 16);
        assert_eq!(config.effective_fanout_threshold(2), 4);
        let fixed = LintConfig { fanout_threshold: Some(5), ..LintConfig::default() };
        assert_eq!(fixed.effective_fanout_threshold(4), 5);
    }

    #[test]
    fn config_serde_round_trips() {
        let config = LintConfig {
            deny: vec!["all".into()],
            warn: vec![],
            allow: vec!["AQFP-W008".into()],
            fanout_threshold: Some(9),
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: LintConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
