//! Flow-configuration sanity rules (`AQFP-E201`, `AQFP-W202`).

use crate::context::LintContext;
use crate::diagnostics::Severity;
use crate::rules::{Finding, Rule};

/// `AQFP-E201`: the flow configuration would make synthesis panic or emit an
/// illegal netlist.
///
/// `max_splitter_arity < 2` trips the splitter-insertion assertion outright;
/// `> 4` makes the balanced-tree builder hang more sinks on a `Splitter4`
/// than it has outputs, violating the fan-out rule it exists to enforce.
pub struct ConfigInvalid;

impl Rule for ConfigInvalid {
    fn id(&self) -> &'static str {
        "AQFP-E201"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn summary(&self) -> &'static str {
        "flow configuration would break synthesis"
    }

    fn needs_netlist(&self) -> bool {
        false
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let arity = ctx.settings.max_splitter_arity;
        let mut findings = Vec::new();
        if arity < 2 {
            findings.push(Finding::on(
                "max_splitter_arity",
                aqfp_netlist::SourceSpan::UNKNOWN,
                format!("max_splitter_arity is {arity}; splitters need at least 2 outputs"),
            ));
        } else if arity > 4 {
            findings.push(Finding::on(
                "max_splitter_arity",
                aqfp_netlist::SourceSpan::UNKNOWN,
                format!(
                    "max_splitter_arity is {arity}, but the largest library splitter has 4 \
                     outputs; splitter trees would overload Splitter4 cells"
                ),
            ));
        }
        findings
    }
}

/// `AQFP-W202`: the flow configuration is legal but degenerate — it silently
/// disables a stage or requests an implausible amount of parallelism.
pub struct ConfigDegenerate;

impl Rule for ConfigDegenerate {
    fn id(&self) -> &'static str {
        "AQFP-W202"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn summary(&self) -> &'static str {
        "flow configuration is legal but degenerate"
    }

    fn needs_netlist(&self) -> bool {
        false
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        if ctx.settings.max_drc_iterations == 0 {
            findings.push(Finding::on(
                "max_drc_iterations",
                aqfp_netlist::SourceSpan::UNKNOWN,
                "max_drc_iterations is 0: DRC violations will be reported but never repaired",
            ));
        }
        if ctx.settings.threads > 256 {
            findings.push(Finding::on(
                "threads",
                aqfp_netlist::SourceSpan::UNKNOWN,
                format!(
                    "thread count {} is implausibly large; oversubscription will slow the flow",
                    ctx.settings.threads
                ),
            ));
        }
        findings
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use aqfp_cells::Technology;

    use crate::{lint_setup, FlowSettings, LintConfig};

    fn run(settings: FlowSettings) -> crate::LintReport {
        lint_setup("d", &Technology::mit_ll_sqf5ee(), &settings, &LintConfig::default())
    }

    #[test]
    fn e201_rejects_out_of_range_splitter_arity() {
        for arity in [0, 1, 5, 64] {
            let report = run(FlowSettings { max_splitter_arity: arity, ..FlowSettings::default() });
            assert!(report.mentions("AQFP-E201"), "arity {arity}: {}", report.render());
            assert!(report.has_errors());
        }
        for arity in 2..=4 {
            let report = run(FlowSettings { max_splitter_arity: arity, ..FlowSettings::default() });
            assert!(!report.mentions("AQFP-E201"), "arity {arity}: {}", report.render());
        }
    }

    #[test]
    fn w202_flags_degenerate_but_legal_settings() {
        let report = run(FlowSettings { max_drc_iterations: 0, ..FlowSettings::default() });
        assert!(report.mentions("AQFP-W202"), "{}", report.render());
        assert!(!report.has_errors(), "{}", report.render());

        let report = run(FlowSettings { threads: 1024, ..FlowSettings::default() });
        assert!(report.mentions("AQFP-W202"), "{}", report.render());

        let report = run(FlowSettings::default());
        assert!(!report.mentions("AQFP-W202"), "{}", report.render());
    }
}
