//! Structural netlist rules (`AQFP-E001` … `AQFP-W009`).

use std::collections::HashMap;

use aqfp_netlist::parsers::PLACEHOLDER_PREFIX;
use aqfp_netlist::{GateId, Netlist};

use crate::context::LintContext;
use crate::diagnostics::Severity;
use crate::rules::{Finding, Rule};

/// How many findings a potentially unbounded rule reports before folding the
/// rest into a single summary finding.
const FINDING_CAP: usize = 25;

/// `AQFP-E001`: the netlist contains a combinational loop. AQFP synthesis
/// requires a DAG; a loop makes levelization, simulation and path balancing
/// all impossible.
pub struct CombinationalLoop;

impl Rule for CombinationalLoop {
    fn id(&self) -> &'static str {
        "AQFP-E001"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn summary(&self) -> &'static str {
        "combinational feedback loop (the flow requires a DAG)"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        let mut findings = Vec::new();
        // Iterative three-colour DFS over fan-in edges; a grey neighbour is a
        // back edge closing a loop, and `path` holds the loop's gates.
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        let mut colour = vec![WHITE; n.gate_count()];
        for root in n.ids() {
            if colour[root.index()] != WHITE {
                continue;
            }
            colour[root.index()] = GREY;
            let mut stack = vec![(root, 0usize)];
            let mut path = vec![root];
            while let Some(frame) = stack.last_mut() {
                let (id, pin) = *frame;
                let fanin = &n.gate(id).fanin;
                if pin < fanin.len() {
                    frame.1 += 1;
                    let child = fanin[pin];
                    match colour.get(child.index()).copied() {
                        Some(WHITE) => {
                            colour[child.index()] = GREY;
                            stack.push((child, 0));
                            path.push(child);
                        }
                        Some(GREY) if findings.len() < FINDING_CAP => {
                            findings.push(loop_finding(n, &path, child));
                        }
                        // Black (done) or dangling: nothing to do here.
                        _ => {}
                    }
                } else {
                    colour[id.index()] = 2;
                    stack.pop();
                    path.pop();
                }
            }
        }
        findings
    }
}

/// Renders the loop closed by the back edge `… -> head` in signal-flow order.
fn loop_finding(netlist: &Netlist, path: &[GateId], head: GateId) -> Finding {
    let start = path.iter().position(|&id| id == head).unwrap_or(0);
    // `path` follows fan-in (gate -> driver) edges; reverse it so the arrows
    // follow signal flow (driver -> sink).
    let mut names: Vec<&str> =
        path[start..].iter().rev().map(|&id| netlist.gate(id).name.as_str()).collect();
    if let Some(&first) = names.first() {
        names.push(first);
    }
    let head_gate = netlist.gate(head);
    Finding::on(
        head_gate.name.clone(),
        netlist.span(head),
        format!("combinational loop: {}", names.join(" -> ")),
    )
}

/// `AQFP-E002`: a net is referenced but never driven. Surfaces both the
/// constant-0 placeholders the recovering parsers inject and fan-in ids that
/// point outside the gate table.
pub struct UndrivenNet;

impl Rule for UndrivenNet {
    fn id(&self) -> &'static str {
        "AQFP-E002"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn summary(&self) -> &'static str {
        "a referenced net or declared output has no driver"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        let mut findings = Vec::new();
        for (id, gate) in n.iter() {
            if let Some(signal) = gate.name.strip_prefix(PLACEHOLDER_PREFIX) {
                findings.push(Finding::on(
                    signal,
                    n.span(id),
                    format!("net `{signal}` is never driven (parser bound it to constant 0)"),
                ));
            }
            for (pin, &driver) in gate.fanin.iter().enumerate() {
                if driver.index() >= n.gate_count() {
                    findings.push(Finding::on(
                        gate.name.clone(),
                        n.span(id),
                        format!(
                            "instance `{}` pin {pin} references gate id {} outside the netlist",
                            gate.name,
                            driver.index()
                        ),
                    ));
                }
            }
        }
        findings
    }
}

/// `AQFP-E003`: a gate's fan-in count does not match its cell kind's input
/// count.
pub struct ArityMismatch;

impl Rule for ArityMismatch {
    fn id(&self) -> &'static str {
        "AQFP-E003"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn summary(&self) -> &'static str {
        "gate fan-in count does not match its cell kind"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        n.iter()
            .filter(|(_, gate)| gate.fanin.len() != gate.kind.input_count())
            .map(|(id, gate)| {
                Finding::on(
                    gate.name.clone(),
                    n.span(id),
                    format!(
                        "`{}` ({:?}) has {} fan-in{}, the cell takes {}",
                        gate.name,
                        gate.kind,
                        gate.fanin.len(),
                        if gate.fanin.len() == 1 { "" } else { "s" },
                        gate.kind.input_count()
                    ),
                )
            })
            .collect()
    }
}

/// `AQFP-E004`: two gates share an instance name, which breaks name-based
/// lookup and netlist writer round-tripping.
pub struct DuplicateName;

impl Rule for DuplicateName {
    fn id(&self) -> &'static str {
        "AQFP-E004"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn summary(&self) -> &'static str {
        "two gates share one instance name"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        let mut first_seen: HashMap<&str, GateId> = HashMap::new();
        let mut findings = Vec::new();
        for (id, gate) in n.iter() {
            if let Some(&first) = first_seen.get(gate.name.as_str()) {
                findings.push(Finding::on(
                    gate.name.clone(),
                    n.span(id),
                    format!(
                        "instance name `{}` already used ({}, {})",
                        gate.name,
                        first,
                        n.span(first)
                    ),
                ));
            } else {
                first_seen.insert(gate.name.as_str(), id);
            }
        }
        findings
    }
}

/// `AQFP-E005`: the design declares no primary outputs, so every gate is
/// dead logic and the flow has nothing to produce.
pub struct NoOutputs;

impl Rule for NoOutputs {
    fn id(&self) -> &'static str {
        "AQFP-E005"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn summary(&self) -> &'static str {
        "the design has no primary outputs"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        if n.primary_outputs().is_empty() {
            vec![Finding::global("design has no primary outputs; the whole netlist is dead")]
        } else {
            Vec::new()
        }
    }
}

/// `AQFP-W006`: a primary input drives nothing. Usually a stale port left
/// behind by an edit; harmless but wasteful (inputs still occupy row slots).
pub struct FloatingInput;

impl Rule for FloatingInput {
    fn id(&self) -> &'static str {
        "AQFP-W006"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn summary(&self) -> &'static str {
        "a primary input drives no gate"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        n.primary_inputs()
            .iter()
            .filter(|&&pi| ctx.fanouts()[pi.index()].is_empty())
            .map(|&pi| {
                let gate = n.gate(pi);
                Finding::on(
                    gate.name.clone(),
                    n.span(pi),
                    format!("primary input `{}` drives nothing", gate.name),
                )
            })
            .collect()
    }
}

/// `AQFP-W007`: logic that no primary output depends on. Synthesis carries
/// dead gates through splitting, balancing and placement before pruning, so
/// large dead regions waste every downstream stage.
pub struct DeadLogic;

impl Rule for DeadLogic {
    fn id(&self) -> &'static str {
        "AQFP-W007"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn summary(&self) -> &'static str {
        "logic unreachable from every primary output"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        // With no outputs everything is trivially dead; AQFP-E005 owns that.
        // With dangling fan-ins the cone walk is unreliable; AQFP-E002 owns
        // that.
        if n.primary_outputs().is_empty() || ctx.has_dangling() {
            return Vec::new();
        }
        let mut live = vec![false; n.gate_count()];
        let mut queue: Vec<GateId> = n.primary_outputs().to_vec();
        for &po in n.primary_outputs() {
            live[po.index()] = true;
        }
        while let Some(id) = queue.pop() {
            for &driver in &n.gate(id).fanin {
                if !live[driver.index()] {
                    live[driver.index()] = true;
                    queue.push(driver);
                }
            }
        }
        let dead: Vec<GateId> = n
            .ids()
            .filter(|id| {
                let gate = n.gate(*id);
                !live[id.index()] && !gate.is_primary_input() && !gate.is_primary_output()
            })
            .collect();
        let mut findings: Vec<Finding> = dead
            .iter()
            .take(FINDING_CAP)
            .map(|&id| {
                let gate = n.gate(id);
                Finding::on(
                    gate.name.clone(),
                    n.span(id),
                    format!(
                        "`{}` ({:?}) is unreachable from every primary output",
                        gate.name, gate.kind
                    ),
                )
            })
            .collect();
        if dead.len() > FINDING_CAP {
            findings.push(Finding::global(format!(
                "… and {} more unreachable gates",
                dead.len() - FINDING_CAP
            )));
        }
        findings
    }
}

/// `AQFP-W008`: a primary output's fan-in cone contains no primary input, so
/// the output is a constant. Skipped for cones the recovering parser already
/// patched (their constant-ness is the undriven net's fault, `AQFP-E002`).
pub struct ConstantOutput;

impl Rule for ConstantOutput {
    fn id(&self) -> &'static str {
        "AQFP-W008"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn summary(&self) -> &'static str {
        "a primary output computes a constant"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        if ctx.has_dangling() {
            return Vec::new();
        }
        let mut findings = Vec::new();
        for &po in n.primary_outputs() {
            // Walk the cone; a patched placeholder disqualifies the cone, a
            // primary input proves it non-constant.
            let mut seen = vec![false; n.gate_count()];
            let mut queue = vec![po];
            seen[po.index()] = true;
            let mut has_input = false;
            let mut has_placeholder = false;
            while let Some(id) = queue.pop() {
                let gate = n.gate(id);
                has_input |= gate.is_primary_input();
                has_placeholder |= gate.name.starts_with(PLACEHOLDER_PREFIX);
                for &driver in &gate.fanin {
                    if !seen[driver.index()] {
                        seen[driver.index()] = true;
                        queue.push(driver);
                    }
                }
            }
            if !has_input && !has_placeholder {
                let gate = n.gate(po);
                findings.push(Finding::on(
                    gate.name.clone(),
                    n.span(po),
                    format!(
                        "output `{}` computes a constant (no primary input in its cone)",
                        gate.name
                    ),
                ));
            }
        }
        findings
    }
}

/// `AQFP-W009`: a signal's fan-out exceeds the configured threshold. The
/// flow legalizes any fan-out with a splitter tree, but past one full tree
/// level (`max_splitter_arity²` by default) the tree's depth starts to
/// dominate the path-balancing buffer bill.
pub struct ExcessiveFanout;

impl Rule for ExcessiveFanout {
    fn id(&self) -> &'static str {
        "AQFP-W009"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn summary(&self) -> &'static str {
        "fan-out exceeds the splitter-tree threshold"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        let arity = ctx.settings.max_splitter_arity.clamp(2, 4);
        let threshold = ctx.config.effective_fanout_threshold(arity);
        let mut findings = Vec::new();
        for (id, gate) in n.iter() {
            let fanout = ctx.fanouts()[id.index()].len();
            if fanout > threshold {
                let splitters = aqfp_synth::fanout::splitter_tree_size(fanout, arity);
                findings.push(Finding::on(
                    gate.name.clone(),
                    n.span(id),
                    format!(
                        "`{}` fans out to {fanout} sinks (threshold {threshold}); \
                         legalization will spend {splitters} splitters on it",
                        gate.name
                    ),
                ));
            }
        }
        findings
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use aqfp_cells::{CellKind, Technology};
    use aqfp_netlist::parsers::parse_verilog_recovering;
    use aqfp_netlist::Netlist;

    use crate::{lint, FlowSettings, LintConfig, LintReport};

    fn run(netlist: &Netlist) -> LintReport {
        lint(
            netlist.name(),
            netlist,
            &Technology::mit_ll_sqf5ee(),
            &FlowSettings::default(),
            &LintConfig::default(),
        )
    }

    /// A minimal design no rule fires on.
    fn clean_netlist() -> Netlist {
        let mut n = Netlist::new("clean");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(CellKind::And, "g", vec![a, b]);
        n.add_output("y", g);
        n
    }

    #[test]
    fn clean_design_has_no_findings() {
        let report = run(&clean_netlist());
        assert!(report.diagnostics.is_empty(), "{}", report.render());
    }

    #[test]
    fn e001_reports_loops_with_their_path() {
        let mut n = clean_netlist();
        let g = n.find_by_name("g").unwrap();
        let h = n.add_gate(CellKind::Inverter, "h", vec![g]);
        n.gate_mut(g).fanin[1] = h; // g -> h -> g
        let report = run(&n);
        assert!(report.mentions("AQFP-E001"), "{}", report.render());
        let diagnostic = report.diagnostics.iter().find(|d| d.rule == "AQFP-E001").unwrap();
        assert!(
            diagnostic.message.contains("g -> h -> g")
                || diagnostic.message.contains("h -> g -> h"),
            "loop path missing: {}",
            diagnostic.message
        );
        assert!(!run(&clean_netlist()).mentions("AQFP-E001"));
    }

    #[test]
    fn e002_reports_parser_patched_nets_and_dangling_ids() {
        let design = parse_verilog_recovering(
            "module m(a, y);\n input a;\n output y;\n wire u;\n and g(y, a, u);\nendmodule\n",
        )
        .unwrap();
        let report = run(&design.netlist);
        assert!(report.mentions("AQFP-E002"), "{}", report.render());
        let diagnostic = report.diagnostics.iter().find(|d| d.rule == "AQFP-E002").unwrap();
        assert_eq!(diagnostic.object.as_deref(), Some("u"));
        assert_eq!((diagnostic.line, diagnostic.column), (5, 14));

        let mut dangling = clean_netlist();
        let g = dangling.find_by_name("g").unwrap();
        dangling.gate_mut(g).fanin[0] = aqfp_netlist::GateId(999);
        let report = run(&dangling);
        assert!(report.mentions("AQFP-E002"), "{}", report.render());
    }

    #[test]
    fn e003_reports_arity_mismatches() {
        let mut n = clean_netlist();
        let a = n.find_by_name("a").unwrap();
        let g = n.find_by_name("g").unwrap();
        n.gate_mut(g).fanin.push(a); // And with 3 fan-ins
        let report = run(&n);
        assert!(report.mentions("AQFP-E003"), "{}", report.render());
    }

    #[test]
    fn e004_reports_duplicate_instance_names() {
        let mut n = clean_netlist();
        let a = n.find_by_name("a").unwrap();
        n.add_gate(CellKind::Buffer, "g", vec![a]);
        let report = run(&n);
        assert!(report.mentions("AQFP-E004"), "{}", report.render());
    }

    #[test]
    fn e005_reports_missing_outputs() {
        let mut n = Netlist::new("noout");
        let a = n.add_input("a");
        n.add_gate(CellKind::Buffer, "b", vec![a]);
        let report = run(&n);
        assert!(report.mentions("AQFP-E005"), "{}", report.render());
        // E005 owns this case: W007 must not drown it in per-gate findings.
        assert!(!report.mentions("AQFP-W007"), "{}", report.render());
    }

    #[test]
    fn w006_reports_floating_inputs() {
        let mut n = clean_netlist();
        n.add_input("unused");
        let report = run(&n);
        assert!(report.mentions("AQFP-W006"), "{}", report.render());
        let diagnostic = report.diagnostics.iter().find(|d| d.rule == "AQFP-W006").unwrap();
        assert_eq!(diagnostic.object.as_deref(), Some("unused"));
    }

    #[test]
    fn w007_reports_dead_logic() {
        let mut n = clean_netlist();
        let a = n.find_by_name("a").unwrap();
        n.add_gate(CellKind::Inverter, "dead", vec![a]);
        let report = run(&n);
        assert!(report.mentions("AQFP-W007"), "{}", report.render());
        let diagnostic = report.diagnostics.iter().find(|d| d.rule == "AQFP-W007").unwrap();
        assert_eq!(diagnostic.object.as_deref(), Some("dead"));
    }

    #[test]
    fn w008_reports_constant_outputs_but_not_patched_ones() {
        let mut n = Netlist::new("const");
        let zero = n.add_gate(CellKind::Constant0, "zero", vec![]);
        n.add_output("y", zero);
        let report = run(&n);
        assert!(report.mentions("AQFP-W008"), "{}", report.render());

        // An undriven output is patched to constant 0 by the parser; that is
        // E002's finding, not a W008 one.
        let design = parse_verilog_recovering(
            "module m(a, y);\n input a;\n output y;\n wire w;\n and g(w, a, a);\nendmodule\n",
        )
        .unwrap();
        let report = run(&design.netlist);
        assert!(report.mentions("AQFP-E002"), "{}", report.render());
        assert!(!report.mentions("AQFP-W008"), "{}", report.render());
    }

    #[test]
    fn w009_reports_fanout_above_threshold() {
        let mut n = Netlist::new("fan");
        let a = n.add_input("a");
        for i in 0..17 {
            let buf = n.add_gate(CellKind::Buffer, format!("b{i}"), vec![a]);
            n.add_output(format!("y{i}"), buf);
        }
        let report = run(&n);
        assert!(report.mentions("AQFP-W009"), "{}", report.render());
        let diagnostic = report.diagnostics.iter().find(|d| d.rule == "AQFP-W009").unwrap();
        assert!(diagnostic.message.contains("17 sinks"), "{}", diagnostic.message);

        // 16 sinks sits exactly at the default threshold: no finding.
        let mut n = Netlist::new("fan16");
        let a = n.add_input("a");
        for i in 0..16 {
            let buf = n.add_gate(CellKind::Buffer, format!("b{i}"), vec![a]);
            n.add_output(format!("y{i}"), buf);
        }
        assert!(!run(&n).mentions("AQFP-W009"));
    }
}
