//! Technology-compatibility rules (`AQFP-E101`, `AQFP-W102`).

use std::collections::BTreeSet;

use aqfp_cells::CellKind;

use crate::context::LintContext;
use crate::diagnostics::Severity;
use crate::rules::{Finding, Rule};

/// `AQFP-E101`: the design uses a cell kind the selected technology has no
/// geometry for. Synthesis would panic the first time it asks for the cell.
pub struct UnmappableKind;

impl Rule for UnmappableKind {
    fn id(&self) -> &'static str {
        "AQFP-E101"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn summary(&self) -> &'static str {
        "the design uses a cell kind the technology cannot map"
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let Some(n) = ctx.netlist else { return Vec::new() };
        let mut reported: BTreeSet<CellKind> = BTreeSet::new();
        let mut findings = Vec::new();
        for (id, gate) in n.iter() {
            if !ctx.technology.cells.contains_key(&gate.kind) && reported.insert(gate.kind) {
                findings.push(Finding::on(
                    gate.name.clone(),
                    n.span(id),
                    format!(
                        "cell kind {:?} (first used by `{}`) has no cell in technology `{}`",
                        gate.kind, gate.name, ctx.technology.name
                    ),
                ));
            }
        }
        findings
    }
}

/// `AQFP-W102`: a technology cell's geometry is off the process grid. The
/// legalizer snaps positions to the grid, so off-grid cell dimensions or pin
/// offsets accumulate alignment error across a row.
pub struct OffGridCell;

fn on_grid(value: f64, grid: f64) -> bool {
    let steps = (value / grid).round();
    (value - steps * grid).abs() <= grid * 1e-6
}

impl Rule for OffGridCell {
    fn id(&self) -> &'static str {
        "AQFP-W102"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn summary(&self) -> &'static str {
        "a technology cell's geometry is off the process grid"
    }

    fn needs_netlist(&self) -> bool {
        false
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding> {
        let grid = ctx.technology.rules.grid;
        if grid <= 0.0 {
            return vec![Finding::global(format!(
                "technology `{}` declares a non-positive grid pitch {grid}",
                ctx.technology.name
            ))];
        }
        let mut findings = Vec::new();
        for (kind, cell) in &ctx.technology.cells {
            let mut off = Vec::new();
            if !on_grid(cell.width, grid) {
                off.push(format!("width {}", cell.width));
            }
            if !on_grid(cell.height, grid) {
                off.push(format!("height {}", cell.height));
            }
            for pin in cell.input_pins.iter().chain(&cell.output_pins) {
                if !on_grid(pin.offset.x, grid) || !on_grid(pin.offset.y, grid) {
                    off.push(format!("pin `{}` at ({}, {})", pin.name, pin.offset.x, pin.offset.y));
                }
            }
            if !off.is_empty() {
                findings.push(Finding {
                    message: format!("cell {kind:?} is off the {grid} µm grid: {}", off.join(", ")),
                    object: Some(format!("{kind:?}")),
                    span: aqfp_netlist::SourceSpan::UNKNOWN,
                });
            }
        }
        findings
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use aqfp_cells::{CellKind, Technology};
    use aqfp_netlist::Netlist;

    use crate::{lint, lint_setup, FlowSettings, LintConfig};

    fn small_design() -> Netlist {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        let g = n.add_gate(CellKind::Buffer, "g", vec![a]);
        n.add_output("y", g);
        n
    }

    #[test]
    fn e101_reports_kinds_missing_from_the_technology() {
        let mut tech = Technology::mit_ll_sqf5ee();
        tech.cells.remove(&CellKind::Buffer);
        let report =
            lint("d", &small_design(), &tech, &FlowSettings::default(), &LintConfig::default());
        assert!(report.mentions("AQFP-E101"), "{}", report.render());
        let diagnostic = report.diagnostics.iter().find(|d| d.rule == "AQFP-E101").unwrap();
        assert!(diagnostic.message.contains("Buffer"), "{}", diagnostic.message);

        let clean = lint(
            "d",
            &small_design(),
            &Technology::mit_ll_sqf5ee(),
            &FlowSettings::default(),
            &LintConfig::default(),
        );
        assert!(!clean.mentions("AQFP-E101"), "{}", clean.render());
    }

    #[test]
    fn w102_reports_off_grid_cells_even_without_a_netlist() {
        let mut tech = Technology::mit_ll_sqf5ee();
        if let Some(cell) = tech.cells.get_mut(&CellKind::Buffer) {
            cell.width += 3.0; // 10 µm grid -> off-grid
        }
        let report = lint_setup("d", &tech, &FlowSettings::default(), &LintConfig::default());
        assert!(report.mentions("AQFP-W102"), "{}", report.render());

        let clean = lint_setup(
            "d",
            &Technology::mit_ll_sqf5ee(),
            &FlowSettings::default(),
            &LintConfig::default(),
        );
        assert!(!clean.mentions("AQFP-W102"), "{}", clean.render());
    }
}
