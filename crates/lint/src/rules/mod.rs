//! The rule registry.
//!
//! Every lint check implements [`Rule`] and is registered in [`all_rules`].
//! Rules are grouped by what they inspect:
//!
//! * [`graph`] — structural analysis of the parsed netlist (loops, undriven
//!   nets, dead logic, fan-out pressure);
//! * [`tech`] — compatibility between the design and the selected
//!   [`aqfp_cells::Technology`];
//! * [`flow`] — sanity of the flow configuration itself.

pub mod flow;
pub mod graph;
pub mod tech;

use aqfp_netlist::SourceSpan;

use crate::context::LintContext;
use crate::diagnostics::Severity;

/// One raw finding produced by a rule, before severity policy is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Human-readable description.
    pub message: String,
    /// The offending object (instance, net or option name), when one exists.
    pub object: Option<String>,
    /// Source location, [`SourceSpan::UNKNOWN`] when none applies.
    pub span: SourceSpan,
}

impl Finding {
    /// A finding with no associated object or location (whole-design issue).
    pub fn global(message: impl Into<String>) -> Self {
        Self { message: message.into(), object: None, span: SourceSpan::UNKNOWN }
    }

    /// A finding anchored to a named object at a source location.
    pub fn on(object: impl Into<String>, span: SourceSpan, message: impl Into<String>) -> Self {
        Self { message: message.into(), object: Some(object.into()), span }
    }
}

/// A lint check.
///
/// Implementations are stateless; everything they inspect comes through the
/// [`LintContext`]. See the crate-level documentation for a walkthrough of
/// adding a new rule.
pub trait Rule {
    /// Stable identifier, `AQFP-<E|W><nnn>`: `E`/`W` encodes the default
    /// severity, the number block encodes the group (0xx graph, 1xx
    /// technology, 2xx configuration). Ids are append-only: never reuse or
    /// renumber a published id.
    fn id(&self) -> &'static str;

    /// Default severity, overridable per run via
    /// [`crate::LintConfig::severity_for`].
    fn severity(&self) -> Severity;

    /// One-line description for the rule catalog (`superflow lint --rules`).
    fn summary(&self) -> &'static str;

    /// Whether the rule needs a parsed netlist. Rules that only inspect the
    /// technology or flow settings return `false` and also run in the
    /// netlist-free setup pass ([`crate::lint_setup`]).
    fn needs_netlist(&self) -> bool {
        true
    }

    /// Runs the check and returns every finding.
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Finding>;
}

/// Every registered rule, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(graph::CombinationalLoop),
        Box::new(graph::UndrivenNet),
        Box::new(graph::ArityMismatch),
        Box::new(graph::DuplicateName),
        Box::new(graph::NoOutputs),
        Box::new(graph::FloatingInput),
        Box::new(graph::DeadLogic),
        Box::new(graph::ConstantOutput),
        Box::new(graph::ExcessiveFanout),
        Box::new(tech::UnmappableKind),
        Box::new(tech::OffGridCell),
        Box::new(flow::ConfigInvalid),
        Box::new(flow::ConfigDegenerate),
    ]
}
