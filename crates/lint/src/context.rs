//! The shared context rules run against.

use aqfp_cells::Technology;
use aqfp_netlist::{GateId, Netlist};

use crate::config::{FlowSettings, LintConfig};

/// Everything a [`crate::rules::Rule`] may inspect, with shared analyses
/// (fan-out lists, dangling-reference detection) computed once per run.
pub struct LintContext<'a> {
    /// The parsed design. `None` in the netlist-free setup pass; rules with
    /// `needs_netlist() == true` are skipped in that case.
    pub netlist: Option<&'a Netlist>,
    /// The technology the flow will map onto.
    pub technology: &'a Technology,
    /// The flow-configuration slice the config-sanity rules inspect.
    pub settings: &'a FlowSettings,
    /// The active lint policy (rules may read parameters such as the
    /// fan-out threshold from it).
    pub config: &'a LintConfig,
    fanouts: Vec<Vec<GateId>>,
    has_dangling: bool,
}

impl<'a> LintContext<'a> {
    /// Builds the context, precomputing shared analyses.
    pub fn new(
        netlist: Option<&'a Netlist>,
        technology: &'a Technology,
        settings: &'a FlowSettings,
        config: &'a LintConfig,
    ) -> Self {
        let mut fanouts = Vec::new();
        let mut has_dangling = false;
        if let Some(n) = netlist {
            // Unlike `Netlist::fanouts`, tolerate fan-in ids that point past
            // the gate table: a rule reports those, so the context must
            // survive them.
            fanouts = vec![Vec::new(); n.gate_count()];
            for (id, gate) in n.iter() {
                for &driver in &gate.fanin {
                    match fanouts.get_mut(driver.index()) {
                        Some(sinks) => sinks.push(id),
                        None => has_dangling = true,
                    }
                }
            }
        }
        Self { netlist, technology, settings, config, fanouts, has_dangling }
    }

    /// Sink gates per driver (pin-level: a gate consuming one signal on two
    /// pins appears twice). Empty when no netlist is present.
    pub fn fanouts(&self) -> &[Vec<GateId>] {
        &self.fanouts
    }

    /// Whether any gate references a fan-in id outside the gate table.
    /// Graph rules that walk edges skip their analysis when this is set and
    /// leave the reporting to the undriven-net rule.
    pub fn has_dangling(&self) -> bool {
        self.has_dangling
    }
}
