//! Pre-flight static analysis for AQFP designs.
//!
//! SuperFlow's downstream stages (synthesis, placement, routing, DRC) assume
//! a well-formed input: an acyclic netlist whose every net is driven, whose
//! cell kinds the chosen technology can map, and a flow configuration that
//! will not trip a stage assertion hours into a batch run. This crate checks
//! all of that *before* any stage engine executes, as a rule-based lint pass
//! over the parsed [`Netlist`], the resolved [`Technology`] and the flow
//! settings.
//!
//! [`Netlist`]: aqfp_netlist::Netlist
//! [`Technology`]: aqfp_cells::Technology
//!
//! # Running the linter
//!
//! ```
//! use aqfp_cells::Technology;
//! use aqfp_lint::{lint, FlowSettings, LintConfig};
//! use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
//!
//! let netlist = benchmark_circuit(Benchmark::Adder8);
//! let technology = Technology::mit_ll_sqf5ee();
//! let report = lint(
//!     "adder8",
//!     &netlist,
//!     &technology,
//!     &FlowSettings::default(),
//!     &LintConfig::default(),
//! );
//! assert!(!report.has_errors());
//! ```
//!
//! [`lint`] runs every rule; [`lint_setup`] runs only the rules that do not
//! need a netlist (technology and configuration sanity), which is what the
//! flow session runs at construction time before a design is even loaded.
//!
//! # Adding a rule
//!
//! 1. Pick the next free id in the right block: `AQFP-E0xx`/`W0xx` for
//!    netlist-graph rules, `1xx` for technology compatibility, `2xx` for
//!    flow configuration. `E`/`W` encodes the *default* severity; users can
//!    override it per run, so the letter is documentation, not policy. Ids
//!    are append-only — never renumber or reuse one.
//! 2. Implement [`rules::Rule`] in the matching module
//!    ([`rules::graph`], [`rules::tech`], [`rules::flow`]). Keep `check`
//!    total: return findings instead of panicking, and degrade gracefully on
//!    malformed input (see how the graph rules consult
//!    [`LintContext::has_dangling`]). Anchor each
//!    [`Finding`](rules::Finding) to the offending object and its
//!    [`SourceSpan`](aqfp_netlist::SourceSpan) whenever one exists.
//! 3. Register the rule in [`rules::all_rules`] — the engine, the catalog
//!    and `superflow lint --rules` all derive from that one list.
//! 4. Add a unit test per behaviour: one fixture the rule fires on and one
//!    clean fixture it stays silent on.
//! 5. Document the rule in the README's rule-catalog table.

#![warn(clippy::unwrap_used)]

pub mod config;
pub mod context;
pub mod diagnostics;
pub mod rules;

pub use config::{FlowSettings, LintConfig};
pub use context::LintContext;
pub use diagnostics::{Diagnostic, LintReport, Severity};

use aqfp_cells::Technology;
use aqfp_netlist::Netlist;

/// One row of the rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable rule id, e.g. `AQFP-E001`.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// The catalog of registered rules, in stable order.
pub fn catalog() -> Vec<RuleInfo> {
    rules::all_rules()
        .iter()
        .map(|rule| RuleInfo { id: rule.id(), severity: rule.severity(), summary: rule.summary() })
        .collect()
}

/// Lints a parsed design against every registered rule.
pub fn lint(
    design: &str,
    netlist: &Netlist,
    technology: &Technology,
    settings: &FlowSettings,
    config: &LintConfig,
) -> LintReport {
    run(design, Some(netlist), technology, settings, config)
}

/// Lints only the technology and flow configuration — the rules with
/// `needs_netlist() == false`. Suitable at session-construction time, before
/// any design is loaded.
pub fn lint_setup(
    design: &str,
    technology: &Technology,
    settings: &FlowSettings,
    config: &LintConfig,
) -> LintReport {
    run(design, None, technology, settings, config)
}

fn run(
    design: &str,
    netlist: Option<&Netlist>,
    technology: &Technology,
    settings: &FlowSettings,
    config: &LintConfig,
) -> LintReport {
    let ctx = LintContext::new(netlist, technology, settings, config);
    let mut report = LintReport::clean(design);
    for rule in rules::all_rules() {
        if rule.needs_netlist() && netlist.is_none() {
            continue;
        }
        let Some(severity) = config.severity_for(rule.id(), rule.severity()) else {
            continue;
        };
        for finding in rule.check(&ctx) {
            report.diagnostics.push(Diagnostic {
                rule: rule.id().to_owned(),
                severity,
                message: finding.message,
                object: finding.object,
                line: finding.span.line,
                column: finding.span.column,
            });
        }
    }
    report.normalize();
    report
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_cells::CellKind;

    #[test]
    fn catalog_ids_are_unique_sorted_and_well_formed() {
        let catalog = catalog();
        assert!(catalog.len() >= 13, "expected a full rule set, got {}", catalog.len());
        let mut seen = std::collections::BTreeSet::new();
        for info in &catalog {
            assert!(seen.insert(info.id), "duplicate rule id {}", info.id);
        }
        for info in &catalog {
            let rest = info.id.strip_prefix("AQFP-").expect("ids start with AQFP-");
            let letter = rest.chars().next().expect("severity letter");
            assert!(matches!(letter, 'E' | 'W'), "{}", info.id);
            assert_eq!(rest.len(), 4, "{}", info.id);
            let expected = if letter == 'E' { Severity::Error } else { Severity::Warn };
            assert_eq!(info.severity, expected, "{}: letter/severity mismatch", info.id);
            assert!(!info.summary.is_empty());
        }
    }

    #[test]
    fn allow_suppresses_and_deny_escalates() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a");
        n.add_input("floating");
        let g = n.add_gate(CellKind::Buffer, "g", vec![a]);
        n.add_output("y", g);
        let technology = Technology::mit_ll_sqf5ee();
        let settings = FlowSettings::default();

        let default_report = lint("d", &n, &technology, &settings, &LintConfig::default());
        assert!(default_report.mentions("AQFP-W006"));
        assert!(!default_report.has_errors());

        let denied = LintConfig { deny: vec!["AQFP-W006".into()], ..LintConfig::default() };
        assert!(lint("d", &n, &technology, &settings, &denied).has_errors());

        let allowed = LintConfig { allow: vec!["AQFP-W006".into()], ..LintConfig::default() };
        assert!(lint("d", &n, &technology, &settings, &allowed).diagnostics.is_empty());
    }

    #[test]
    fn setup_lint_skips_netlist_rules() {
        // A pathological settings object: the setup pass must flag it even
        // though no netlist exists yet.
        let settings = FlowSettings { threads: 0, max_splitter_arity: 1, max_drc_iterations: 0 };
        let report =
            lint_setup("d", &Technology::mit_ll_sqf5ee(), &settings, &LintConfig::default());
        assert!(report.mentions("AQFP-E201"), "{}", report.render());
        assert!(report.mentions("AQFP-W202"), "{}", report.render());
        assert!(report.diagnostics.iter().all(|d| d.rule.starts_with("AQFP-E2")
            || d.rule.starts_with("AQFP-W2")
            || d.rule.starts_with("AQFP-W1")));
    }

    #[test]
    fn generator_benchmarks_are_lint_clean_of_errors() {
        use aqfp_netlist::generators::{benchmark_circuit, Benchmark};
        let technology = Technology::mit_ll_sqf5ee();
        let settings = FlowSettings::default();
        let config = LintConfig::default();
        for benchmark in Benchmark::ALL {
            let netlist = benchmark_circuit(benchmark);
            let report = lint(netlist.name(), &netlist, &technology, &settings, &config);
            assert!(!report.has_errors(), "{benchmark}: {}", report.render());
        }
    }
}
