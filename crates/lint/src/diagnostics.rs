//! Structured lint diagnostics.
//!
//! A lint run produces a [`LintReport`]: one [`Diagnostic`] per finding, each
//! carrying a stable rule identifier, a [`Severity`], the offending object's
//! name and its source location. Reports serialize losslessly through serde,
//! so `superflow lint --format json` output can be consumed by editors and CI
//! scripts.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::fmt;

use aqfp_netlist::SourceSpan;

/// How severe a finding is.
///
/// Ordered so that `Info < Warn < Error`; a report's overall severity is the
/// maximum over its diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but not necessarily wrong; flow proceeds.
    Warn,
    /// Definite defect; the flow refuses to start.
    Error,
}

impl Severity {
    /// The lowercase keyword used in JSON output and CLI flags.
    pub fn keyword(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses the CLI/JSON keyword back into a severity.
    pub fn from_keyword(keyword: &str) -> Option<Severity> {
        match keyword {
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

// Serialized as the bare keyword string ("error"/"warn"/"info") rather than
// the derive's variant spelling, so the JSON schema is stable even if the
// Rust-side names change.
impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.keyword().to_owned())
    }
}

impl Deserialize for Severity {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let text = value.as_str()?;
        Severity::from_keyword(text)
            .ok_or_else(|| SerdeError::new(format!("unknown severity `{text}`")))
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `AQFP-E001`.
    pub rule: String,
    /// Effective severity (after `--deny`/`--warn` overrides).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// The offending object (instance, net or option name), when one exists.
    pub object: Option<String>,
    /// 1-based source line (0 when the finding has no source location).
    pub line: usize,
    /// 1-based source column (0 when only the line is known).
    pub column: usize,
}

impl Diagnostic {
    /// The source location of the finding.
    pub fn span(&self) -> SourceSpan {
        SourceSpan::new(self.line, self.column)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)?;
        if self.line != 0 {
            write!(f, " ({})", self.span())?;
        }
        if let Some(object) = &self.object {
            write!(f, " [`{object}`]")?;
        }
        Ok(())
    }
}

/// The outcome of linting one design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// The linted design's name.
    pub design: String,
    /// All findings, ordered by severity (errors first), then rule id.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report for `design`.
    pub fn clean(design: impl Into<String>) -> Self {
        Self { design: design.into(), diagnostics: Vec::new() }
    }

    /// Sorts diagnostics into report order: severity descending, then rule
    /// id, then source position — a deterministic order for tests and CI.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.cmp(&b.rule))
                .then_with(|| (a.line, a.column).cmp(&(b.line, b.column)))
                .then_with(|| a.object.cmp(&b.object))
        });
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warn-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn)
    }

    /// Whether any finding is an error (the flow must refuse the design).
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether a given rule fired at least once.
    pub fn mentions(&self, rule: &str) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Renders the report as human-readable text, one line per finding plus
    /// a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for diagnostic in &self.diagnostics {
            out.push_str(&diagnostic.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        if self.diagnostics.is_empty() {
            out.push_str(&format!("{}: clean, no findings\n", self.design));
        } else {
            out.push_str(&format!(
                "{}: {} error{}, {} warning{}\n",
                self.design,
                errors,
                if errors == 1 { "" } else { "s" },
                warnings,
                if warnings == 1 { "" } else { "s" },
            ));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport {
            design: "bad".into(),
            diagnostics: vec![
                Diagnostic {
                    rule: "AQFP-W009".into(),
                    severity: Severity::Warn,
                    message: "fan-out 17 exceeds threshold 16".into(),
                    object: Some("a".into()),
                    line: 2,
                    column: 9,
                },
                Diagnostic {
                    rule: "AQFP-E001".into(),
                    severity: Severity::Error,
                    message: "combinational loop: g1 -> g2 -> g1".into(),
                    object: Some("g1".into()),
                    line: 4,
                    column: 3,
                },
            ],
        }
    }

    #[test]
    fn severity_orders_and_round_trips_keywords() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        for severity in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::from_keyword(severity.keyword()), Some(severity));
        }
        assert_eq!(Severity::from_keyword("warning"), Some(Severity::Warn));
        assert_eq!(Severity::from_keyword("fatal"), None);
    }

    #[test]
    fn report_serde_round_trips() {
        let report = sample_report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"rule\":\"AQFP-E001\""), "{json}");
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn normalize_puts_errors_first() {
        let mut report = sample_report();
        report.normalize();
        assert_eq!(report.diagnostics[0].rule, "AQFP-E001");
        assert!(report.has_errors());
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.warnings().count(), 1);
    }

    #[test]
    fn render_mentions_every_finding_and_totals() {
        let report = sample_report();
        let text = report.render();
        assert!(text.contains("error[AQFP-E001]"), "{text}");
        assert!(text.contains("warn[AQFP-W009]"), "{text}");
        assert!(text.contains("line 4, column 3"), "{text}");
        assert!(text.contains("bad: 1 error, 1 warning"), "{text}");
        assert!(LintReport::clean("ok").render().contains("clean"));
    }
}
