//! Stage cost model calibrated against the committed scaling benchmark.
//!
//! `BENCH_scale.json` records single-thread wall-clock, GDS size and peak
//! RSS for three generated designs (~1e4, ~1e5 and ~1e6 placed cells). Each
//! metric is modelled as a piecewise power law through those anchors: within
//! a segment the prediction interpolates linearly in log-log space, outside
//! the anchor range it extrapolates with the nearest segment's exponent.
//! Synthesis and DRC have no committed anchors; they are predicted as fixed
//! fractions of placement and routing respectively (documented in the
//! README's calibration notes) — rough, but the batch scheduler's 8× budget
//! slack absorbs the error.

use crate::report::CostForecast;

/// Placed-cell counts of the calibration anchors (`BENCH_scale.json`).
const ANCHOR_CELLS: [f64; 3] = [8_849.0, 106_606.0, 1_065_594.0];
/// Placement seconds at the anchors.
const ANCHOR_PLACE_S: [f64; 3] = [0.177_038_81, 0.943_810_408, 16.926_196_218];
/// Routing seconds at the anchors.
const ANCHOR_ROUTE_S: [f64; 3] = [0.072_830_571, 3.505_733_129, 101.663_997_69];
/// GDS streaming seconds at the anchors.
const ANCHOR_GDS_S: [f64; 3] = [0.005_362_966, 0.151_250_638, 1.536_813_952];
/// GDS stream bytes at the anchors.
const ANCHOR_GDS_BYTES: [f64; 3] = [3_836_822.0, 78_309_308.0, 985_762_692.0];
/// Peak resident set size (KiB) at the anchors.
const ANCHOR_RSS_KB: [f64; 3] = [10_652.0, 110_528.0, 1_154_088.0];

/// Synthesis wall-clock as a fraction of predicted placement wall-clock.
const SYNTH_PLACE_RATIO: f64 = 0.5;
/// DRC/repair wall-clock as a fraction of predicted routing wall-clock.
const CHECK_ROUTE_RATIO: f64 = 0.25;

/// Piecewise power-law interpolation through the three anchors.
fn power_law(cells: f64, metric: &[f64; 3]) -> f64 {
    let cells = cells.max(1.0);
    let x = cells.ln();
    let xs = [ANCHOR_CELLS[0].ln(), ANCHOR_CELLS[1].ln(), ANCHOR_CELLS[2].ln()];
    let ys = [metric[0].ln(), metric[1].ln(), metric[2].ln()];
    // Pick the segment: below the middle anchor use [0,1], else [1,2]; this
    // also extrapolates beyond either end with the boundary exponent.
    let (x0, x1, y0, y1) =
        if x <= xs[1] { (xs[0], xs[1], ys[0], ys[1]) } else { (xs[1], xs[2], ys[1], ys[2]) };
    let slope = (y1 - y0) / (x1 - x0);
    (y0 + slope * (x - x0)).exp()
}

/// Predicts stage costs for a design expected to place `cells` cells.
pub(crate) fn forecast(cells: usize) -> CostForecast {
    let cells = cells as f64;
    let placement_s = power_law(cells, &ANCHOR_PLACE_S);
    let routing_s = power_law(cells, &ANCHOR_ROUTE_S);
    let gds_s = power_law(cells, &ANCHOR_GDS_S);
    CostForecast {
        synthesis_s: placement_s * SYNTH_PLACE_RATIO,
        placement_s,
        routing_s,
        // GDS streaming happens inside the check/export stage budget.
        check_s: routing_s * CHECK_ROUTE_RATIO + gds_s,
        gds_bytes: power_law(cells, &ANCHOR_GDS_BYTES),
        peak_rss_kb: power_law(cells, &ANCHOR_RSS_KB),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[derive(serde::Deserialize)]
    struct ScaleFile {
        rows: Vec<ScaleRow>,
    }

    #[derive(serde::Deserialize)]
    struct ScaleRow {
        placed_cells: f64,
        place_s: f64,
        route_s: f64,
        gds_s: f64,
        gds_bytes: f64,
        peak_rss_kb: f64,
    }

    /// The embedded anchors must match the committed benchmark trajectory;
    /// re-run the scale bench and update both together.
    #[test]
    fn anchors_match_committed_bench_scale_json() {
        let raw = include_str!("../../../BENCH_scale.json");
        let file: ScaleFile = serde_json::from_str(raw).unwrap();
        assert_eq!(file.rows.len(), 3);
        for (i, row) in file.rows.iter().enumerate() {
            assert_eq!(row.placed_cells, ANCHOR_CELLS[i], "cells anchor {i}");
            assert!((row.place_s - ANCHOR_PLACE_S[i]).abs() < 1e-9, "place anchor {i}");
            assert!((row.route_s - ANCHOR_ROUTE_S[i]).abs() < 1e-9, "route anchor {i}");
            assert!((row.gds_s - ANCHOR_GDS_S[i]).abs() < 1e-9, "gds anchor {i}");
            assert_eq!(row.gds_bytes, ANCHOR_GDS_BYTES[i], "bytes anchor {i}");
            assert_eq!(row.peak_rss_kb, ANCHOR_RSS_KB[i], "rss anchor {i}");
        }
    }

    #[test]
    fn predictions_reproduce_the_anchors() {
        for i in 0..3 {
            let forecast = forecast(ANCHOR_CELLS[i] as usize);
            assert!((forecast.placement_s - ANCHOR_PLACE_S[i]).abs() / ANCHOR_PLACE_S[i] < 1e-6);
            assert!((forecast.routing_s - ANCHOR_ROUTE_S[i]).abs() / ANCHOR_ROUTE_S[i] < 1e-6);
            assert!((forecast.gds_bytes - ANCHOR_GDS_BYTES[i]).abs() / ANCHOR_GDS_BYTES[i] < 1e-6);
            assert!((forecast.peak_rss_kb - ANCHOR_RSS_KB[i]).abs() / ANCHOR_RSS_KB[i] < 1e-6);
        }
    }

    #[test]
    fn predictions_are_monotonic_in_cell_count() {
        let mut previous = forecast(10);
        for cells in [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
            let next = forecast(cells);
            assert!(next.total_s() > previous.total_s(), "{cells} cells");
            assert!(next.peak_rss_kb > previous.peak_rss_kb, "{cells} cells");
            assert!(next.gds_bytes > previous.gds_bytes, "{cells} cells");
            previous = next;
        }
    }

    #[test]
    fn extrapolation_stays_finite_and_positive() {
        for cells in [0, 1, 5, 50_000_000] {
            let forecast = forecast(cells);
            assert!(forecast.total_s().is_finite() && forecast.total_s() > 0.0);
            assert!(forecast.peak_rss_kb.is_finite() && forecast.peak_rss_kb > 0.0);
        }
    }
}
