//! Effective-value abstract interpretation over the gate DAG.
//!
//! The predictor never runs the synthesis engine, so everything it claims as
//! a *lower bound* must hold for whatever the optimiser does. The key
//! abstraction is a per-gate *effective value* under ternary constant
//! propagation plus same-literal simplification:
//!
//! * [`Net::Const`] — the gate provably computes a constant; synthesis is
//!   free to collapse it and everything that depended on it.
//! * [`Net::Wire`] — the gate provably forwards another signal (possibly
//!   inverted); it may survive as a buffer/inverter cell but cannot be
//!   counted on to.
//! * gates that stay *opaque* define a fresh signal source.
//!
//! From the resolved graph the pass derives the *surviving set*: opaque
//! gates that are (a) reachable from a primary output through resolved
//! edges and (b) either feed a primary output or have at least two distinct
//! effective consumers. Majority conversion only absorbs single-fan-out
//! gates into cones and rewrites cone roots in place, so every surviving
//! gate yields at least one placed cell — the basis for every `min` field.
//! Estimates (`est`) and ceilings (`max`) reuse the same graph without the
//! soundness restrictions; ceilings add slack for majority-recipe deepening
//! and splitter-tree growth.

use aqfp_cells::CellKind;
use aqfp_netlist::traverse::topological_order;
use aqfp_netlist::Netlist;
use aqfp_synth::fanout::splitter_tree_size;

use crate::report::{Interval, OutputDepth, StructureBounds};

/// Levels a majority recipe may deepen a cone root by (the recipe table's
/// worst case), used only for the `max` ceilings.
const RECIPE_DEPTH_SLACK: usize = 3;

/// Cell-count growth factor for majority conversion, used only for the
/// `max` ceilings: conversion shrinks netlists in practice, but a recipe may
/// locally replace a cone with a slightly larger majority network.
const RECIPE_CELL_SLACK: usize = 2;

/// Resolved effective value of one gate's output signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Net {
    /// Provably constant.
    Const(bool),
    /// Provably the (possibly inverted) signal of `source`.
    Wire { source: usize, inverted: bool },
}

/// Outcome of simplifying one logic gate.
enum Simplified {
    /// The gate reduces to a known value.
    Known(Net),
    /// The gate computes a fresh signal.
    Opaque,
}

fn negate(net: Net) -> Net {
    match net {
        Net::Const(b) => Net::Const(!b),
        Net::Wire { source, inverted } => Net::Wire { source, inverted: !inverted },
    }
}

/// N-ary AND over resolved values (OR via De Morgan in the caller).
fn and_like(inputs: &[Net]) -> Simplified {
    let mut lits: Vec<(usize, bool)> = Vec::new();
    for value in inputs {
        match *value {
            Net::Const(false) => return Simplified::Known(Net::Const(false)),
            Net::Const(true) => {}
            Net::Wire { source, inverted } => {
                if lits.contains(&(source, !inverted)) {
                    // x AND NOT x.
                    return Simplified::Known(Net::Const(false));
                }
                if !lits.contains(&(source, inverted)) {
                    lits.push((source, inverted));
                }
            }
        }
    }
    match lits.as_slice() {
        [] => Simplified::Known(Net::Const(true)),
        [(source, inverted)] => {
            Simplified::Known(Net::Wire { source: *source, inverted: *inverted })
        }
        _ => Simplified::Opaque,
    }
}

fn or_like(inputs: &[Net]) -> Simplified {
    let negated: Vec<Net> = inputs.iter().map(|v| negate(*v)).collect();
    match and_like(&negated) {
        Simplified::Known(net) => Simplified::Known(negate(net)),
        Simplified::Opaque => Simplified::Opaque,
    }
}

/// N-ary XOR folded left-to-right; any unresolvable pair makes it opaque.
fn xor_like(inputs: &[Net]) -> Simplified {
    let mut acc = Net::Const(false);
    for value in inputs {
        acc = match (acc, *value) {
            (Net::Const(a), Net::Const(b)) => Net::Const(a != b),
            (Net::Const(false), wire) | (wire, Net::Const(false)) => wire,
            (Net::Const(true), wire) | (wire, Net::Const(true)) => negate(wire),
            (Net::Wire { source: a, inverted: ia }, Net::Wire { source: b, inverted: ib }) => {
                if a == b {
                    Net::Const(ia != ib)
                } else {
                    return Simplified::Opaque;
                }
            }
        };
    }
    Simplified::Known(acc)
}

/// Three-input majority with constant and duplicate/complement folding.
fn maj_like(inputs: &[Net]) -> Simplified {
    let [a, b, c] = match inputs {
        [a, b, c] => [*a, *b, *c],
        _ => return Simplified::Opaque,
    };
    // maj(x, x, y) = x and maj(x, NOT x, y) = y.
    for (i, j, k) in [(0, 1, 2), (0, 2, 1), (1, 2, 0)] {
        let (x, y, z) = ([a, b, c][i], [a, b, c][j], [a, b, c][k]);
        if x == y {
            return Simplified::Known(x);
        }
        if x == negate(y) {
            return Simplified::Known(z);
        }
    }
    // maj(const, x, y) reduces to AND or OR of the other two.
    for (i, j, k) in [(0, 1, 2), (1, 0, 2), (2, 0, 1)] {
        if let Net::Const(value) = [a, b, c][i] {
            let rest = [[a, b, c][j], [a, b, c][k]];
            return if value { or_like(&rest) } else { and_like(&rest) };
        }
    }
    Simplified::Opaque
}

/// Smallest `t` with `base^t >= value` (splitter-tree depth bound).
fn ceil_log(base: usize, value: usize) -> usize {
    let base = base.max(2);
    let mut depth = 0;
    let mut reach = 1usize;
    while reach < value {
        reach = reach.saturating_mul(base);
        depth += 1;
    }
    depth
}

/// Splitter-tree depth the estimator assumes for an effective fan-out.
fn split_depth_est(fanout: usize, arity: usize) -> usize {
    if fanout <= 1 {
        0
    } else {
        ceil_log(arity, fanout)
    }
}

/// Fewest splitter cells that can legalise `fanout` sinks with `arity`-ary
/// splitters: an optimal tree adds `arity - 1` net outputs per splitter.
fn min_splitters_for(fanout: usize, arity: usize) -> usize {
    if fanout <= 1 {
        0
    } else {
        (fanout - 1).div_ceil(arity.max(2) - 1)
    }
}

/// The structural analysis: everything later passes need.
pub(crate) struct Analysis {
    /// The derived structural bounds.
    pub structure: StructureBounds,
    /// Per-gate: whether the gate provably survives synthesis as a cell.
    pub surviving: Vec<bool>,
    /// Per-gate estimated post-synthesis phase level (signal sources only).
    pub est_level: Vec<usize>,
    /// Estimated final phase depth (last row index).
    pub est_depth: usize,
    /// Contracted signal edges as `(source gate, source out level, sink
    /// level)` — the nets the congestion pass spreads over channels.
    pub edges: Vec<(usize, usize, usize)>,
}

/// Runs the abstract interpretation. Returns `None` when the netlist has a
/// combinational cycle (plain lint reports that defect).
pub(crate) fn analyse(netlist: &Netlist, max_splitter_arity: usize) -> Option<Analysis> {
    let order = topological_order(netlist).ok()?;
    let n = netlist.gate_count();
    let arity = max_splitter_arity.max(2);

    // Pass 1: effective values, opaqueness and resolved dependencies.
    let mut values: Vec<Net> = vec![Net::Const(false); n];
    let mut opaque = vec![false; n];
    let mut is_pi = vec![false; n];
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &id in &order {
        let i = id.index();
        let gate = netlist.gate(id);
        let fanin: Vec<Net> =
            gate.fanin.iter().filter(|f| f.index() < n).map(|f| values[f.index()]).collect();
        let simplified = match gate.kind {
            CellKind::Input => {
                is_pi[i] = true;
                values[i] = Net::Wire { source: i, inverted: false };
                continue;
            }
            CellKind::Constant0 => Simplified::Known(Net::Const(false)),
            CellKind::Constant1 => Simplified::Known(Net::Const(true)),
            CellKind::Buffer | CellKind::Splitter2 | CellKind::Splitter3 | CellKind::Splitter4 => {
                match fanin.first() {
                    Some(net) => Simplified::Known(*net),
                    None => Simplified::Opaque,
                }
            }
            CellKind::Inverter => match fanin.first() {
                Some(net) => Simplified::Known(negate(*net)),
                None => Simplified::Opaque,
            },
            CellKind::Output => {
                values[i] = *fanin.first().unwrap_or(&Net::Const(false));
                continue;
            }
            CellKind::And => and_like(&fanin),
            CellKind::Nand => match and_like(&fanin) {
                Simplified::Known(net) => Simplified::Known(negate(net)),
                Simplified::Opaque => Simplified::Opaque,
            },
            CellKind::Or => or_like(&fanin),
            CellKind::Nor => match or_like(&fanin) {
                Simplified::Known(net) => Simplified::Known(negate(net)),
                Simplified::Opaque => Simplified::Opaque,
            },
            CellKind::Xor => xor_like(&fanin),
            CellKind::Majority3 => maj_like(&fanin),
        };
        match simplified {
            Simplified::Known(net) => values[i] = net,
            Simplified::Opaque => {
                opaque[i] = true;
                values[i] = Net::Wire { source: i, inverted: false };
                let mut sources: Vec<usize> = fanin
                    .iter()
                    .filter_map(|net| match net {
                        Net::Wire { source, .. } => Some(*source),
                        Net::Const(_) => None,
                    })
                    .collect();
                sources.sort_unstable();
                sources.dedup();
                deps[i] = sources;
            }
        }
    }

    // Pass 2: reachability — opaque ancestors of primary outputs through
    // resolved edges (anything else may be swept by `pruned()`).
    let mut reached = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for &po in netlist.primary_outputs() {
        if let Net::Wire { source, .. } = values[po.index()] {
            if opaque[source] && !reached[source] {
                reached[source] = true;
                stack.push(source);
            }
        }
    }
    while let Some(g) = stack.pop() {
        for &dep in &deps[g] {
            if opaque[dep] && !reached[dep] {
                reached[dep] = true;
                stack.push(dep);
            }
        }
    }

    // Pass 3: effective consumers over the reachable graph. Primary outputs
    // are consumers too (their terminal must be fed).
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut feeds_po = vec![false; n];
    for (i, gate_deps) in deps.iter().enumerate() {
        if opaque[i] && reached[i] {
            for &dep in gate_deps {
                consumers[dep].push(i);
            }
        }
    }
    for &po in netlist.primary_outputs() {
        if let Net::Wire { source, .. } = values[po.index()] {
            consumers[source].push(po.index());
            feeds_po[source] = true;
        }
    }

    // Surviving set: reachable opaque gates that feed a primary output or
    // have two or more reachable consumers (such a gate can never be
    // absorbed as a cone internal, which requires fan-out exactly one).
    let surviving: Vec<bool> = (0..n)
        .map(|i| opaque[i] && reached[i] && (feeds_po[i] || consumers[i].len() >= 2))
        .collect();

    // Pass 4: endpoint contraction. A non-surviving gate has exactly one
    // relevant consumer; walking down the chain finds the surviving cell (or
    // output terminal) its signal ultimately feeds. Two consumers of the
    // same source that end in the same cell merge into one sink there.
    let is_output = |i: usize| netlist.gate(aqfp_netlist::GateId(i)).kind == CellKind::Output;
    let mut endpoint: Vec<usize> = vec![usize::MAX; n];
    for &id in order.iter().rev() {
        let i = id.index();
        if !(opaque[i] && reached[i]) {
            continue;
        }
        endpoint[i] = if surviving[i] {
            i
        } else {
            // Exactly one reachable consumer (else it would survive).
            match consumers[i].first() {
                Some(&c) if surviving[c] || is_output(c) => c,
                Some(&c) => endpoint[c],
                None => usize::MAX,
            }
        };
    }
    let mut cons = vec![0usize; n];
    for i in 0..n {
        if !(is_pi[i] || (opaque[i] && reached[i])) {
            continue;
        }
        let mut ends: Vec<usize> = consumers[i]
            .iter()
            .map(|&c| if surviving[c] || is_output(c) { c } else { endpoint[c] })
            .filter(|&e| e != usize::MAX)
            .collect();
        ends.sort_unstable();
        ends.dedup();
        cons[i] = ends.len();
    }

    // Pass 5: sound minimum depth — surviving gates on any resolved
    // dependency chain occupy distinct, increasing phase levels.
    let mut min_depth = vec![0usize; n];
    for &id in &order {
        let i = id.index();
        if !(opaque[i] && reached[i]) {
            continue;
        }
        let below = deps[i].iter().map(|&d| min_depth[d]).max().unwrap_or(0);
        min_depth[i] = below + usize::from(surviving[i]);
    }

    // Pass 6: ceiling levels over the *raw* graph — every gate kept, plus
    // recipe-deepening and splitter-tree slack per edge.
    let raw_fanouts = netlist.fanouts();
    let mut max_level = vec![0usize; n];
    for &id in &order {
        let i = id.index();
        let gate = netlist.gate(id);
        if matches!(gate.kind, CellKind::Input | CellKind::Constant0 | CellKind::Constant1) {
            continue;
        }
        max_level[i] = gate
            .fanin
            .iter()
            .filter(|f| f.index() < n)
            .map(|f| {
                let d = f.index();
                let fanout = raw_fanouts[d].len();
                max_level[d] + RECIPE_DEPTH_SLACK + ceil_log(arity, 3 * fanout + 3)
            })
            .max()
            .unwrap_or(0);
    }

    // Pass 7: estimated levels over the contracted graph: surviving gates
    // advance one phase, absorbed gates are transparent, splitter trees add
    // their depth below high-fan-out sources.
    let mut est_level = vec![0usize; n];
    let lv_out = |est_level: &[usize], cons: &[usize], s: usize| {
        est_level[s] + split_depth_est(cons[s], arity)
    };
    for &id in &order {
        let i = id.index();
        if !(opaque[i] && reached[i]) {
            continue;
        }
        let below = deps[i].iter().map(|&d| lv_out(&est_level, &cons, d)).max().unwrap_or(0);
        est_level[i] = below + usize::from(surviving[i]);
    }

    // Per-output depth intervals and the alignment level bounds.
    let outputs = netlist.primary_outputs();
    let mut po_depths = Vec::new();
    let mut align_min = 0usize; // sound lower bound on the common PO level
    let mut align_est = 0usize;
    let mut align_max = 0usize;
    let mut po_levels: Vec<(usize, usize)> = Vec::new(); // (est, max) per PO
    for &po in outputs {
        let i = po.index();
        let (lo, est, hi) = match values[i] {
            Net::Const(_) => (1, 1, 1),
            Net::Wire { source, .. } => {
                let lo = min_depth[source] + 1;
                let est = lv_out(&est_level, &cons, source) + 1;
                let hi = max_level[source] + 1;
                (lo, est, hi)
            }
        };
        align_min = align_min.max(lo);
        align_est = align_est.max(est);
        align_max = align_max.max(hi);
        po_levels.push((est, hi));
        if po_depths.len() < StructureBounds::PO_DEPTH_CAP {
            po_depths.push(OutputDepth {
                output: netlist.gate(po).name.clone(),
                min_level: lo,
                max_level: hi,
            });
        }
    }
    let po_depths_truncated = outputs.len() > po_depths.len();

    // Buffer bounds. Sound minimum: balancing aligns every output to a
    // common level of at least `align_min`; an output whose pre-alignment
    // level is provably at most `hi` therefore receives >= align_min - hi
    // buffers. Estimate: per-edge level gaps plus output alignment.
    let min_buffers: usize = po_levels.iter().map(|&(_, hi)| align_min.saturating_sub(hi)).sum();
    let mut est_buffers: usize =
        po_levels.iter().map(|&(est, _)| align_est.saturating_sub(est)).sum();
    let mut max_buffers: usize =
        po_levels.iter().map(|&(_, hi)| align_max.saturating_sub(hi)).sum();
    let mut edges: Vec<(usize, usize, usize)> = Vec::new();
    for &id in &order {
        let i = id.index();
        if !surviving[i] {
            continue;
        }
        for &d in &deps[i] {
            let out = lv_out(&est_level, &cons, d);
            est_buffers += est_level[i].saturating_sub(out + 1);
            edges.push((d, est_level[d], est_level[i]));
        }
    }
    for (&po, &(est, _)) in outputs.iter().zip(&po_levels) {
        if let Net::Wire { source, .. } = values[po.index()] {
            let _ = est; // outputs sit on the aligned level
            edges.push((source, est_level[source], align_est));
        }
    }
    // Raw-graph buffer ceiling: every raw edge may need to bridge its whole
    // ceiling-level gap.
    for &id in &order {
        let i = id.index();
        let gate = netlist.gate(id);
        if gate.kind.is_terminal() {
            continue;
        }
        for f in gate.fanin.iter().filter(|f| f.index() < n) {
            max_buffers += max_level[i].saturating_sub(max_level[f.index()] + 1);
        }
    }

    // Cell-class intervals.
    let inputs = netlist.primary_inputs().len();
    let n_outputs = outputs.len();
    let surviving_count = surviving.iter().filter(|s| **s).count();
    let raw_logic = netlist.cell_count();
    // The estimate tracks the real engine, which converts roughly
    // gate-for-gate; only the lower bound must assume maximal cone
    // absorption.
    let logic_cells = Interval::new(
        surviving_count,
        raw_logic.max(surviving_count),
        raw_logic.saturating_mul(RECIPE_CELL_SLACK),
    );

    let mut min_split = 0usize;
    let mut est_split = 0usize;
    for i in 0..n {
        if is_pi[i] || (opaque[i] && reached[i]) {
            min_split += min_splitters_for(cons[i], arity);
            est_split += splitter_tree_size(cons[i], arity);
        }
    }
    let mut max_split = 0usize;
    for (i, sinks) in raw_fanouts.iter().enumerate() {
        if !netlist.gate(aqfp_netlist::GateId(i)).kind.is_terminal() || is_pi[i] {
            max_split += splitter_tree_size(3 * sinks.len() + 3, arity);
        }
    }

    let splitters = Interval::new(min_split, est_split, max_split);
    let buffers = Interval::new(min_buffers, est_buffers, max_buffers);
    let terminals = inputs + n_outputs;
    let cells = Interval::new(
        terminals + logic_cells.min + splitters.min + buffers.min,
        terminals + logic_cells.est + splitters.est + buffers.est,
        terminals + logic_cells.max + splitters.max + buffers.max,
    );
    // Rows = output level + 1 (row 0 holds the inputs). An empty netlist
    // keeps the degenerate single row.
    let rows = if n == 0 {
        Interval::exact(0)
    } else {
        Interval::new(align_min + 1, align_est + 1, align_max + 1)
    };

    let est_depth = align_est;
    Some(Analysis {
        structure: StructureBounds {
            inputs,
            outputs: n_outputs,
            logic_cells,
            splitters,
            buffers,
            cells,
            rows,
            po_depths,
            po_depths_truncated,
        },
        surviving,
        est_level,
        est_depth,
        edges,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use aqfp_netlist::Netlist;

    /// a AND b feeding one output: one surviving gate, three terminals.
    fn tiny() -> Netlist {
        let mut n = Netlist::new("tiny");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(CellKind::And, "g", vec![a, b]);
        n.add_output("z", g);
        n
    }

    #[test]
    fn a_single_gate_survives() {
        let analysis = analyse(&tiny(), 4).unwrap();
        let s = &analysis.structure;
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.logic_cells.min, 1);
        assert_eq!(s.rows.min, 3); // input row, gate row, output row
        assert!(s.cells.min >= 4);
        assert_eq!(s.po_depths.len(), 1);
        assert_eq!(s.po_depths[0].min_level, 2);
    }

    #[test]
    fn same_literal_gates_collapse() {
        let mut n = Netlist::new("collapse");
        let a = n.add_input("a");
        // XOR(a, a) = 0, AND(a, a) = a: neither survives as a logic cell.
        let x = n.add_gate(CellKind::Xor, "x", vec![a, a]);
        let d = n.add_gate(CellKind::And, "d", vec![a, a]);
        let o = n.add_gate(CellKind::Or, "o", vec![x, d]);
        n.add_output("z", o);
        let analysis = analyse(&n, 4).unwrap();
        // OR(0, a) = a: even the root resolves to the input's literal.
        assert_eq!(analysis.structure.logic_cells.min, 0);
    }

    #[test]
    fn complementary_inputs_fold_to_constants() {
        let mut n = Netlist::new("const");
        let a = n.add_input("a");
        let inv = n.add_gate(CellKind::Inverter, "inv", vec![a]);
        let g = n.add_gate(CellKind::And, "g", vec![a, inv]);
        let h = n.add_gate(CellKind::Or, "h", vec![g, a]);
        n.add_output("z", h);
        let analysis = analyse(&n, 4).unwrap();
        // AND(a, !a) = 0, OR(0, a) = a: no logic survives.
        assert_eq!(analysis.structure.logic_cells.min, 0);
    }

    #[test]
    fn majority_folding_handles_constants_and_duplicates() {
        assert!(matches!(
            maj_like(&[
                Net::Const(true),
                Net::Const(true),
                Net::Wire { source: 3, inverted: false }
            ]),
            Simplified::Known(Net::Const(true))
        ));
        assert!(matches!(
            maj_like(&[
                Net::Wire { source: 1, inverted: false },
                Net::Wire { source: 1, inverted: true },
                Net::Wire { source: 2, inverted: false }
            ]),
            Simplified::Known(Net::Wire { source: 2, inverted: false })
        ));
        assert!(matches!(
            maj_like(&[
                Net::Wire { source: 1, inverted: false },
                Net::Wire { source: 2, inverted: false },
                Net::Wire { source: 3, inverted: false }
            ]),
            Simplified::Opaque
        ));
    }

    #[test]
    fn fanout_pressure_is_tracked_per_source() {
        let mut n = Netlist::new("fan");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let mut sinks = Vec::new();
        for i in 0..5 {
            sinks.push(n.add_gate(CellKind::And, format!("g{i}"), vec![a, b]));
        }
        for (i, g) in sinks.iter().enumerate() {
            n.add_output(format!("z{i}"), *g);
        }
        let analysis = analyse(&n, 4).unwrap();
        // Both inputs fan out to five sinks; arity-4 splitters need at
        // least two cells per input to legalise that.
        assert!(analysis.structure.splitters.min >= 2 * 2);
    }

    #[test]
    fn min_bounds_never_exceed_ceilings() {
        let analysis = analyse(&tiny(), 4).unwrap();
        let s = &analysis.structure;
        for interval in [s.logic_cells, s.splitters, s.buffers, s.cells, s.rows] {
            assert!(interval.min <= interval.est && interval.est <= interval.max, "{interval:?}");
        }
    }

    #[test]
    fn ceil_log_and_min_splitters() {
        assert_eq!(ceil_log(4, 1), 0);
        assert_eq!(ceil_log(4, 4), 1);
        assert_eq!(ceil_log(4, 5), 2);
        assert_eq!(min_splitters_for(1, 4), 0);
        assert_eq!(min_splitters_for(4, 4), 1);
        assert_eq!(min_splitters_for(5, 4), 2);
    }
}
